//! SPMD node launch: build the fabric, the per-node DSM instances and
//! communication threads, and run a program on every node's main thread.
//!
//! The OpenMP fork-join model of `parade-core` is layered on top of this
//! plain SPMD engine (node 0's program becomes the master; the others run
//! a command loop).

use std::sync::Arc;

use parade_dsm::{spawn_comm_thread, Dsm, DsmStatsSnapshot};
use parade_mpi::Communicator;
use parade_net::{Fabric, FabricError, LinkHealth, NodeTraffic, Traffic, VClock, VTime};
use parade_trace as trace;

use crate::config::ClusterConfig;

/// Everything a node program needs.
pub struct NodeEnv {
    pub node: usize,
    pub nnodes: usize,
    pub dsm: Arc<Dsm>,
    pub comm: Arc<Communicator>,
    pub cfg: ClusterConfig,
    pub fabric: Arc<Fabric>,
}

impl NodeEnv {
    /// A fresh virtual clock for a thread on this node, honouring the
    /// configured time source and per-node speed.
    pub fn new_clock(&self) -> VClock {
        VClock::new(self.cfg.time_source(self.node))
    }
}

/// Aggregate outcome of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-node DSM protocol counters.
    pub dsm: Vec<DsmStatsSnapshot>,
    /// Fabric-wide traffic.
    pub traffic: Traffic,
    /// Per-node traffic, both directions.
    pub net: Vec<NodeTraffic>,
    /// Per-node reliable-channel counters (all quiet without chaos).
    pub link_health: Vec<LinkHealth>,
    /// First retry-budget exhaustion, if any link died during the run.
    pub fabric_error: Option<FabricError>,
}

impl ClusterReport {
    /// Cluster-wide DSM counters.
    pub fn dsm_totals(&self) -> DsmStatsSnapshot {
        let mut t = DsmStatsSnapshot::default();
        for s in &self.dsm {
            t.merge(s);
        }
        t
    }

    /// Cluster-wide reliable-channel counters.
    pub fn link_health_totals(&self) -> LinkHealth {
        let mut t = LinkHealth::default();
        for h in &self.link_health {
            t.add(*h);
        }
        t
    }
}

/// Launch `cfg.nodes` node programs and run them to completion.
///
/// Returns each node's result plus the protocol/traffic report. All
/// communication threads are joined and the fabric shut down before
/// returning.
pub fn launch<R, F>(cfg: ClusterConfig, program: F) -> (Vec<R>, ClusterReport)
where
    R: Send + 'static,
    F: Fn(NodeEnv) -> R + Send + Sync + 'static,
{
    assert!(cfg.nodes > 0, "cluster needs at least one node");
    assert!(
        cfg.threads_per_node() > 0,
        "cluster needs at least one compute thread per node"
    );
    let fabric = Fabric::with_chaos(cfg.nodes, cfg.net, cfg.chaos.clone());
    if fabric.chaos().is_active() {
        // Surface reliable-channel activity in traces: one `net.retransmit`
        // instant per retransmission, attributed to the sending thread.
        fabric.set_retransmit_hook(Box::new(|_src, dst, _seq, vt: VTime| {
            trace::instant(trace::EventKind::NetRetransmit, dst as u64, vt);
        }));
    }
    let dsms: Vec<Arc<Dsm>> = (0..cfg.nodes)
        .map(|i| Arc::new(Dsm::new(fabric.endpoint(i), cfg.dsm_config())))
        .collect();
    // One topology instance for the whole world: it owns the per-chassis
    // shared-memory combine state, so every rank's communicator must share
    // it. An all-singleton topology keeps the flat algorithms.
    let topo = cfg
        .hierarchical_collectives
        .then(|| Arc::new(cfg.collective_topology()));
    let comm_threads: Vec<_> = dsms
        .iter()
        .map(|d| spawn_comm_thread(Arc::clone(d)))
        .collect();
    let program = Arc::new(program);
    let handles: Vec<_> = (0..cfg.nodes)
        .map(|i| {
            let env = NodeEnv {
                node: i,
                nnodes: cfg.nodes,
                dsm: Arc::clone(&dsms[i]),
                comm: Arc::new(match &topo {
                    Some(t) => Communicator::with_topology(fabric.endpoint(i), Arc::clone(t)),
                    None => Communicator::new(fabric.endpoint(i)),
                }),
                cfg: cfg.clone(),
                fabric: Arc::clone(&fabric),
            };
            let program = Arc::clone(&program);
            std::thread::Builder::new()
                .name(format!("parade-node-{i}"))
                .spawn(move || {
                    trace::set_identity(i, "main");
                    program(env)
                })
                .expect("spawn node main thread")
        })
        .collect();
    let results: Vec<R> = handles
        .into_iter()
        .map(|h| h.join().expect("node panicked"))
        .collect();
    let report = ClusterReport {
        dsm: dsms.iter().map(|d| d.stats.snapshot()).collect(),
        traffic: fabric.stats().totals(),
        net: fabric.stats().snapshot(),
        link_health: fabric.stats().link_health(),
        fabric_error: fabric.stats().fabric_error(),
    };
    fabric.begin_shutdown();
    for h in comm_threads {
        h.join().expect("communication thread panicked");
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_mpi::ReduceOp;
    use parade_net::NetProfile;

    fn tiny(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            pool_bytes: 64 * parade_dsm::PAGE_SIZE,
            net: NetProfile::zero(),
            time: parade_net::TimeSource::Manual,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn launch_runs_program_on_every_node() {
        let (out, _) = launch(tiny(4), |env| (env.node, env.nnodes));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn nodes_share_dsm_and_mpi() {
        let (out, report) = launch(tiny(3), |env| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(64).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 1 {
                env.dsm.write::<i64>(r, 0, 31, &mut clk);
            }
            env.dsm.barrier(&mut clk);
            let v = env.dsm.read::<i64>(r, 0, &mut clk);

            env.comm.allreduce_i64(v, ReduceOp::Sum, &mut clk)
        });
        assert_eq!(out, vec![93, 93, 93]);
        assert!(report.dsm_totals().barriers >= 6);
        assert!(report.traffic.msgs > 0);
    }

    #[test]
    fn chaos_run_matches_clean_run_and_records_retransmits() {
        use parade_net::ChaosProfile;
        let program = |env: NodeEnv| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(256).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 0 {
                for i in 0..32 {
                    env.dsm.write::<i64>(r, i * 8, (i as i64) * 3 + 1, &mut clk);
                }
            }
            env.dsm.barrier(&mut clk);
            let mut sum = 0;
            for i in 0..32 {
                sum += env.dsm.read::<i64>(r, i * 8, &mut clk);
            }
            env.comm.allreduce_i64(sum, ReduceOp::Sum, &mut clk)
        };
        let (clean, _) = launch(tiny(3), program);
        let cfg = ClusterConfig {
            chaos: ChaosProfile::lossy(0xD00D),
            ..tiny(3)
        };
        let (chaotic, report) = launch(cfg, program);
        assert_eq!(clean, chaotic, "chaos must not change results");
        assert!(report.fabric_error.is_none());
        let h = report.link_health_totals();
        assert!(h.retransmits + h.dup_drops + h.reseq_holds > 0, "{h:?}");
    }

    #[test]
    fn report_aggregates_counters() {
        let (_, report) = launch(tiny(2), |env| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(64).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 1 {
                env.dsm.write::<i64>(r, 0, 1, &mut clk);
            }
            env.dsm.barrier(&mut clk);
            env.dsm.read::<i64>(r, 0, &mut clk)
        });
        let t = report.dsm_totals();
        assert_eq!(t.barriers, 4);
        assert!(t.page_fetches >= 1);
    }
}
