//! SPMD node launch: build the fabric, the per-node DSM instances and
//! communication threads, and run a program on every node's main thread.
//!
//! The OpenMP fork-join model of `parade-core` is layered on top of this
//! plain SPMD engine (node 0's program becomes the master; the others run
//! a command loop).

use std::sync::Arc;

use parade_dsm::{spawn_comm_thread, Dsm, DsmStatsSnapshot};
use parade_mpi::Communicator;
use parade_net::{Fabric, FabricError, LinkHealth, NodeTraffic, Traffic, VClock, VTime};
use parade_trace as trace;

use crate::config::ClusterConfig;

/// Everything a node program needs.
pub struct NodeEnv {
    pub node: usize,
    pub nnodes: usize,
    pub dsm: Arc<Dsm>,
    pub comm: Arc<Communicator>,
    pub cfg: ClusterConfig,
    pub fabric: Arc<Fabric>,
}

impl NodeEnv {
    /// A fresh virtual clock for a thread on this node, honouring the
    /// configured time source and per-node speed.
    pub fn new_clock(&self) -> VClock {
        VClock::new(self.cfg.time_source(self.node))
    }
}

/// Aggregate outcome of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-node DSM protocol counters.
    pub dsm: Vec<DsmStatsSnapshot>,
    /// Fabric-wide traffic.
    pub traffic: Traffic,
    /// Per-node traffic, both directions.
    pub net: Vec<NodeTraffic>,
    /// Per-node reliable-channel counters (all quiet without chaos).
    pub link_health: Vec<LinkHealth>,
    /// First retry-budget exhaustion, if any link died during the run.
    pub fabric_error: Option<FabricError>,
    /// Every retry-budget exhaustion in recording order: when several
    /// links die in the same interval, each dead link is named here.
    pub fabric_errors: Vec<FabricError>,
}

impl ClusterReport {
    /// Cluster-wide DSM counters.
    pub fn dsm_totals(&self) -> DsmStatsSnapshot {
        let mut t = DsmStatsSnapshot::default();
        for s in &self.dsm {
            t.merge(s);
        }
        t
    }

    /// Cluster-wide reliable-channel counters.
    pub fn link_health_totals(&self) -> LinkHealth {
        let mut t = LinkHealth::default();
        for h in &self.link_health {
            t.add(*h);
        }
        t
    }
}

/// One node program's panic, carried out of [`launch_result`].
#[derive(Debug, Clone)]
pub struct NodePanic {
    pub node: usize,
    pub message: String,
}

/// A failed launch: which node programs panicked, plus the full report
/// (whose `fabric_errors` names every dead link when the failure was a
/// fabric fail-stop).
#[derive(Debug)]
pub struct LaunchFailure {
    pub panics: Vec<NodePanic>,
    pub report: ClusterReport,
}

impl std::fmt::Display for LaunchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} node(s) panicked", self.panics.len())?;
        if let Some(p) = self.panics.first() {
            write!(f, " (node {}: {})", p.node, p.message)?;
        }
        if let Some(e) = self.report.fabric_errors.first() {
            write!(f, "; {e}")?;
        }
        Ok(())
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Launch `cfg.nodes` node programs and run them to completion.
///
/// Returns each node's result plus the protocol/traffic report. All
/// communication threads are joined and the fabric shut down before
/// returning. Panics if any node program panics; callers that must
/// survive node failure (the serving layer) use [`launch_result`].
pub fn launch<R, F>(cfg: ClusterConfig, program: F) -> (Vec<R>, ClusterReport)
where
    R: Send + 'static,
    F: Fn(NodeEnv) -> R + Send + Sync + 'static,
{
    match launch_result(cfg, program) {
        Ok(out) => out,
        Err(f) => panic!("node panicked: {f}"),
    }
}

/// Failure-tolerant launch: node-program panics are collected instead of
/// propagated, and teardown is unconditional.
///
/// The shutdown order is load-bearing. The fabric is shut down *before*
/// the communication threads are joined, in every path — including the
/// failure path, where the old panicking join ran first and never reached
/// `begin_shutdown`, leaving comm threads parked on their `MailboxQ`
/// condvars forever (the PR 4 dead-link shutdown race). A serving layer
/// tearing down a failed job would hang on exactly that join.
#[allow(clippy::type_complexity)]
pub fn launch_result<R, F>(
    cfg: ClusterConfig,
    program: F,
) -> Result<(Vec<R>, ClusterReport), Box<LaunchFailure>>
where
    R: Send + 'static,
    F: Fn(NodeEnv) -> R + Send + Sync + 'static,
{
    assert!(cfg.nodes > 0, "cluster needs at least one node");
    assert!(
        cfg.threads_per_node() > 0,
        "cluster needs at least one compute thread per node"
    );
    let fabric = Fabric::with_chaos(cfg.nodes, cfg.net, cfg.chaos.clone());
    if fabric.chaos().is_active() {
        // Surface reliable-channel activity in traces: one `net.retransmit`
        // instant per retransmission, attributed to the sending thread.
        fabric.set_retransmit_hook(Box::new(|_src, dst, _seq, vt: VTime| {
            trace::instant(trace::EventKind::NetRetransmit, dst as u64, vt);
        }));
    }
    let dsms: Vec<Arc<Dsm>> = (0..cfg.nodes)
        .map(|i| Arc::new(Dsm::new(fabric.endpoint(i), cfg.dsm_config())))
        .collect();
    // One topology instance for the whole world: it owns the per-chassis
    // shared-memory combine state, so every rank's communicator must share
    // it. An all-singleton topology keeps the flat algorithms.
    let topo = cfg
        .hierarchical_collectives
        .then(|| Arc::new(cfg.collective_topology()));
    let comm_threads: Vec<_> = dsms
        .iter()
        .map(|d| spawn_comm_thread(Arc::clone(d)))
        .collect();
    let program = Arc::new(program);
    let handles: Vec<_> = (0..cfg.nodes)
        .map(|i| {
            let env = NodeEnv {
                node: i,
                nnodes: cfg.nodes,
                dsm: Arc::clone(&dsms[i]),
                comm: Arc::new(match &topo {
                    Some(t) => Communicator::with_topology(fabric.endpoint(i), Arc::clone(t)),
                    None => Communicator::new(fabric.endpoint(i)),
                }),
                cfg: cfg.clone(),
                fabric: Arc::clone(&fabric),
            };
            let program = Arc::clone(&program);
            let fabric2 = Arc::clone(&fabric);
            std::thread::Builder::new()
                .name(format!("parade-node-{i}"))
                .spawn(move || {
                    trace::set_identity(i, "main");
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| program(env)));
                    if r.is_err() {
                        // Shut the fabric down *at panic time*, not at join
                        // time: peers blocked in fabric receives waiting on
                        // this node must unblock or the ordered join below
                        // would deadlock on them. A fabric fail-stop has
                        // already done this; a non-fabric panic has not.
                        fabric2.begin_shutdown();
                    }
                    r
                })
                .expect("spawn node main thread")
        })
        .collect();
    let mut results: Vec<R> = Vec::with_capacity(cfg.nodes);
    let mut panics: Vec<NodePanic> = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        match h.join().expect("node thread itself cannot panic") {
            Ok(r) => results.push(r),
            Err(payload) => panics.push(NodePanic {
                node: i,
                message: panic_message(payload),
            }),
        }
    }
    let report = ClusterReport {
        dsm: dsms.iter().map(|d| d.stats.snapshot()).collect(),
        traffic: fabric.stats().totals(),
        net: fabric.stats().snapshot(),
        link_health: fabric.stats().link_health(),
        fabric_error: fabric.stats().fabric_error(),
        fabric_errors: fabric.stats().fabric_errors(),
    };
    // Wake comm threads parked on their mailboxes *before* joining them —
    // in every path, not just the clean one.
    fabric.begin_shutdown();
    for h in comm_threads {
        // A comm thread that hit the dead link itself panicked trying to
        // reply; that panic is part of the same failure, not a new one.
        let _ = h.join();
    }
    if panics.is_empty() {
        Ok((results, report))
    } else {
        // Boxed: the report inside makes the Err variant heavyweight, and
        // the Ok path must not pay for it.
        Err(Box::new(LaunchFailure { panics, report }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_mpi::ReduceOp;
    use parade_net::NetProfile;

    fn tiny(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            pool_bytes: 64 * parade_dsm::PAGE_SIZE,
            net: NetProfile::zero(),
            time: parade_net::TimeSource::Manual,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn launch_runs_program_on_every_node() {
        let (out, _) = launch(tiny(4), |env| (env.node, env.nnodes));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn nodes_share_dsm_and_mpi() {
        let (out, report) = launch(tiny(3), |env| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(64).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 1 {
                env.dsm.write::<i64>(r, 0, 31, &mut clk);
            }
            env.dsm.barrier(&mut clk);
            let v = env.dsm.read::<i64>(r, 0, &mut clk);

            env.comm.allreduce_i64(v, ReduceOp::Sum, &mut clk)
        });
        assert_eq!(out, vec![93, 93, 93]);
        assert!(report.dsm_totals().barriers >= 6);
        assert!(report.traffic.msgs > 0);
    }

    #[test]
    fn chaos_run_matches_clean_run_and_records_retransmits() {
        use parade_net::ChaosProfile;
        let program = |env: NodeEnv| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(256).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 0 {
                for i in 0..32 {
                    env.dsm.write::<i64>(r, i * 8, (i as i64) * 3 + 1, &mut clk);
                }
            }
            env.dsm.barrier(&mut clk);
            let mut sum = 0;
            for i in 0..32 {
                sum += env.dsm.read::<i64>(r, i * 8, &mut clk);
            }
            env.comm.allreduce_i64(sum, ReduceOp::Sum, &mut clk)
        };
        let (clean, _) = launch(tiny(3), program);
        let cfg = ClusterConfig {
            chaos: ChaosProfile::lossy(0xD00D),
            ..tiny(3)
        };
        let (chaotic, report) = launch(cfg, program);
        assert_eq!(clean, chaotic, "chaos must not change results");
        assert!(report.fabric_error.is_none());
        let h = report.link_health_totals();
        assert!(h.retransmits + h.dup_drops + h.reseq_holds > 0, "{h:?}");
    }

    #[test]
    fn launch_result_collects_node_panics_and_still_tears_down() {
        // Node 1 panics mid-program while node 0 blocks on a receive that
        // will never be satisfied; the panic-time shutdown must unblock
        // node 0 and the comm threads so this returns instead of hanging.
        let out = launch_result(tiny(2), |env| {
            let mut clk = env.new_clock();
            if env.node == 1 {
                panic!("injected node failure");
            }
            let r = env.dsm.alloc_region(64).unwrap();
            env.dsm.barrier(&mut clk);
            env.dsm.read::<i64>(r, 0, &mut clk)
        });
        let failure = out.expect_err("a panicked node must surface as Err");
        assert_eq!(failure.panics.len(), 2, "node 0 dies of the shutdown");
        assert!(failure
            .panics
            .iter()
            .any(|p| p.message.contains("injected node failure")));
    }

    #[test]
    fn launch_result_surfaces_every_dead_link() {
        use parade_net::ChaosProfile;
        // Two links scheduled dead: both node 1 and node 2 eventually hit
        // their own dead link to node 0, so the report must name both —
        // not just whichever error was recorded first.
        let cfg = ClusterConfig {
            chaos: ChaosProfile::off()
                .with_link_death(1, 0, 2)
                .with_link_death(2, 0, 2),
            ..tiny(3)
        };
        let out = launch_result(cfg, |env| {
            let mut clk = env.new_clock();
            if env.node != 0 {
                let ep = env.fabric.endpoint(env.node);
                let mut sent = 0u64;
                loop {
                    let payload = parade_net::Bytes::copy_from_slice(&[0u8; 8]);
                    if ep
                        .send_checked(0, parade_net::MsgClass::P2p, sent, payload, &mut clk)
                        .is_err()
                    {
                        break;
                    }
                    sent += 1;
                    clk.charge(VTime::from_micros(1));
                }
            }
            env.node
        });
        let (_, report) = out.expect("send_checked panics nowhere");
        assert!(report.fabric_error.is_some());
        assert_eq!(report.fabric_errors.len(), 2, "{:?}", report.fabric_errors);
        let mut srcs: Vec<usize> = report.fabric_errors.iter().map(|e| e.src).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![1, 2], "both dead links named");
    }

    #[test]
    fn report_aggregates_counters() {
        let (_, report) = launch(tiny(2), |env| {
            let mut clk = env.new_clock();
            let r = env.dsm.alloc_region(64).unwrap();
            env.dsm.barrier(&mut clk);
            if env.node == 1 {
                env.dsm.write::<i64>(r, 0, 1, &mut clk);
            }
            env.dsm.barrier(&mut clk);
            env.dsm.read::<i64>(r, 0, &mut clk)
        });
        let t = report.dsm_totals();
        assert_eq!(t.barriers, 4);
        assert!(t.page_fetches >= 1);
    }
}
