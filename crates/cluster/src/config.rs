//! Cluster configuration: the paper's execution configurations (§6.2) and
//! all protocol knobs in one place.

use parade_dsm::{CommCosts, DsmConfig, HomePolicy, LockKind, ProtoSelect, UpdateStrategy};
use parade_net::{ChaosProfile, NetProfile, TimeSource};
use parade_tasks::SchedConfig;

/// The three measurement configurations of the paper's §6.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecConfig {
    /// Uniprocessor kernel: one CPU handles both computation and
    /// communication — remote requests wait out scheduling delays.
    OneThreadOneCpu,
    /// SMP kernel, one computational thread: the second CPU is dedicated to
    /// the communication thread.
    OneThreadTwoCpu,
    /// SMP kernel, two computational threads: the communication thread
    /// shares the two CPUs with computation.
    TwoThreadTwoCpu,
    /// Free-form: explicit thread count and communication-thread costs.
    Custom {
        threads_per_node: usize,
        comm: CommCosts,
    },
}

impl ExecConfig {
    pub fn threads_per_node(&self) -> usize {
        match self {
            ExecConfig::OneThreadOneCpu | ExecConfig::OneThreadTwoCpu => 1,
            ExecConfig::TwoThreadTwoCpu => 2,
            ExecConfig::Custom {
                threads_per_node, ..
            } => *threads_per_node,
        }
    }

    pub fn comm_costs(&self) -> CommCosts {
        match self {
            ExecConfig::OneThreadOneCpu => CommCosts::shared_cpu_busy(),
            ExecConfig::OneThreadTwoCpu => CommCosts::dedicated_cpu(),
            ExecConfig::TwoThreadTwoCpu => CommCosts::shared_cpu_light(),
            ExecConfig::Custom { comm, .. } => *comm,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ExecConfig::OneThreadOneCpu => "1Thread-1CPU",
            ExecConfig::OneThreadTwoCpu => "1Thread-2CPU",
            ExecConfig::TwoThreadTwoCpu => "2Thread-2CPU",
            ExecConfig::Custom { .. } => "custom",
        }
    }

    pub const PAPER_CONFIGS: [ExecConfig; 3] = [
        ExecConfig::OneThreadOneCpu,
        ExecConfig::OneThreadTwoCpu,
        ExecConfig::TwoThreadTwoCpu,
    ];
}

/// Which runtime the OpenMP directives target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMode {
    /// ParADE: hybrid execution — collectives for small-data
    /// synchronization/work-sharing directives, HLRC with migratory home
    /// for the rest.
    Parade,
    /// Conventional SDSM (the KDSM-style baseline of §6.1): lock-based
    /// synchronization, fixed homes, no message-passing shortcut.
    SdsmOnly,
}

/// Full configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of SMP nodes.
    pub nodes: usize,
    pub exec: ExecConfig,
    pub protocol: ProtocolMode,
    pub net: NetProfile,
    /// Compute-time accounting for application threads. The default scale
    /// maps host CPU time onto the paper's ~550 MHz Pentium III nodes
    /// (a modern superscalar/SIMD core is roughly 60x one on numeric
    /// kernels).
    pub time: TimeSource,
    /// Optional per-node CPU scale multipliers (the paper's cluster mixes
    /// 550 and 600 MHz nodes). Multiplied on top of `time`'s scale.
    pub node_speed: Option<Vec<f64>>,
    /// Shared pool bytes per node.
    pub pool_bytes: usize,
    /// Small-data threshold for the message-passing update protocol.
    pub small_threshold: usize,
    pub update_strategy: UpdateStrategy,
    pub lock_kind: LockKind,
    /// Home policy override; `None` derives it from `protocol`
    /// (Parade → Migratory, SdsmOnly → Fixed).
    pub home_policy: Option<HomePolicy>,
    /// Ship one `DiffBatch` per destination home at each release instead of
    /// one `Diff` message + ack per dirty page.
    pub batch_diffs: bool,
    /// Upper bound on contiguous pages coalesced into one fetch; `<= 1`
    /// disables coalescing.
    pub max_fetch_range: usize,
    /// Fault injection for the fabric. The default honours the
    /// `PARADE_CHAOS` environment variable (off when unset), so any run
    /// can be soaked under chaos without code changes.
    pub chaos: ChaosProfile,
    /// Two-level SMP-aware collectives (default on): the DSM barrier
    /// aggregates arrivals up a binomial tree of communication threads
    /// instead of all nodes messaging node 0, and MPI collectives combine
    /// co-located ranks through shared memory with only per-chassis
    /// leaders crossing the fabric. Off reverts both to the flat
    /// algorithms (the measurable pre-hierarchy baseline).
    pub hierarchical_collectives: bool,
    /// Fabric nodes per physical SMP chassis, for collective-topology
    /// purposes: consecutive runs of `smp_width` nodes are treated as
    /// co-located. 1 (the default) makes every node its own chassis, so
    /// MPI collectives stay flat even when `hierarchical_collectives` is
    /// on (the DSM tree barrier is node-level and unaffected).
    pub smp_width: usize,
    /// Task scheduler knobs (steal strategy, victim fanout, batch grain,
    /// victim-selection seed) for `parade-tasks` phases.
    pub task_scheduler: SchedConfig,
    /// Lock shards for per-node page bookkeeping and home-side page state
    /// (rounded up to a power of two; `<= 1` restores one global lock).
    pub page_shards: usize,
    /// Per-thread stride prefetcher: predict the next pages of a strided
    /// access pattern and fetch them ahead of the demand miss.
    pub stride_prefetch: bool,
    /// Pages fetched ahead per confirmed stride (clamped to
    /// `max_fetch_range`).
    pub prefetch_depth: usize,
    /// Consecutive stride breaks tolerated before a thread's predictor is
    /// permanently disabled for the run.
    pub prefetch_mispredict_budget: u32,
    /// Per-page invalidate-vs-update protocol selection (see
    /// `ProtoSelect`). `Adaptive` picks per page from barrier-time
    /// sharer/writer history; the static modes force one protocol
    /// everywhere.
    pub proto_select: ProtoSelect,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            exec: ExecConfig::TwoThreadTwoCpu,
            protocol: ProtocolMode::Parade,
            net: NetProfile::clan_via(),
            time: TimeSource::ThreadCpu { scale: 60.0 },
            node_speed: None,
            pool_bytes: 64 << 20,
            small_threshold: 256,
            update_strategy: UpdateStrategy::MmapFile,
            lock_kind: LockKind::Queued,
            home_policy: None,
            batch_diffs: true,
            max_fetch_range: 16,
            chaos: ChaosProfile::from_env(),
            hierarchical_collectives: true,
            smp_width: 1,
            task_scheduler: SchedConfig::default(),
            page_shards: 16,
            stride_prefetch: true,
            prefetch_depth: 4,
            prefetch_mispredict_budget: 4,
            proto_select: ProtoSelect::Adaptive,
        }
    }
}

impl ClusterConfig {
    pub fn threads_per_node(&self) -> usize {
        self.exec.threads_per_node()
    }

    /// Total computational threads in the cluster.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node()
    }

    pub fn effective_home_policy(&self) -> HomePolicy {
        self.home_policy.unwrap_or(match self.protocol {
            ProtocolMode::Parade => HomePolicy::Migratory,
            ProtocolMode::SdsmOnly => HomePolicy::Fixed,
        })
    }

    /// The per-node DSM configuration this cluster config implies.
    pub fn dsm_config(&self) -> DsmConfig {
        DsmConfig {
            pool_bytes: self.pool_bytes,
            home_policy: self.effective_home_policy(),
            lock_kind: self.lock_kind,
            update_strategy: self.update_strategy,
            comm: self.exec.comm_costs(),
            small_threshold: self.small_threshold,
            batch_diffs: self.batch_diffs,
            max_fetch_range: self.max_fetch_range,
            hierarchical_barrier: self.hierarchical_collectives,
            page_shards: self.page_shards,
            stride_prefetch: self.stride_prefetch,
            prefetch_depth: self.prefetch_depth,
            prefetch_mispredict_budget: self.prefetch_mispredict_budget,
            proto_select: self.proto_select,
        }
    }

    /// SMP placement of the cluster's MPI ranks: consecutive blocks of
    /// `smp_width` fabric nodes per chassis.
    pub fn collective_topology(&self) -> parade_mpi::CollectiveTopology {
        parade_mpi::CollectiveTopology::uniform(self.nodes, self.smp_width.max(1))
    }

    /// Time source for an application thread on `node`.
    pub fn time_source(&self, node: usize) -> TimeSource {
        match (self.time, &self.node_speed) {
            (TimeSource::ThreadCpu { scale }, Some(speeds)) => TimeSource::ThreadCpu {
                scale: scale * speeds.get(node).copied().unwrap_or(1.0),
            },
            (t, _) => t,
        }
    }

    /// The paper's testbed speed mix: four 550 MHz then four 600 MHz nodes
    /// (expressed as multipliers relative to the 550 MHz baseline).
    pub fn paper_node_speeds(nodes: usize) -> Vec<f64> {
        (0..nodes)
            .map(|i| if i < 4 { 1.0 } else { 550.0 / 600.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_presets() {
        assert_eq!(ExecConfig::OneThreadOneCpu.threads_per_node(), 1);
        assert_eq!(ExecConfig::TwoThreadTwoCpu.threads_per_node(), 2);
        assert!(
            ExecConfig::OneThreadOneCpu.comm_costs().service_penalty
                > ExecConfig::OneThreadTwoCpu.comm_costs().service_penalty
        );
        assert_eq!(ExecConfig::OneThreadTwoCpu.label(), "1Thread-2CPU");
    }

    #[test]
    fn protocol_mode_drives_home_policy() {
        let mut c = ClusterConfig::default();
        assert_eq!(c.effective_home_policy(), HomePolicy::Migratory);
        c.protocol = ProtocolMode::SdsmOnly;
        assert_eq!(c.effective_home_policy(), HomePolicy::Fixed);
        c.home_policy = Some(HomePolicy::Migratory);
        assert_eq!(c.effective_home_policy(), HomePolicy::Migratory);
    }

    #[test]
    fn node_speed_scales_time_source() {
        let c = ClusterConfig {
            time: TimeSource::ThreadCpu { scale: 10.0 },
            node_speed: Some(vec![1.0, 0.5]),
            ..ClusterConfig::default()
        };
        match c.time_source(1) {
            TimeSource::ThreadCpu { scale } => assert_eq!(scale, 5.0),
            _ => panic!("wrong source"),
        }
    }

    #[test]
    fn chaos_defaults_to_env_or_off() {
        // The test environment does not set PARADE_CHAOS, so the default
        // config must leave the fabric clean.
        if std::env::var("PARADE_CHAOS").is_err() {
            assert!(!ClusterConfig::default().chaos.is_active());
        }
    }

    #[test]
    fn paper_speed_mix() {
        let s = ClusterConfig::paper_node_speeds(8);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[3], 1.0);
        assert!((s[4] - 550.0 / 600.0).abs() < 1e-12);
    }
}
