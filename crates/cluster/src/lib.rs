//! # parade-cluster — the simulated SMP cluster engine
//!
//! Builds the pieces of one simulated cluster run: the message fabric, one
//! DSM instance and communication thread per node, and an SPMD launch of a
//! node program. [`ClusterConfig`] gathers every experimental knob,
//! including the paper's three execution configurations
//! (`1Thread-1CPU` / `1Thread-2CPU` / `2Thread-2CPU`, §6.2) expressed as
//! compute-thread counts plus communication-thread service costs.

mod config;
mod launch;

pub use config::{ClusterConfig, ExecConfig, ProtocolMode};
pub use launch::{launch, launch_result, ClusterReport, LaunchFailure, NodeEnv, NodePanic};
