//! Suppress the panic chatter of *expected* fail-stops.
//!
//! When a job's fabric dies, every node blocked in a receive panics with a
//! known message family ("fabric link …", "… after shutdown") — that is
//! the fail-stop mechanism working, not a bug, and a 1000-job soak with
//! injected deaths would otherwise print thousands of backtrace headers.
//! [`Quiet`] is a scoped guard: while at least one guard is live, panics
//! whose message matches the fail-stop families are swallowed by a global
//! hook; everything else still reaches the previous hook untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static SUPPRESSING: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

/// Message fragments produced by the fail-stop machinery.
const EXPECTED: &[&str] = &[
    "fabric link",
    "after shutdown",
    "fabric is shut down",
    "node panicked",
];

fn is_expected(msg: &str) -> bool {
    EXPECTED.iter().any(|pat| msg.contains(pat))
}

fn install() {
    HOOK_INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESSING.load(Ordering::SeqCst) > 0 {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if is_expected(&msg) {
                    return;
                }
            }
            prev(info);
        }));
    });
}

/// Scoped suppression of expected fail-stop panic messages.
pub struct Quiet(());

impl Quiet {
    pub fn engage() -> Quiet {
        install();
        SUPPRESSING.fetch_add(1, Ordering::SeqCst);
        Quiet(())
    }
}

impl Drop for Quiet {
    fn drop(&mut self) {
        SUPPRESSING.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_nests_and_releases() {
        let a = Quiet::engage();
        let b = Quiet::engage();
        assert_eq!(SUPPRESSING.load(Ordering::SeqCst), 2);
        drop(b);
        drop(a);
        assert_eq!(SUPPRESSING.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn expected_patterns_match_the_failstop_family() {
        assert!(is_expected("fabric link 0->2 dead after 11 attempts"));
        assert!(is_expected("barrier depart after shutdown"));
        assert!(!is_expected("index out of bounds"));
    }
}
