//! The gang scheduler: FIFO + backfill admission over one machine's node
//! pool, elastic gang widths, and checkpoint/re-home survival of injected
//! node death.
//!
//! The machine is a set of node ids. A job is admitted onto the
//! lowest-numbered free nodes at a width clamped to `[min_width,
//! max_width]` by availability (elastic shrink/grow at admission time).
//! Admission is FIFO with backfill: the oldest waiting job goes first
//! whenever it fits; when it does not, any younger job that *does* fit may
//! jump the queue (no reservations — simple EASY-style backfill).
//!
//! Failure survival: when an attempt dies of a dead link, the scheduler
//! maps the dead job-local rank back to a machine node, power-cycles it,
//! borrows a free node as its replacement when one exists (re-homing the
//! checkpointed pages there), charges the job the virtual time the fabric
//! spent discovering the death plus a re-home penalty, and re-runs the
//! job's current interval from the checkpoint. The power-cycled node
//! rejoins the free pool when its incident job finishes.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use parade_core::StatsReport;
use parade_net::{ChaosProfile, VTime};

use crate::job::JobSpec;
use crate::quiet::Quiet;
use crate::run::{fresh_cell, run_attempt};

/// A scheduled link death inside one job's sub-fabric: the link
/// `src -> dst` (job-local ranks) dies after `after_seq` messages, and
/// rank `dst` is declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDeath {
    pub src: usize,
    pub dst: usize,
    pub after_seq: u64,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Machine size (node pool the gangs are placed on).
    pub machine_nodes: usize,
    /// Residual chaos applied to every attempt of every job (the
    /// `PARADE_CHAOS` profile; never changes results, only timings).
    pub base_chaos: ChaosProfile,
    /// Injected node deaths, by job id. Applied to the job's first
    /// attempt only: the replacement node is healthy.
    pub deaths: BTreeMap<u64, LinkDeath>,
    /// Attempts allowed per job before the scheduler gives up (fail
    /// closed — giving up is a panic, not a silent drop).
    pub max_attempts: u32,
    /// Virtual-time charge for re-homing a dead node's pages.
    pub rehome_penalty: VTime,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            machine_nodes: 8,
            base_chaos: ChaosProfile::off(),
            deaths: BTreeMap::new(),
            max_attempts: 3,
            rehome_penalty: VTime::from_micros(500),
        }
    }
}

/// Final record of one served job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub id: u64,
    /// Gang width the job actually ran at.
    pub width: usize,
    /// Machine nodes holding the gang at completion (after re-homes).
    pub nodes: Vec<usize>,
    pub submit_at: VTime,
    pub start_at: VTime,
    pub finish_at: VTime,
    /// Attempts run (1 = no failure).
    pub attempts: u32,
    /// Re-home events: `(dead machine node, replacement)`; equal entries
    /// mean the node was power-cycled and the job restarted in place.
    pub rehomed: Vec<(usize, usize)>,
    /// FNV digest of the final state — compared bit-for-bit against the
    /// sequential reference by the soak.
    pub digest: u64,
    /// Successful completions (exactly-once: always 1 for a job that
    /// appears here, asserted at execution time).
    pub completions: u32,
    /// Per-job statistics from the completing attempt.
    pub stats: StatsReport,
}

impl JobOutcome {
    pub fn waited(&self) -> VTime {
        VTime::from_nanos(self.start_at.as_nanos() - self.submit_at.as_nanos())
    }
}

/// Everything the serving layer did with one batch of jobs.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One outcome per admitted job, in completion-schedule order.
    pub outcomes: Vec<JobOutcome>,
    /// Virtual time at which the last job finished.
    pub makespan: VTime,
    /// Machine nodes that were power-cycled at least once.
    pub dead_nodes: Vec<usize>,
}

impl ServeReport {
    pub fn outcome(&self, id: u64) -> Option<&JobOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// Total re-home events across all jobs.
    pub fn rehomes(&self) -> usize {
        self.outcomes.iter().map(|o| o.rehomed.len()).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Finish(usize),
    Arrive(usize),
}

/// Serve a batch of jobs to completion. Deterministic: the event loop
/// runs in virtual time with explicit tie-breaks, placement is
/// lowest-node-first, and every job's arithmetic is width-independent.
///
/// Panics (fail closed) if a job exhausts `max_attempts` or the machine
/// can never fit it.
pub fn serve(cfg: &ServeConfig, mut jobs: Vec<JobSpec>) -> ServeReport {
    for j in &jobs {
        assert!(
            j.min_width >= 1 && j.min_width <= j.max_width,
            "job {} has bad width bounds",
            j.id
        );
        assert!(
            j.min_width <= cfg.machine_nodes,
            "job {} can never fit the machine",
            j.id
        );
    }
    jobs.sort_by_key(|j| (j.submit_at, j.id));
    let mut free: BTreeSet<usize> = (0..cfg.machine_nodes).collect();
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut events: BinaryHeap<Reverse<(VTime, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, j) in jobs.iter().enumerate() {
        events.push(Reverse((j.submit_at, seq, Ev::Arrive(i))));
        seq += 1;
    }
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut dead_nodes: BTreeSet<usize> = BTreeSet::new();
    let mut makespan = VTime::ZERO;
    while let Some(Reverse((now, _, ev))) = events.pop() {
        match ev {
            Ev::Arrive(i) => waiting.push_back(i),
            Ev::Finish(slot) => {
                let done = &outcomes[slot];
                free.extend(done.nodes.iter().copied());
                // Power-cycled nodes come back once their incident job is
                // gone (the reboot finished long before).
                free.extend(done.rehomed.iter().map(|&(dead, _)| dead));
            }
        }
        // Admission: scan the wait queue in FIFO order; the first fitting
        // job wins, so the head has priority and backfill only happens
        // past a stuck head.
        while let Some(pos) = waiting
            .iter()
            .position(|&i| jobs[i].min_width <= free.len())
        {
            let i = waiting.remove(pos).expect("position just found");
            let spec = jobs[i].clone();
            let width = spec.max_width.min(free.len());
            let nodes: Vec<usize> = free.iter().take(width).copied().collect();
            for nd in &nodes {
                free.remove(nd);
            }
            let out = execute(cfg, &spec, width, nodes, now, &mut free, &mut dead_nodes);
            makespan = makespan.max(out.finish_at);
            events.push(Reverse((out.finish_at, seq, Ev::Finish(outcomes.len()))));
            seq += 1;
            outcomes.push(out);
        }
    }
    assert!(
        waiting.is_empty(),
        "scheduler drained with {} job(s) still waiting",
        waiting.len()
    );
    ServeReport {
        outcomes,
        makespan,
        dead_nodes: dead_nodes.into_iter().collect(),
    }
}

/// Run one job to completion (retrying across node deaths), eagerly at
/// admission time. Virtual time does the rest: the finish event carries
/// `start + duration`, so overlapping jobs interleave correctly in the
/// simulated timeline regardless of host execution order.
fn execute(
    cfg: &ServeConfig,
    spec: &JobSpec,
    width: usize,
    mut nodes: Vec<usize>,
    start_at: VTime,
    free: &mut BTreeSet<usize>,
    dead_nodes: &mut BTreeSet<usize>,
) -> JobOutcome {
    let cell = fresh_cell();
    let mut chaos = cfg.base_chaos.clone();
    if let Some(d) = cfg.deaths.get(&spec.id) {
        // A 1-wide gang has no inter-node links to kill; ranks outside
        // the elastic width cannot die either.
        if width >= 2 && d.src < width && d.dst < width && d.src != d.dst {
            chaos = chaos.with_link_death(d.src, d.dst, d.after_seq);
        }
    }
    let mut attempts = 0u32;
    let mut completions = 0u32;
    let mut rehomed: Vec<(usize, usize)> = Vec::new();
    let mut vtime = VTime::ZERO;
    loop {
        attempts += 1;
        assert!(
            attempts <= cfg.max_attempts,
            "job {} exceeded {} attempts",
            spec.id,
            cfg.max_attempts
        );
        // Expected fail-stop panics (dead link, post-shutdown receives)
        // are noise while this guard lives; real bugs still print.
        let quiet = Quiet::engage();
        match run_attempt(spec, width, chaos.clone(), &cell) {
            Ok(out) => {
                drop(quiet);
                completions += 1;
                assert_eq!(completions, 1, "job {} completed twice", spec.id);
                vtime += out.report.exec_time;
                return JobOutcome {
                    id: spec.id,
                    width,
                    nodes,
                    submit_at: spec.submit_at,
                    start_at,
                    finish_at: start_at + vtime,
                    attempts,
                    rehomed,
                    digest: out.digest,
                    completions,
                    stats: StatsReport::from_run(format!("job-{}", spec.id), &out.report),
                };
            }
            Err(failed) => {
                drop(quiet);
                // The report names the dead link; the victim is the rank
                // the rest of the gang could not reach.
                let dead_rank = failed
                    .fabric_errors()
                    .first()
                    .map(|e| e.dst)
                    .unwrap_or_else(|| {
                        panic!("job {} died without a fabric error: {}", spec.id, failed)
                    });
                let gave_up = failed
                    .fabric_errors()
                    .iter()
                    .map(|e| e.gave_up_at)
                    .max()
                    .unwrap_or(VTime::ZERO);
                vtime += gave_up + cfg.rehome_penalty;
                let rank = dead_rank.min(width - 1);
                let dead_machine = nodes[rank];
                dead_nodes.insert(dead_machine);
                if let Some(&repl) = free.iter().next() {
                    // Re-home onto a spare: the checkpointed pages land on
                    // the replacement when the next attempt restores them.
                    free.remove(&repl);
                    nodes[rank] = repl;
                    rehomed.push((dead_machine, repl));
                } else {
                    // No spare: the victim power-cycles and the job
                    // restarts its interval in place.
                    rehomed.push((dead_machine, dead_machine));
                }
                // The replacement hardware is healthy: drop the death
                // schedule, keep the residual chaos.
                chaos = cfg.base_chaos.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn spec(id: u64, min_w: usize, max_w: usize, at_us: u64) -> JobSpec {
        JobSpec {
            id,
            kind: JobKind::CgLite {
                n: 20,
                intervals: 3,
                seed: 100 + id,
            },
            min_width: min_w,
            max_width: max_w,
            submit_at: VTime::from_micros(at_us),
        }
    }

    #[test]
    fn batch_completes_exactly_once_each() {
        let cfg = ServeConfig {
            machine_nodes: 4,
            ..ServeConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, 1, 2, i * 50)).collect();
        let report = serve(&cfg, jobs.clone());
        assert_eq!(report.outcomes.len(), 6);
        for j in &jobs {
            let out = report.outcome(j.id).expect("every job served");
            assert_eq!(out.completions, 1);
            assert_eq!(out.digest, j.kind.reference_digest(), "job {}", j.id);
            assert!(out.start_at >= j.submit_at);
            assert!(out.finish_at > out.start_at);
        }
        assert!(report.makespan > VTime::ZERO);
    }

    #[test]
    fn killed_job_rehomes_and_stays_bit_identical() {
        let mut deaths = BTreeMap::new();
        deaths.insert(
            0,
            LinkDeath {
                src: 0,
                dst: 1,
                after_seq: 12,
            },
        );
        let cfg = ServeConfig {
            machine_nodes: 4,
            deaths,
            ..ServeConfig::default()
        };
        let job = spec(0, 2, 2, 0);
        let report = serve(&cfg, vec![job.clone()]);
        let out = report.outcome(0).expect("served");
        assert!(out.attempts >= 2, "the death must actually fire");
        assert_eq!(out.rehomed.len(), out.attempts as usize - 1);
        assert_eq!(out.completions, 1, "exactly once despite re-execution");
        assert_eq!(
            out.digest,
            job.kind.reference_digest(),
            "survival must not change a single bit"
        );
        // The dead node was swapped for a spare and is named in the report.
        assert_eq!(report.dead_nodes.len(), 1);
        assert_ne!(out.rehomed[0].0, out.rehomed[0].1, "spare was available");
        // The per-job stats name the dead link era: the completing attempt
        // itself is clean, but the outcome records the re-home.
        assert!(report.rehomes() >= 1);
    }

    #[test]
    fn elastic_width_shrinks_to_fit_and_grows_when_free() {
        let cfg = ServeConfig {
            machine_nodes: 3,
            ..ServeConfig::default()
        };
        // Job 0 wants 4 nodes but the machine has 3: elastic shrink.
        let report = serve(&cfg, vec![spec(0, 1, 4, 0)]);
        assert_eq!(report.outcome(0).unwrap().width, 3);
        assert_eq!(
            report.outcome(0).unwrap().digest,
            spec(0, 1, 4, 0).kind.reference_digest()
        );
    }

    #[test]
    fn backfill_lets_small_jobs_pass_a_stuck_wide_one() {
        // Job 0 holds the whole machine; job 1 (wide) must wait for it,
        // but job 2 (narrow) arrives later and still cannot fit while 0
        // runs... with a 2-node machine, 0 takes both, 1 needs 2, 2 needs
        // 1 — nothing fits until 0 finishes, then FIFO admits 1, then 2.
        // With a 3-node machine, 0 takes all three at admission; after it
        // finishes 1 takes two and 2 backfills alongside on the third.
        let cfg = ServeConfig {
            machine_nodes: 3,
            ..ServeConfig::default()
        };
        let jobs = vec![spec(0, 1, 3, 0), spec(1, 2, 2, 10), spec(2, 1, 1, 20)];
        let report = serve(&cfg, jobs);
        let (o0, o1, o2) = (
            report.outcome(0).unwrap().clone(),
            report.outcome(1).unwrap().clone(),
            report.outcome(2).unwrap().clone(),
        );
        assert_eq!(o0.width, 3);
        // 1 and 2 start together once 0 frees the machine: 2 backfilled
        // onto the node 1 left over.
        assert!(o1.start_at >= o0.finish_at);
        assert_eq!(o2.start_at, o1.start_at);
        assert_eq!(o2.nodes.len(), 1);
    }
}
