//! The serving soak: a deterministic stream of many small jobs, a
//! fraction of them scheduled to lose a node mid-run, verified
//! exactly-once and bit-identical against sequential references.

use std::collections::BTreeMap;

use parade_net::{ChaosProfile, VTime};
use parade_testkit::rng::TestRng;

use crate::job::{JobKind, JobSpec};
use crate::sched::{serve, LinkDeath, ServeConfig, ServeReport};

/// Soak knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Number of jobs to serve.
    pub jobs: usize,
    /// Machine size.
    pub machine_nodes: usize,
    /// Master seed for the job mix and the death schedule.
    pub seed: u64,
    /// One in `death_every` jobs is scheduled to lose a node (0 = none).
    pub death_every: usize,
    /// Residual chaos for every attempt (`PARADE_CHAOS`).
    pub chaos: ChaosProfile,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            jobs: 100,
            machine_nodes: 12,
            seed: 0xC0FFEE,
            death_every: 7,
            chaos: ChaosProfile::off(),
        }
    }
}

/// What the soak observed. `ok()` is the overall gate.
#[derive(Debug, Clone)]
pub struct SoakSummary {
    pub jobs: usize,
    /// Jobs that completed exactly once.
    pub completed_once: usize,
    /// Jobs whose digest differed from the sequential reference.
    pub digest_mismatches: usize,
    /// Jobs that survived at least one node death.
    pub rehomed_jobs: usize,
    /// Total re-home events.
    pub rehomes: usize,
    /// Machine nodes power-cycled at least once.
    pub dead_nodes: usize,
    /// Virtual completion time of the whole batch.
    pub makespan: VTime,
    /// Mean job latency (finish − submit) in virtual nanoseconds.
    pub mean_latency_ns: u64,
    /// Mean queue wait (start − submit) in virtual nanoseconds.
    pub mean_wait_ns: u64,
}

impl SoakSummary {
    /// Exactly-once, bit-identical, and nothing lost.
    pub fn ok(&self) -> bool {
        self.completed_once == self.jobs && self.digest_mismatches == 0
    }
}

/// Generate the deterministic job mix for `cfg`.
pub fn job_mix(cfg: &SoakConfig) -> (Vec<JobSpec>, BTreeMap<u64, LinkDeath>) {
    let mut rng = TestRng::new(cfg.seed);
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut deaths = BTreeMap::new();
    let mut submit = VTime::ZERO;
    for id in 0..cfg.jobs as u64 {
        let kind = match rng.next_u64() % 3 {
            0 => JobKind::CgLite {
                n: 16 + (rng.next_u64() % 33) as usize,
                intervals: 2 + (rng.next_u64() % 3) as usize,
                seed: rng.next_u64() >> 18,
            },
            1 => JobKind::EpBlocks {
                batches: 2 + (rng.next_u64() % 3) as usize,
                pairs_per_batch: 64 + (rng.next_u64() % 65) as usize,
                seed: rng.next_u64() >> 18,
            },
            _ => JobKind::Nbody {
                np: 8 + (rng.next_u64() % 9) as usize,
                steps: 2 + (rng.next_u64() % 3) as usize,
                seed: rng.next_u64() >> 18,
            },
        };
        let max_w = 4.min(cfg.machine_nodes);
        // Candidate deaths need a ≥2-wide gang so there is a link to kill.
        let victim = cfg.death_every > 0 && (id as usize) % cfg.death_every == cfg.death_every - 1;
        let min_w = if victim {
            2 + (rng.next_u64() % (max_w as u64 - 1)) as usize
        } else {
            1 + (rng.next_u64() % max_w as u64) as usize
        };
        if victim {
            // Kill a link between two ranks that exist at min_width, a
            // little way into the run so checkpoints exist.
            let dst = 1 + (rng.next_u64() % (min_w as u64 - 1)) as usize;
            deaths.insert(
                id,
                LinkDeath {
                    src: 0,
                    dst,
                    // Low enough that even the smallest jobs send this many
                    // messages on the link before finishing — the death
                    // should actually fire, not expire with the job.
                    after_seq: 4 + rng.next_u64() % 16,
                },
            );
        }
        jobs.push(JobSpec {
            id,
            kind,
            min_width: min_w,
            max_width: max_w.max(min_w),
            submit_at: submit,
        });
        // Poisson-ish staggered arrivals.
        submit += VTime::from_micros(rng.next_u64() % 200);
    }
    (jobs, deaths)
}

/// Run the soak and verify every job, fail closed.
pub fn soak(cfg: &SoakConfig) -> SoakSummary {
    let (jobs, deaths) = job_mix(cfg);
    let specs = jobs.clone();
    let serve_cfg = ServeConfig {
        machine_nodes: cfg.machine_nodes,
        base_chaos: cfg.chaos.clone(),
        deaths,
        ..ServeConfig::default()
    };
    let report = serve(&serve_cfg, jobs);
    summarize(cfg, &specs, &report)
}

fn summarize(cfg: &SoakConfig, specs: &[JobSpec], report: &ServeReport) -> SoakSummary {
    // Memoized sequential references: equal kinds share one oracle run.
    let mut refs: BTreeMap<JobKind, u64> = BTreeMap::new();
    let mut completed_once = 0usize;
    let mut digest_mismatches = 0usize;
    let mut rehomed_jobs = 0usize;
    let mut lat_sum = 0u64;
    let mut wait_sum = 0u64;
    for spec in specs {
        let Some(out) = report.outcome(spec.id) else {
            continue;
        };
        if out.completions == 1 {
            completed_once += 1;
        }
        let expect = *refs
            .entry(spec.kind)
            .or_insert_with(|| spec.kind.reference_digest());
        if out.digest != expect {
            digest_mismatches += 1;
        }
        if !out.rehomed.is_empty() {
            rehomed_jobs += 1;
        }
        lat_sum += out.finish_at.as_nanos() - out.submit_at.as_nanos();
        wait_sum += out.waited().as_nanos();
    }
    let n = report.outcomes.len().max(1) as u64;
    SoakSummary {
        jobs: cfg.jobs,
        completed_once,
        digest_mismatches,
        rehomed_jobs,
        rehomes: report.rehomes(),
        dead_nodes: report.dead_nodes.len(),
        makespan: report.makespan,
        mean_latency_ns: lat_sum / n,
        mean_wait_ns: wait_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_survives_deaths_exactly_once() {
        let cfg = SoakConfig {
            jobs: 24,
            machine_nodes: 8,
            death_every: 4,
            ..SoakConfig::default()
        };
        let summary = soak(&cfg);
        assert!(summary.ok(), "soak must be exactly-once: {summary:?}");
        assert!(
            summary.rehomed_jobs >= 3,
            "deaths were scheduled for 6 jobs, most must actually fire: {summary:?}"
        );
        assert!(summary.dead_nodes >= 1);
        assert!(summary.mean_latency_ns >= summary.mean_wait_ns);
    }

    #[test]
    fn job_mix_is_deterministic() {
        let cfg = SoakConfig {
            jobs: 10,
            ..SoakConfig::default()
        };
        let (a, da) = job_mix(&cfg);
        let (b, db) = job_mix(&cfg);
        assert_eq!(da, db);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.min_width, y.min_width);
            assert_eq!(x.submit_at, y.submit_at);
        }
    }
}
