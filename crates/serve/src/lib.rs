//! # parade-serve — the multi-job serving layer
//!
//! Serves many concurrent jobs on one simulated cluster. Each job is an
//! interval-structured parallel program; the scheduler gang-places it on
//! free machine nodes (FIFO + EASY-style backfill, elastic widths), runs
//! it on a private sub-fabric so jobs cannot interfere, and survives
//! injected node death: the master checkpoints the job's state pages at
//! every interval boundary through the DSM read path, and when a link
//! dies mid-interval the scheduler re-homes the checkpointed pages onto a
//! replacement node and re-runs only the interval that died.
//!
//! Two invariants make this safely testable at a thousand-job scale:
//!
//! * **Width-independent arithmetic** (see [`job`]) — every kernel's
//!   result is a pure function of its checkpointed state, at any gang
//!   width, under any chaos, on any steal schedule. One sequential
//!   reference predicts the exact bits of every parallel execution.
//! * **Exactly-once completion** — a job is admitted once, completes
//!   once (asserted), and interval re-execution after a re-home replays
//!   deterministic task ids whose id-sorted merge is identical to the
//!   run that died.
//!
//! ```
//! use parade_serve::{serve, JobKind, JobSpec, ServeConfig};
//! use parade_net::VTime;
//!
//! let jobs = vec![JobSpec {
//!     id: 0,
//!     kind: JobKind::CgLite { n: 16, intervals: 2, seed: 1 },
//!     min_width: 1,
//!     max_width: 2,
//!     submit_at: VTime::ZERO,
//! }];
//! let report = serve(&ServeConfig::default(), jobs);
//! assert_eq!(report.outcomes.len(), 1);
//! assert_eq!(report.outcomes[0].completions, 1);
//! ```

pub mod job;
pub mod quiet;
pub mod run;
pub mod sched;
pub mod soak;

pub use job::{digest, JobKind, JobSpec, BLOCKS};
pub use quiet::Quiet;
pub use run::{run_attempt, AttemptOutcome, Checkpoint, CkptCell};
pub use sched::{serve, JobOutcome, LinkDeath, ServeConfig, ServeReport};
pub use soak::{job_mix, soak, SoakConfig, SoakSummary};
