//! Job specifications and the width-independent interval kernels.
//!
//! A serving-layer job is a small iterative program structured as a
//! sequence of **intervals**: each interval runs one or more parallel
//! regions over the job's gang and ends at a barrier, where the master
//! checkpoints the job's state vector. The scheduler may run a job at any
//! width between `min_width` and `max_width` (elastic gang sizing), so
//! every kernel here is written to be **width-independent at the bit
//! level**: parallel work is decomposed into fixed blocks whose values are
//! pure functions of the checkpointed state, and all floating-point
//! reductions are folded serially by the master in fixed block order. One
//! sequential reference run therefore predicts the exact bits of every
//! parallel execution, at any width, on any steal schedule, under any
//! chaos — the serving soak's exactly-once check leans on this.

use std::sync::Arc;

use parade_core::{MasterCtx, SharedVec, TaskCtx as SpawnCtx, TaskDesc, TaskFn, ThreadCtx};
use parade_kernels::nasrng::NasRng;

/// Fixed sub-block count for block-decomposed kernels. Independent of the
/// job's width by design: the *values* computed per block never depend on
/// which thread ran the block.
pub const BLOCKS: usize = 8;

/// What a job computes. All parameters are part of the job's identity;
/// two jobs with equal kinds produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobKind {
    /// Power-iteration on the tridiagonal stencil `2.5·xᵢ − xᵢ₋₁ − xᵢ₊₁`
    /// (a CG-S-flavoured sparse kernel): each interval is one mat-vec plus
    /// a serial normalization.
    CgLite {
        n: usize,
        intervals: usize,
        seed: u64,
    },
    /// EP-flavoured Gaussian-pair batches over the NAS 46-bit LCG: each
    /// interval consumes one batch, split over [`BLOCKS`] jump-ahead
    /// streams, folded serially in block order.
    EpBlocks {
        batches: usize,
        pairs_per_batch: usize,
        seed: u64,
    },
    /// All-pairs softened-gravity n-body: forces are computed by the
    /// distributed tasking layer (one task per particle block, id-sorted
    /// merge), integration is serial. Each interval is one leapfrog step.
    Nbody { np: usize, steps: usize, seed: u64 },
}

impl JobKind {
    /// Number of intervals (checkpoint periods) the job runs.
    pub fn intervals(&self) -> usize {
        match *self {
            JobKind::CgLite { intervals, .. } => intervals,
            JobKind::EpBlocks { batches, .. } => batches,
            JobKind::Nbody { steps, .. } => steps,
        }
    }

    /// Length of the job's state vector.
    pub fn state_len(&self) -> usize {
        match *self {
            JobKind::CgLite { n, .. } => n,
            // sum_x, sum_y, hits, batches_done
            JobKind::EpBlocks { .. } => 4,
            // positions then velocities, 3 components each
            JobKind::Nbody { np, .. } => 6 * np,
        }
    }

    /// Length of the per-interval scratch vector (block partials).
    pub fn scratch_len(&self) -> usize {
        match *self {
            JobKind::CgLite { n, .. } => n,
            JobKind::EpBlocks { .. } => 3 * BLOCKS,
            JobKind::Nbody { np, .. } => 3 * np,
        }
    }

    /// The deterministic initial state.
    pub fn init_state(&self) -> Vec<f64> {
        match *self {
            JobKind::CgLite { n, seed, .. } => {
                let mut rng = NasRng::nas(seed | 1);
                (0..n).map(|_| rng.next_f64() + 0.5).collect()
            }
            JobKind::EpBlocks { .. } => vec![0.0; 4],
            JobKind::Nbody { np, seed, .. } => {
                let mut rng = NasRng::nas(seed | 1);
                let mut st = vec![0.0; 6 * np];
                for p in st.iter_mut().take(3 * np) {
                    *p = 2.0 * rng.next_f64() - 1.0;
                }
                // Velocities start at a tenth of a fresh deviate.
                for v in st.iter_mut().skip(3 * np) {
                    *v = 0.2 * rng.next_f64() - 0.1;
                }
                st
            }
        }
    }

    /// Advance the sequential reference by one interval, in place.
    /// This is the bit-exact oracle for [`JobKind::step_parallel`].
    pub fn step_reference(&self, state: &mut [f64], interval: usize) {
        match *self {
            JobKind::CgLite { n, .. } => {
                let y: Vec<f64> = (0..n).map(|i| cg_row(state, n, i)).collect();
                cg_normalize(&y, state);
            }
            JobKind::EpBlocks {
                pairs_per_batch,
                seed,
                ..
            } => {
                let mut partials = vec![0.0; 3 * BLOCKS];
                for b in 0..BLOCKS {
                    let (sx, sy, hits) = ep_block(seed, interval, b, pairs_per_batch);
                    partials[3 * b] = sx;
                    partials[3 * b + 1] = sy;
                    partials[3 * b + 2] = hits;
                }
                ep_fold(&partials, state);
            }
            JobKind::Nbody { np, .. } => {
                let mut forces = vec![0.0; 3 * np];
                for b in 0..BLOCKS.min(np) {
                    let (lo, hi) = block_range(np, b);
                    let f = nbody_forces(state, np, lo, hi);
                    forces[3 * lo..3 * hi].copy_from_slice(&f);
                }
                nbody_integrate(state, &forces, np);
            }
        }
    }

    /// Run one interval on the cluster: parallel block work into `scratch`,
    /// then the master's serial combine back into `xs`. Produces the same
    /// bits as [`JobKind::step_reference`] at every width.
    pub fn step_parallel(
        &self,
        g: &mut MasterCtx,
        xs: &SharedVec<f64>,
        scratch: &SharedVec<f64>,
        interval: usize,
    ) {
        match *self {
            JobKind::CgLite { n, .. } => {
                let (xs, ys) = (*xs, *scratch);
                g.parallel(move |tc| {
                    let y = tc.bind_f64(&ys);
                    let mut row = vec![0.0; n];
                    tc.read_into(&xs, 0, &mut row);
                    for b in tc.for_static(0..BLOCKS.min(n)) {
                        let (lo, hi) = block_range(n, b);
                        for i in lo..hi {
                            y.set(i, cg_row(&row, n, i));
                        }
                    }
                });
                let mut y = vec![0.0; n];
                g.read_into(scratch, 0, &mut y);
                let mut out = vec![0.0; n];
                cg_normalize(&y, &mut out);
                g.write_from(&xs, 0, &out);
            }
            JobKind::EpBlocks {
                pairs_per_batch,
                seed,
                ..
            } => {
                let part = *scratch;
                g.parallel(move |tc| {
                    for b in tc.for_static(0..BLOCKS) {
                        let (sx, sy, hits) = ep_block(seed, interval, b, pairs_per_batch);
                        tc.set(&part, 3 * b, sx);
                        tc.set(&part, 3 * b + 1, sy);
                        tc.set(&part, 3 * b + 2, hits);
                    }
                });
                let mut partials = vec![0.0; 3 * BLOCKS];
                g.read_into(scratch, 0, &mut partials);
                let mut state = vec![0.0; 4];
                g.read_into(xs, 0, &mut state);
                ep_fold(&partials, &mut state);
                g.write_from(xs, 0, &state);
            }
            JobKind::Nbody { np, .. } => {
                let (st, fs) = (*xs, *scratch);
                g.parallel(move |tc| {
                    let funcs: Vec<TaskFn> = vec![Arc::new(
                        move |tc: &ThreadCtx, d: &TaskDesc, _s: &mut SpawnCtx| {
                            let b = d.args[0] as usize;
                            let (lo, hi) = block_range(np, b);
                            let mut state = vec![0.0; 6 * np];
                            tc.read_into(&st, 0, &mut state);
                            nbody_forces(&state, np, lo, hi)
                        },
                    )];
                    // Exactly-once task ids: node 0 spawns blocks in order,
                    // so the id-sorted merge *is* block order, identical on
                    // every width and steal schedule — and identical again
                    // when a re-homed attempt re-runs the interval.
                    let merged = tc.task_phase(&funcs, |scope| {
                        if scope.node() == 0 {
                            for b in 0..BLOCKS.min(np) as u64 {
                                scope.spawn(0, vec![b]);
                            }
                        }
                    });
                    if let (Some(m), 0) = (merged, tc.thread_num()) {
                        let f = tc.bind_f64(&fs);
                        let mut off = 0;
                        for (_, vals) in &m {
                            for v in vals {
                                f.set(off, *v);
                                off += 1;
                            }
                        }
                    }
                    tc.barrier();
                });
                let mut state = vec![0.0; 6 * np];
                g.read_into(xs, 0, &mut state);
                let mut forces = vec![0.0; 3 * np];
                g.read_into(scratch, 0, &mut forces);
                nbody_integrate(&mut state, &forces, np);
                g.write_from(xs, 0, &state);
            }
        }
    }

    /// Digest of the job's final state after all intervals, via the
    /// sequential reference. Memoize by [`JobKind`]: equal kinds share it.
    pub fn reference_digest(&self) -> u64 {
        let mut st = self.init_state();
        for iv in 0..self.intervals() {
            self.step_reference(&mut st, iv);
        }
        digest(&st)
    }
}

/// One job submitted to the serving layer.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub id: u64,
    pub kind: JobKind,
    /// Smallest gang the job accepts.
    pub min_width: usize,
    /// Largest gang the job can use (elastic grow up to this).
    pub max_width: usize,
    /// Virtual submission time.
    pub submit_at: parade_net::VTime,
}

/// FNV-1a over the exact bit patterns of a state vector: the serving
/// layer's "bit-identical" currency.
pub fn digest(state: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in state {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Element range of fixed block `b` over `n` elements ([`BLOCKS`] blocks,
/// remainder spread over the leading blocks).
pub fn block_range(n: usize, b: usize) -> (usize, usize) {
    let nb = BLOCKS.min(n).max(1);
    let base = n / nb;
    let extra = n % nb;
    let lo = b * base + b.min(extra);
    let hi = lo + base + usize::from(b < extra);
    (lo.min(n), hi.min(n))
}

fn cg_row(x: &[f64], n: usize, i: usize) -> f64 {
    let xm = if i > 0 { x[i - 1] } else { 0.0 };
    let xp = if i + 1 < n { x[i + 1] } else { 0.0 };
    2.5 * x[i] - xm - xp
}

fn cg_normalize(y: &[f64], out: &mut [f64]) {
    let mut norm2 = 0.0;
    for v in y {
        norm2 += v * v;
    }
    let norm = norm2.sqrt().max(f64::MIN_POSITIVE);
    for (o, v) in out.iter_mut().zip(y) {
        *o = v / norm;
    }
}

/// One EP sub-block: `pairs/BLOCKS`-ish Gaussian pairs from a jump-ahead
/// stream at a deterministic offset. Pure function of `(seed, interval,
/// block)` — re-executions are bit-identical.
fn ep_block(seed: u64, interval: usize, b: usize, pairs: usize) -> (f64, f64, f64) {
    let (lo, hi) = block_range(pairs, b);
    let offset = 2 * (interval * pairs + lo) as u64;
    let mut rng = NasRng::nas(seed | 1).at_offset(offset);
    let (mut sx, mut sy, mut hits) = (0.0, 0.0, 0.0);
    for _ in lo..hi {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            sx += (x * f).abs();
            sy += (y * f).abs();
            hits += 1.0;
        }
    }
    (sx, sy, hits)
}

fn ep_fold(partials: &[f64], state: &mut [f64]) {
    for b in 0..BLOCKS {
        state[0] += partials[3 * b];
        state[1] += partials[3 * b + 1];
        state[2] += partials[3 * b + 2];
    }
    state[3] += 1.0;
}

/// Softened all-pairs gravity on particles `lo..hi`; inner sum in fixed
/// index order so the result is independent of who computes the block.
fn nbody_forces(state: &[f64], np: usize, lo: usize, hi: usize) -> Vec<f64> {
    const EPS2: f64 = 1e-3;
    let pos = &state[..3 * np];
    let mut out = Vec::with_capacity(3 * (hi - lo));
    for i in lo..hi {
        let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
        let (xi, yi, zi) = (pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]);
        for j in 0..np {
            if j == i {
                continue;
            }
            let dx = pos[3 * j] - xi;
            let dy = pos[3 * j + 1] - yi;
            let dz = pos[3 * j + 2] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + EPS2;
            let inv = 1.0 / (r2 * r2.sqrt());
            fx += dx * inv;
            fy += dy * inv;
            fz += dz * inv;
        }
        out.push(fx);
        out.push(fy);
        out.push(fz);
    }
    out
}

fn nbody_integrate(state: &mut [f64], forces: &[f64], np: usize) {
    const DT: f64 = 1e-3;
    for i in 0..3 * np {
        state[3 * np + i] += forces[i] * DT;
        state[i] += state[3 * np + i] * DT;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_tile_exactly() {
        for n in [1usize, 5, 8, 9, 16, 37, 100] {
            let nb = BLOCKS.min(n);
            let mut covered = 0;
            for b in 0..nb {
                let (lo, hi) = block_range(n, b);
                assert_eq!(lo, covered, "n={n} b={b}");
                covered = hi;
            }
            assert_eq!(covered, n, "n={n}");
        }
    }

    #[test]
    fn references_are_stable_and_kind_dependent() {
        let a = JobKind::CgLite {
            n: 32,
            intervals: 3,
            seed: 7,
        };
        let b = JobKind::CgLite {
            n: 32,
            intervals: 3,
            seed: 8,
        };
        assert_eq!(a.reference_digest(), a.reference_digest());
        assert_ne!(a.reference_digest(), b.reference_digest());
    }

    #[test]
    fn ep_blocks_tile_the_lcg_stream() {
        // The per-block jump-ahead must tile exactly the pairs a single
        // serial stream would generate.
        let (pairs, seed, iv) = (100usize, 42u64, 3usize);
        let mut whole = NasRng::nas(seed | 1).at_offset(2 * (iv * pairs) as u64);
        let (mut sx, mut sy, mut hits) = (0.0, 0.0, 0.0);
        for _ in 0..pairs {
            let x = 2.0 * whole.next_f64() - 1.0;
            let y = 2.0 * whole.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                sx += (x * f).abs();
                sy += (y * f).abs();
                hits += 1.0;
            }
        }
        let mut tot = (0.0, 0.0, 0.0);
        for b in 0..BLOCKS {
            let (bx, by, bh) = ep_block(seed, iv, b, pairs);
            tot = (tot.0 + bx, tot.1 + by, tot.2 + bh);
        }
        // Hit counts are exact; the sums may differ only in association
        // order — but each block is a contiguous run, so they must match
        // the serial fold of the same runs.
        assert_eq!(tot.2, hits);
        let _ = (sx, sy);
    }
}
