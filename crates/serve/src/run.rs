//! One job attempt on a private sub-fabric, with barrier-time checkpoints.
//!
//! Every attempt is its own [`Cluster`]: a fresh fabric at the job's gang
//! width (one compute thread per node — the serving layer's gangs are
//! node-granular), so concurrent jobs are isolated by construction and a
//! dead link takes down exactly one job. The master checkpoints the job's
//! state region through the DSM page-read path at every interval boundary;
//! a failed attempt leaves the last completed interval in the checkpoint
//! cell, and the next attempt restores from it and re-runs only the
//! interval that died.

use std::sync::{Arc, Mutex};

use parade_core::{Cluster, FailedRun, RunReport};
use parade_net::{ChaosProfile, NetProfile, TimeSource};

use crate::job::JobSpec;

/// The survivable unit of progress: the interval index reached, plus the
/// raw bytes of the job's state region captured at that boundary.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Intervals completed (the next attempt resumes here).
    pub interval: usize,
    /// Page bytes of the state region; `None` until the first boundary.
    pub state: Option<Vec<u8>>,
}

/// Shared checkpoint cell: written by the job's master at every interval
/// boundary, read by the scheduler when it re-homes the job.
pub type CkptCell = Arc<Mutex<Checkpoint>>;

pub fn fresh_cell() -> CkptCell {
    Arc::new(Mutex::new(Checkpoint::default()))
}

fn lock(cell: &CkptCell) -> std::sync::MutexGuard<'_, Checkpoint> {
    // A node death can unwind the master mid-update in principle; the
    // checkpoint is still the last fully written value either way.
    cell.lock().unwrap_or_else(|p| p.into_inner())
}

/// A successful attempt: the final state, its digest, and the run report
/// (virtual times, per-job DSM/network counters).
pub struct AttemptOutcome {
    pub state: Vec<f64>,
    pub digest: u64,
    pub report: RunReport,
}

/// Run one attempt of `spec` at `width` nodes, resuming from `cell`.
///
/// On success the checkpoint cell holds the final interval; on a node
/// death it still holds the last *completed* interval, and the returned
/// [`FailedRun`] names the dead link so the scheduler can re-home.
pub fn run_attempt(
    spec: &JobSpec,
    width: usize,
    chaos: ChaosProfile,
    cell: &CkptCell,
) -> Result<AttemptOutcome, Box<FailedRun>> {
    let kind = spec.kind;
    let cluster = Cluster::builder()
        .nodes(width)
        .threads_per_node(1)
        .net(NetProfile::clan_via())
        .time(TimeSource::Manual)
        .pool_bytes(64 * parade_dsm::PAGE_SIZE)
        .chaos(chaos)
        .build()
        .expect("serve cluster config");
    let cell2 = Arc::clone(cell);
    cluster
        .try_run_with_report(move |g| {
            let start = lock(&cell2).clone();
            let n = kind.state_len();
            let xs = g.alloc_f64(n);
            let scratch = g.alloc_f64(kind.scratch_len());
            match &start.state {
                // Re-home: the checkpointed pages become the fresh
                // sub-fabric's initial contents.
                Some(bytes) => g.restore(&xs, bytes),
                None => g.write_from(&xs, 0, &kind.init_state()),
            }
            for iv in start.interval..kind.intervals() {
                kind.step_parallel(g, &xs, &scratch, iv);
                // Barrier-time page checkpoint through the DSM read path.
                let snap = g.checkpoint(&xs);
                let mut c = lock(&cell2);
                c.interval = iv + 1;
                c.state = Some(snap);
            }
            let mut state = vec![0.0; n];
            g.read_into(&xs, 0, &mut state);
            state
        })
        .map(|(state, report)| {
            let digest = crate::job::digest(&state);
            AttemptOutcome {
                state,
                digest,
                report,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use parade_net::VTime;

    fn spec(kind: JobKind) -> JobSpec {
        JobSpec {
            id: 1,
            kind,
            min_width: 1,
            max_width: 3,
            submit_at: VTime::ZERO,
        }
    }

    #[test]
    fn every_width_matches_the_sequential_reference() {
        let kinds = [
            JobKind::CgLite {
                n: 24,
                intervals: 3,
                seed: 11,
            },
            JobKind::EpBlocks {
                batches: 2,
                pairs_per_batch: 64,
                seed: 12,
            },
            JobKind::Nbody {
                np: 10,
                steps: 2,
                seed: 13,
            },
        ];
        for kind in kinds {
            let expect = kind.reference_digest();
            for width in 1..=3 {
                let out = run_attempt(&spec(kind), width, ChaosProfile::off(), &fresh_cell())
                    .expect("no chaos, no failure");
                assert_eq!(
                    out.digest, expect,
                    "kind {kind:?} at width {width} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn resuming_from_a_checkpoint_reproduces_the_full_run() {
        let kind = JobKind::CgLite {
            n: 16,
            intervals: 4,
            seed: 5,
        };
        let full = run_attempt(&spec(kind), 2, ChaosProfile::off(), &fresh_cell())
            .expect("clean run")
            .digest;
        // Manufacture a mid-run checkpoint by running the reference to
        // interval 2, then hand it to an attempt as if a death happened.
        let mut st = kind.init_state();
        kind.step_reference(&mut st, 0);
        kind.step_reference(&mut st, 1);
        let bytes: Vec<u8> = st.iter().flat_map(|v| v.to_le_bytes()).collect();
        let cell = fresh_cell();
        *cell.lock().unwrap() = Checkpoint {
            interval: 2,
            state: Some(bytes),
        };
        let resumed = run_attempt(&spec(kind), 2, ChaosProfile::off(), &cell)
            .expect("resume run")
            .digest;
        assert_eq!(resumed, full, "resume must not change a single bit");
    }
}
