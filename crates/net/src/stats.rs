//! Traffic statistics, per node and per message class.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::MsgClass;

/// A (messages, bytes) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    pub msgs: u64,
    pub bytes: u64,
}

impl Traffic {
    pub fn add(&mut self, other: Traffic) {
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }
}

#[derive(Default)]
struct Counter {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl Counter {
    fn record(&self, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn load(&self) -> Traffic {
        Traffic {
            msgs: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Send counters for one node, broken down by class.
#[derive(Default)]
pub struct NodeNetStats {
    by_class: [Counter; 4],
}

impl NodeNetStats {
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        self.by_class[class.index()].load()
    }

    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for c in &self.by_class {
            t.add(c.load());
        }
        t
    }
}

/// Fabric-wide statistics.
pub struct NetStats {
    nodes: Vec<NodeNetStats>,
}

impl NetStats {
    pub fn new(n: usize) -> Self {
        NetStats {
            nodes: (0..n).map(|_| NodeNetStats::default()).collect(),
        }
    }

    pub fn record_send(&self, src: usize, class: MsgClass, bytes: usize) {
        self.nodes[src].by_class[class.index()].record(bytes);
    }

    pub fn node(&self, id: usize) -> &NodeNetStats {
        &self.nodes[id]
    }

    /// Sum over all nodes and classes.
    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.totals());
        }
        t
    }

    /// Sum over all nodes for one class.
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.class_totals(class));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_accounting() {
        let s = NetStats::new(2);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(1, MsgClass::Coll, 8);
        assert_eq!(s.class_totals(MsgClass::Dsm).msgs, 2);
        assert_eq!(s.class_totals(MsgClass::Dsm).bytes, 8192);
        assert_eq!(s.class_totals(MsgClass::Coll).msgs, 1);
        assert_eq!(s.totals().msgs, 3);
        assert_eq!(s.node(1).totals().bytes, 8);
    }
}
