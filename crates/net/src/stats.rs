//! Traffic statistics, per node, per direction, and per message class.
//!
//! Sends are counted at [`NetStats::record_send`] (fabric enqueue) and
//! receives at [`NetStats::record_recv`] (fabric dequeue), so the two
//! directions can disagree transiently while packets are in flight —
//! queueing analysis depends on seeing exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::MsgClass;
use crate::reliable::FabricError;
use crate::sync::Mutex;

/// A (messages, bytes) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    pub msgs: u64,
    pub bytes: u64,
}

impl Traffic {
    pub fn add(&mut self, other: Traffic) {
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }
}

/// A point-in-time copy of one node's counters, both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeTraffic {
    pub sent: Traffic,
    pub received: Traffic,
}

impl NodeTraffic {
    pub fn add(&mut self, other: NodeTraffic) {
        self.sent.add(other.sent);
        self.received.add(other.received);
    }
}

#[derive(Default)]
struct Counter {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl Counter {
    fn record(&self, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn load(&self) -> Traffic {
        Traffic {
            msgs: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one node's reliable-channel counters.
///
/// All zero on a chaos-free run: the reliable channel is pass-through and
/// records nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkHealth {
    /// Retransmissions performed by this node's sender side.
    pub retransmits: u64,
    /// Retransmit-timer expiries (every lost data *or* ack transmission).
    pub timeouts: u64,
    /// Transmissions destroyed by the chaos schedule on this node's links.
    pub chaos_drops: u64,
    /// Duplicate copies discarded by this node's receive side.
    pub dup_drops: u64,
    /// Out-of-order arrivals this node's resequencer had to park.
    pub reseq_holds: u64,
    /// Sends that exhausted their retry budget (fail-stop).
    pub send_failures: u64,
}

impl LinkHealth {
    pub fn add(&mut self, other: LinkHealth) {
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.chaos_drops += other.chaos_drops;
        self.dup_drops += other.dup_drops;
        self.reseq_holds += other.reseq_holds;
        self.send_failures += other.send_failures;
    }

    /// True when the reliable channel never had to intervene.
    pub fn is_quiet(&self) -> bool {
        *self == LinkHealth::default()
    }

    /// `(name, value)` pairs for rendering/JSON, in a stable order.
    pub fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("retransmits", self.retransmits),
            ("timeouts", self.timeouts),
            ("chaos_drops", self.chaos_drops),
            ("dup_drops", self.dup_drops),
            ("reseq_holds", self.reseq_holds),
            ("send_failures", self.send_failures),
        ]
    }
}

#[derive(Default)]
struct RelCounters {
    retransmits: AtomicU64,
    timeouts: AtomicU64,
    chaos_drops: AtomicU64,
    dup_drops: AtomicU64,
    reseq_holds: AtomicU64,
    send_failures: AtomicU64,
}

impl RelCounters {
    fn load(&self) -> LinkHealth {
        LinkHealth {
            retransmits: self.retransmits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            chaos_drops: self.chaos_drops.load(Ordering::Relaxed),
            dup_drops: self.dup_drops.load(Ordering::Relaxed),
            reseq_holds: self.reseq_holds.load(Ordering::Relaxed),
            send_failures: self.send_failures.load(Ordering::Relaxed),
        }
    }
}

/// Send and receive counters for one node, broken down by class.
#[derive(Default)]
pub struct NodeNetStats {
    sent: [Counter; 4],
    received: [Counter; 4],
    reliability: RelCounters,
}

impl NodeNetStats {
    /// Sent traffic for one class.
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        self.sent[class.index()].load()
    }

    /// Received traffic for one class.
    pub fn recv_class_totals(&self, class: MsgClass) -> Traffic {
        self.received[class.index()].load()
    }

    /// Sent traffic summed over classes.
    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for c in &self.sent {
            t.add(c.load());
        }
        t
    }

    /// Received traffic summed over classes.
    pub fn recv_totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for c in &self.received {
            t.add(c.load());
        }
        t
    }

    /// Both directions at once.
    pub fn snapshot(&self) -> NodeTraffic {
        NodeTraffic {
            sent: self.totals(),
            received: self.recv_totals(),
        }
    }

    /// Reliable-channel counters for this node.
    pub fn link_health(&self) -> LinkHealth {
        self.reliability.load()
    }
}

/// Fabric-wide statistics.
pub struct NetStats {
    nodes: Vec<NodeNetStats>,
    /// Every retry-budget exhaustion, in recording order. The first entry
    /// is the error that fail-stopped the fabric; later entries are other
    /// links dying in the same interval (senders racing the shutdown), and
    /// a failure report must name all of them — a job whose link died
    /// second would otherwise see `fabric_error: None` next to a garbage
    /// result.
    errors: Mutex<Vec<FabricError>>,
}

impl NetStats {
    pub fn new(n: usize) -> Self {
        NetStats {
            nodes: (0..n).map(|_| NodeNetStats::default()).collect(),
            errors: Mutex::new(Vec::new()),
        }
    }

    pub fn record_send(&self, src: usize, class: MsgClass, bytes: usize) {
        self.nodes[src].sent[class.index()].record(bytes);
    }

    pub fn record_recv(&self, dst: usize, class: MsgClass, bytes: usize) {
        self.nodes[dst].received[class.index()].record(bytes);
    }

    /// Charge one message's ARQ sender-side activity to `src`.
    pub fn record_arq_send(&self, src: usize, retransmits: u64, timeouts: u64, chaos_drops: u64) {
        let r = &self.nodes[src].reliability;
        r.retransmits.fetch_add(retransmits, Ordering::Relaxed);
        r.timeouts.fetch_add(timeouts, Ordering::Relaxed);
        r.chaos_drops.fetch_add(chaos_drops, Ordering::Relaxed);
    }

    /// Charge receive-side resequencer activity to `dst`.
    pub fn record_rx_effect(&self, dst: usize, dup_drops: u64, reseq_holds: u64) {
        let r = &self.nodes[dst].reliability;
        r.dup_drops.fetch_add(dup_drops, Ordering::Relaxed);
        r.reseq_holds.fetch_add(reseq_holds, Ordering::Relaxed);
    }

    /// Record a retry-budget exhaustion. Every distinct failure is kept
    /// (per-link attribution); [`NetStats::fabric_error`] still reports
    /// the first.
    pub fn record_send_failure(&self, err: &FabricError) {
        self.nodes[err.src]
            .reliability
            .send_failures
            .fetch_add(1, Ordering::Relaxed);
        self.errors.lock().push(err.clone());
    }

    /// The first fatal link error, if the run failed.
    pub fn fabric_error(&self) -> Option<FabricError> {
        self.errors.lock().first().cloned()
    }

    /// Every fatal link error, in recording order: when several links die
    /// in the same interval each one is named here, not just the first.
    pub fn fabric_errors(&self) -> Vec<FabricError> {
        self.errors.lock().clone()
    }

    /// Per-node reliable-channel counters.
    pub fn link_health(&self) -> Vec<LinkHealth> {
        self.nodes.iter().map(|n| n.link_health()).collect()
    }

    /// Reliable-channel counters summed over nodes.
    pub fn link_health_totals(&self) -> LinkHealth {
        let mut t = LinkHealth::default();
        for n in &self.nodes {
            t.add(n.link_health());
        }
        t
    }

    pub fn node(&self, id: usize) -> &NodeNetStats {
        &self.nodes[id]
    }

    /// Per-node snapshots, both directions.
    pub fn snapshot(&self) -> Vec<NodeTraffic> {
        self.nodes.iter().map(|n| n.snapshot()).collect()
    }

    /// Sent traffic over all nodes and classes.
    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.totals());
        }
        t
    }

    /// Received traffic over all nodes and classes.
    pub fn recv_totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.recv_totals());
        }
        t
    }

    /// Sent traffic over all nodes for one class.
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.class_totals(class));
        }
        t
    }

    /// Received traffic over all nodes for one class.
    pub fn recv_class_totals(&self, class: MsgClass) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.recv_class_totals(class));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_accounting() {
        let s = NetStats::new(2);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(1, MsgClass::Coll, 8);
        assert_eq!(s.class_totals(MsgClass::Dsm).msgs, 2);
        assert_eq!(s.class_totals(MsgClass::Dsm).bytes, 8192);
        assert_eq!(s.class_totals(MsgClass::Coll).msgs, 1);
        assert_eq!(s.totals().msgs, 3);
        assert_eq!(s.node(1).totals().bytes, 8);
    }

    #[test]
    fn both_directions_tracked_independently() {
        let s = NetStats::new(2);
        // Node 0 sends 4096 to node 1; only node 1's receive side moves.
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_recv(1, MsgClass::Dsm, 4096);
        assert_eq!(s.node(0).totals().bytes, 4096);
        assert_eq!(s.node(0).recv_totals().bytes, 0);
        assert_eq!(s.node(1).recv_totals().bytes, 4096);
        assert_eq!(s.node(1).totals().bytes, 0);
        assert_eq!(s.recv_class_totals(MsgClass::Dsm).msgs, 1);
        assert_eq!(s.recv_totals(), s.totals());
        let snap = s.snapshot();
        assert_eq!(snap[0].sent.bytes, 4096);
        assert_eq!(snap[1].received.bytes, 4096);
        let mut sum = NodeTraffic::default();
        for n in snap {
            sum.add(n);
        }
        assert_eq!(sum.sent, sum.received);
    }

    #[test]
    fn link_health_counters_and_first_error_sticks() {
        use crate::vtime::VTime;
        let s = NetStats::new(3);
        assert!(s.link_health_totals().is_quiet());
        s.record_arq_send(0, 2, 3, 3);
        s.record_rx_effect(1, 1, 4);
        let h = s.link_health_totals();
        assert_eq!(h.retransmits, 2);
        assert_eq!(h.timeouts, 3);
        assert_eq!(h.chaos_drops, 3);
        assert_eq!(h.dup_drops, 1);
        assert_eq!(h.reseq_holds, 4);
        assert_eq!(s.node(0).link_health().retransmits, 2);
        assert_eq!(s.node(1).link_health().dup_drops, 1);
        assert!(!h.is_quiet());
        assert_eq!(h.fields()[0], ("retransmits", 2));

        let err = |src: usize| FabricError {
            src,
            dst: 2,
            class: MsgClass::Dsm,
            tag: 1,
            seq: 0,
            attempts: 11,
            gave_up_at: VTime::from_micros(100),
        };
        assert!(s.fabric_error().is_none());
        s.record_send_failure(&err(0));
        s.record_send_failure(&err(1));
        // The first error sticks; both failures are counted and both
        // links are named in the full error list.
        assert_eq!(s.fabric_error().unwrap().src, 0);
        assert_eq!(s.link_health_totals().send_failures, 2);
        let all = s.fabric_errors();
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].src, all[0].dst), (0, 2));
        assert_eq!((all[1].src, all[1].dst), (1, 2));
    }
}
