//! Traffic statistics, per node, per direction, and per message class.
//!
//! Sends are counted at [`NetStats::record_send`] (fabric enqueue) and
//! receives at [`NetStats::record_recv`] (fabric dequeue), so the two
//! directions can disagree transiently while packets are in flight —
//! queueing analysis depends on seeing exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::MsgClass;

/// A (messages, bytes) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    pub msgs: u64,
    pub bytes: u64,
}

impl Traffic {
    pub fn add(&mut self, other: Traffic) {
        self.msgs += other.msgs;
        self.bytes += other.bytes;
    }
}

/// A point-in-time copy of one node's counters, both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeTraffic {
    pub sent: Traffic,
    pub received: Traffic,
}

impl NodeTraffic {
    pub fn add(&mut self, other: NodeTraffic) {
        self.sent.add(other.sent);
        self.received.add(other.received);
    }
}

#[derive(Default)]
struct Counter {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl Counter {
    fn record(&self, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn load(&self) -> Traffic {
        Traffic {
            msgs: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Send and receive counters for one node, broken down by class.
#[derive(Default)]
pub struct NodeNetStats {
    sent: [Counter; 4],
    received: [Counter; 4],
}

impl NodeNetStats {
    /// Sent traffic for one class.
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        self.sent[class.index()].load()
    }

    /// Received traffic for one class.
    pub fn recv_class_totals(&self, class: MsgClass) -> Traffic {
        self.received[class.index()].load()
    }

    /// Sent traffic summed over classes.
    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for c in &self.sent {
            t.add(c.load());
        }
        t
    }

    /// Received traffic summed over classes.
    pub fn recv_totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for c in &self.received {
            t.add(c.load());
        }
        t
    }

    /// Both directions at once.
    pub fn snapshot(&self) -> NodeTraffic {
        NodeTraffic {
            sent: self.totals(),
            received: self.recv_totals(),
        }
    }
}

/// Fabric-wide statistics.
pub struct NetStats {
    nodes: Vec<NodeNetStats>,
}

impl NetStats {
    pub fn new(n: usize) -> Self {
        NetStats {
            nodes: (0..n).map(|_| NodeNetStats::default()).collect(),
        }
    }

    pub fn record_send(&self, src: usize, class: MsgClass, bytes: usize) {
        self.nodes[src].sent[class.index()].record(bytes);
    }

    pub fn record_recv(&self, dst: usize, class: MsgClass, bytes: usize) {
        self.nodes[dst].received[class.index()].record(bytes);
    }

    pub fn node(&self, id: usize) -> &NodeNetStats {
        &self.nodes[id]
    }

    /// Per-node snapshots, both directions.
    pub fn snapshot(&self) -> Vec<NodeTraffic> {
        self.nodes.iter().map(|n| n.snapshot()).collect()
    }

    /// Sent traffic over all nodes and classes.
    pub fn totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.totals());
        }
        t
    }

    /// Received traffic over all nodes and classes.
    pub fn recv_totals(&self) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.recv_totals());
        }
        t
    }

    /// Sent traffic over all nodes for one class.
    pub fn class_totals(&self, class: MsgClass) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.class_totals(class));
        }
        t
    }

    /// Received traffic over all nodes for one class.
    pub fn recv_class_totals(&self, class: MsgClass) -> Traffic {
        let mut t = Traffic::default();
        for n in &self.nodes {
            t.add(n.recv_class_totals(class));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_accounting() {
        let s = NetStats::new(2);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_send(1, MsgClass::Coll, 8);
        assert_eq!(s.class_totals(MsgClass::Dsm).msgs, 2);
        assert_eq!(s.class_totals(MsgClass::Dsm).bytes, 8192);
        assert_eq!(s.class_totals(MsgClass::Coll).msgs, 1);
        assert_eq!(s.totals().msgs, 3);
        assert_eq!(s.node(1).totals().bytes, 8);
    }

    #[test]
    fn both_directions_tracked_independently() {
        let s = NetStats::new(2);
        // Node 0 sends 4096 to node 1; only node 1's receive side moves.
        s.record_send(0, MsgClass::Dsm, 4096);
        s.record_recv(1, MsgClass::Dsm, 4096);
        assert_eq!(s.node(0).totals().bytes, 4096);
        assert_eq!(s.node(0).recv_totals().bytes, 0);
        assert_eq!(s.node(1).recv_totals().bytes, 4096);
        assert_eq!(s.node(1).totals().bytes, 0);
        assert_eq!(s.recv_class_totals(MsgClass::Dsm).msgs, 1);
        assert_eq!(s.recv_totals(), s.totals());
        let snap = s.snapshot();
        assert_eq!(snap[0].sent.bytes, 4096);
        assert_eq!(snap[1].received.bytes, 4096);
        let mut sum = NodeTraffic::default();
        for n in snap {
            sum.add(n);
        }
        assert_eq!(sum.sent, sum.received);
    }
}
