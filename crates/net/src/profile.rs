//! Network cost profiles.
//!
//! The paper's testbed has two fabrics: a Giganet cLAN VIA switch (the mini
//! MPI the authors wrote runs directly on VIA) and a 3Com Fast Ethernet
//! switch driven by MPI/Pro over TCP/IP. Messages between threads of the
//! *same* node go through shared memory. Each case is a [`NetProfile`].

use crate::vtime::VTime;

/// Cost model for one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCost {
    /// One-way wire latency added to every message.
    pub latency: VTime,
    /// Transfer time per payload byte, in nanoseconds (f64 to allow <1ns).
    pub per_byte_ns: f64,
}

impl LinkCost {
    pub fn transfer(&self, bytes: usize) -> VTime {
        self.latency + VTime::from_nanos((self.per_byte_ns * bytes as f64).round() as u64)
    }
}

/// A named cost profile for the whole fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    pub name: &'static str,
    /// Inter-node messages.
    pub remote: LinkCost,
    /// Intra-node (same node id) messages: a shared-memory hand-off.
    pub local: LinkCost,
    /// CPU overhead charged to a thread for posting or matching one message.
    pub per_msg_cpu: VTime,
}

impl NetProfile {
    /// Giganet cLAN, Virtual Interface Architecture. The authors implement a
    /// minimal thread-safe MPI directly on VIA. ~7.5 µs one-way latency,
    /// ~110 MB/s payload bandwidth.
    pub fn clan_via() -> Self {
        NetProfile {
            name: "clan-via",
            remote: LinkCost {
                latency: VTime::from_nanos(7_500),
                per_byte_ns: 9.0,
            },
            local: LinkCost {
                latency: VTime::from_nanos(700),
                per_byte_ns: 3.3,
            },
            per_msg_cpu: VTime::from_nanos(1_500),
        }
    }

    /// 3Com Fast Ethernet with MPI/Pro over TCP/IP. ~120 µs one-way latency,
    /// ~11 MB/s payload bandwidth — the "slow" fabric of the paper.
    pub fn fast_ethernet_tcp() -> Self {
        NetProfile {
            name: "fast-ethernet-tcp",
            remote: LinkCost {
                latency: VTime::from_micros(120),
                per_byte_ns: 90.0,
            },
            local: LinkCost {
                latency: VTime::from_nanos(900),
                per_byte_ns: 3.3,
            },
            per_msg_cpu: VTime::from_micros(8),
        }
    }

    /// A zero-cost profile for protocol unit tests, where only message
    /// *semantics* matter and virtual times should stay deterministic.
    pub fn zero() -> Self {
        NetProfile {
            name: "zero",
            remote: LinkCost {
                latency: VTime::ZERO,
                per_byte_ns: 0.0,
            },
            local: LinkCost {
                latency: VTime::ZERO,
                per_byte_ns: 0.0,
            },
            per_msg_cpu: VTime::ZERO,
        }
    }

    /// Cost of moving `bytes` from node `src` to node `dst`.
    pub fn transfer(&self, src: usize, dst: usize, bytes: usize) -> VTime {
        if src == dst {
            self.local.transfer(bytes)
        } else {
            self.remote.transfer(bytes)
        }
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::clan_via()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_with_size() {
        let p = NetProfile::clan_via();
        let small = p.transfer(0, 1, 16);
        let large = p.transfer(0, 1, 4096);
        assert!(large > small);
        // 4 KiB page at 9 ns/byte = ~36.9us + 7.5us latency.
        assert_eq!(large.as_nanos(), 7_500 + (9.0f64 * 4096.0).round() as u64);
    }

    #[test]
    fn local_transfer_is_cheaper() {
        let p = NetProfile::fast_ethernet_tcp();
        assert!(p.transfer(2, 2, 4096) < p.transfer(2, 3, 4096));
    }

    #[test]
    fn zero_profile_is_free() {
        let p = NetProfile::zero();
        assert_eq!(p.transfer(0, 5, 123456), VTime::ZERO);
        assert_eq!(p.per_msg_cpu, VTime::ZERO);
    }

    #[test]
    fn ethernet_slower_than_via() {
        let via = NetProfile::clan_via();
        let eth = NetProfile::fast_ethernet_tcp();
        assert!(eth.transfer(0, 1, 4096) > via.transfer(0, 1, 4096));
        assert!(eth.remote.latency > via.remote.latency);
    }
}
