//! Packets and message classes.

use crate::buffer::Bytes;
use crate::vtime::VTime;

/// Traffic classes demultiplexed into separate mailboxes at every endpoint.
///
/// Keeping the SDSM protocol traffic apart from MPI traffic mirrors the
/// paper's runtime, where a dedicated communication thread services
/// asynchronous DSM control messages while application threads exchange MPI
/// messages directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// SDSM protocol messages, serviced by the per-node communication thread.
    Dsm,
    /// MPI point-to-point traffic between application threads.
    P2p,
    /// MPI collective traffic (separate context so collectives never match
    /// application point-to-point receives).
    Coll,
    /// Cluster control traffic (fork/join/alloc/shutdown).
    Ctl,
}

impl MsgClass {
    pub const ALL: [MsgClass; 4] = [MsgClass::Dsm, MsgClass::P2p, MsgClass::Coll, MsgClass::Ctl];

    pub fn index(self) -> usize {
        match self {
            MsgClass::Dsm => 0,
            MsgClass::P2p => 1,
            MsgClass::Coll => 2,
            MsgClass::Ctl => 3,
        }
    }
}

/// A message in flight (or queued at the destination mailbox).
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending node.
    pub src: usize,
    /// Traffic class.
    pub class: MsgClass,
    /// Match tag; meaning is class-specific.
    pub tag: u64,
    /// Payload bytes.
    pub payload: Bytes,
    /// Virtual time at which the sender posted the message.
    pub sent_at: VTime,
    /// Virtual time at which the message is available at the destination.
    pub arrive_at: VTime,
    /// Link sequence number within the `(src, dst, class)` ordering domain.
    /// Always `0` when the reliable channel is disengaged (no chaos, or
    /// intra-node traffic).
    pub seq: u64,
}

impl Packet {
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_distinct() {
        let mut seen = [false; 4];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
