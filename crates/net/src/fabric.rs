//! The message fabric: per-node mailboxes with (class, src, tag) matching.
//!
//! The fabric is purely in-process: `send` appends a packet to the
//! destination mailbox and stamps it with a virtual arrival time from the
//! [`NetProfile`]; `recv` blocks (in real time) until a matching packet is
//! queued and then advances the receiver's virtual clock to the arrival
//! stamp. No real-time delays are ever injected — simulation speed is bound
//! only by actual computation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::buffer::Bytes;
use crate::packet::{MsgClass, Packet};
use crate::profile::NetProfile;
use crate::stats::{NetStats, NodeNetStats};
use crate::sync::{Condvar, Mutex};
use crate::vtime::{VClock, VTime};

/// Matching predicate for receives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Match {
    /// Only match packets from this source node.
    pub src: Option<usize>,
    /// Only match packets with this tag.
    pub tag: Option<u64>,
}

impl Match {
    pub fn any() -> Self {
        Match::default()
    }

    pub fn from(src: usize) -> Self {
        Match {
            src: Some(src),
            tag: None,
        }
    }

    pub fn tagged(tag: u64) -> Self {
        Match {
            src: None,
            tag: Some(tag),
        }
    }

    pub fn src_tag(src: usize, tag: u64) -> Self {
        Match {
            src: Some(src),
            tag: Some(tag),
        }
    }

    fn matches(&self, p: &Packet) -> bool {
        self.src.map_or(true, |s| s == p.src) && self.tag.map_or(true, |t| t == p.tag)
    }
}

struct Mailbox {
    queue: Mutex<VecDeque<Packet>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

struct NodePort {
    boxes: [Mailbox; 4],
}

/// The shared interconnect state.
pub struct Fabric {
    ports: Vec<NodePort>,
    profile: NetProfile,
    stats: NetStats,
    shutdown: AtomicBool,
}

impl Fabric {
    /// Build a fabric connecting `n` nodes.
    pub fn new(n: usize, profile: NetProfile) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one node");
        let ports = (0..n)
            .map(|_| NodePort {
                boxes: [
                    Mailbox::new(),
                    Mailbox::new(),
                    Mailbox::new(),
                    Mailbox::new(),
                ],
            })
            .collect();
        Arc::new(Fabric {
            ports,
            profile,
            stats: NetStats::new(n),
            shutdown: AtomicBool::new(false),
        })
    }

    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Create the endpoint for node `id`. Endpoints are cheap handles and
    /// may be cloned freely across a node's threads.
    pub fn endpoint(self: &Arc<Self>, id: usize) -> Endpoint {
        assert!(id < self.ports.len(), "no such node: {id}");
        Endpoint {
            id,
            fabric: Arc::clone(self),
        }
    }

    /// Wake every blocked receiver and make subsequent receives fail fast.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for port in &self.ports {
            for mb in &port.boxes {
                let _g = mb.queue.lock();
                mb.cv.notify_all();
            }
        }
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Error returned by receives when the fabric is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fabric is shut down")
    }
}

impl std::error::Error for Disconnected {}

/// One node's attachment to the fabric.
#[derive(Clone)]
pub struct Endpoint {
    id: usize,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    pub fn id(&self) -> usize {
        self.id
    }

    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    pub fn profile(&self) -> &NetProfile {
        self.fabric.profile()
    }

    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Per-node traffic counters for this endpoint's node.
    pub fn local_stats(&self) -> &NodeNetStats {
        self.fabric.stats.node(self.id)
    }

    /// Post a message. The sender's clock is charged the per-message CPU
    /// overhead; the packet is stamped with its virtual arrival time at the
    /// destination. Sending is asynchronous (eager buffering), matching the
    /// paper's use of short eager MPI messages.
    pub fn send(&self, dst: usize, class: MsgClass, tag: u64, payload: Bytes, clock: &mut VClock) {
        clock.sample_compute();
        self.send_at(dst, class, tag, payload, clock.now());
        clock.charge_comm(self.fabric.profile.per_msg_cpu);
    }

    /// Post a message with an explicit departure timestamp. Used by the
    /// communication thread, which manages its own service clock.
    pub fn send_at(&self, dst: usize, class: MsgClass, tag: u64, payload: Bytes, now: VTime) {
        let fabric = &self.fabric;
        assert!(dst < fabric.ports.len(), "no such node: {dst}");
        let arrive_at = now + fabric.profile.transfer(self.id, dst, payload.len());
        fabric.stats.record_send(self.id, class, payload.len());
        let pkt = Packet {
            src: self.id,
            class,
            tag,
            payload,
            sent_at: now,
            arrive_at,
        };
        let mb = &fabric.ports[dst].boxes[class.index()];
        let mut q = mb.queue.lock();
        q.push_back(pkt);
        mb.cv.notify_all();
    }

    /// Blocking receive of the first queued packet matching `m`.
    ///
    /// On success the caller's clock advances to the packet's virtual
    /// arrival time plus the per-message matching overhead.
    pub fn recv(
        &self,
        class: MsgClass,
        m: Match,
        clock: &mut VClock,
    ) -> Result<Packet, Disconnected> {
        clock.sample_compute();
        let pkt = self.recv_raw(class, m)?;
        clock.sync_to(pkt.arrive_at);
        clock.charge_comm(self.fabric.profile.per_msg_cpu);
        Ok(pkt)
    }

    /// Blocking receive that does not touch any virtual clock. The caller
    /// (the communication thread) reconciles times itself via
    /// [`Packet::arrive_at`].
    pub fn recv_raw(&self, class: MsgClass, m: Match) -> Result<Packet, Disconnected> {
        let fabric = &self.fabric;
        let mb = &fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|p| m.matches(p)) {
                let pkt = q.remove(pos).expect("position just found");
                fabric.stats.record_recv(self.id, class, pkt.payload.len());
                return Ok(pkt);
            }
            if fabric.is_shutdown() {
                return Err(Disconnected);
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Non-blocking receive of any packet in `class`.
    pub fn try_recv(&self, class: MsgClass) -> Option<Packet> {
        let mb = &self.fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        let pkt = q.pop_front()?;
        self.fabric
            .stats
            .record_recv(self.id, class, pkt.payload.len());
        Some(pkt)
    }

    /// Blocking receive of any packet in `class`, without clock handling.
    /// Returns `Err(Disconnected)` once the fabric shuts down and the queue
    /// is drained.
    pub fn recv_any_raw(&self, class: MsgClass) -> Result<Packet, Disconnected> {
        let fabric = &self.fabric;
        let mb = &fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        loop {
            if let Some(p) = q.pop_front() {
                fabric.stats.record_recv(self.id, class, p.payload.len());
                return Ok(p);
            }
            if fabric.is_shutdown() {
                return Err(Disconnected);
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Number of packets currently queued in `class` (diagnostics/tests).
    pub fn queued(&self, class: MsgClass) -> usize {
        self.fabric.ports[self.id].boxes[class.index()]
            .queue
            .lock()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vtime::VClock;

    fn bts(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }

    #[test]
    fn send_recv_advances_virtual_time() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut ca = VClock::manual();
        let mut cb = VClock::manual();
        a.send(1, MsgClass::P2p, 7, bts(&[1, 2, 3]), &mut ca);
        let pkt = b
            .recv(MsgClass::P2p, Match::src_tag(0, 7), &mut cb)
            .unwrap();
        assert_eq!(&pkt.payload[..], &[1, 2, 3]);
        // Receiver time >= one-way latency.
        assert!(cb.now() >= NetProfile::clan_via().remote.latency);
    }

    #[test]
    fn tag_matching_reorders() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::P2p, 1, bts(b"first"), &mut c);
        a.send(1, MsgClass::P2p, 2, bts(b"second"), &mut c);
        // Receive tag 2 before tag 1.
        let p2 = b.recv(MsgClass::P2p, Match::tagged(2), &mut c).unwrap();
        assert_eq!(&p2.payload[..], b"second");
        let p1 = b.recv(MsgClass::P2p, Match::tagged(1), &mut c).unwrap();
        assert_eq!(&p1.payload[..], b"first");
    }

    #[test]
    fn classes_do_not_interfere() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::Dsm, 0, bts(b"dsm"), &mut c);
        a.send(1, MsgClass::P2p, 0, bts(b"p2p"), &mut c);
        let p = b.recv(MsgClass::P2p, Match::any(), &mut c).unwrap();
        assert_eq!(&p.payload[..], b"p2p");
        assert_eq!(b.queued(MsgClass::Dsm), 1);
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let t = std::thread::spawn(move || {
            let mut c = VClock::manual();
            b.recv(MsgClass::P2p, Match::any(), &mut c).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut c = VClock::manual();
        a.send(1, MsgClass::P2p, 9, bts(b"hello"), &mut c);
        let pkt = t.join().unwrap();
        assert_eq!(pkt.tag, 9);
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let fabric = Fabric::new(1, NetProfile::zero());
        let e = fabric.endpoint(0);
        let f2 = Arc::clone(&fabric);
        let t = std::thread::spawn(move || {
            let mut c = VClock::manual();
            e.recv(MsgClass::Ctl, Match::any(), &mut c)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        f2.begin_shutdown();
        assert!(matches!(t.join().unwrap(), Err(Disconnected)));
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::Dsm, 0, bts(&[0u8; 100]), &mut c);
        a.send(1, MsgClass::P2p, 0, bts(&[0u8; 50]), &mut c);
        let s = fabric.stats().totals();
        assert_eq!(s.msgs, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(
            fabric.stats().node(0).class_totals(MsgClass::Dsm).bytes,
            100
        );
        // In flight: sent but not yet received.
        assert_eq!(fabric.stats().recv_totals().msgs, 0);
        // Drain via all three dequeue paths' representatives.
        b.recv(MsgClass::Dsm, Match::any(), &mut c).unwrap();
        b.try_recv(MsgClass::P2p).unwrap();
        let r = fabric.stats().node(1).snapshot();
        assert_eq!(r.received.msgs, 2);
        assert_eq!(r.received.bytes, 150);
        assert_eq!(r.sent.msgs, 0);
        assert_eq!(
            fabric
                .stats()
                .node(1)
                .recv_class_totals(MsgClass::Dsm)
                .bytes,
            100
        );
    }

    #[test]
    fn local_messages_are_faster_than_remote() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        a.send(0, MsgClass::P2p, 0, bts(&[0u8; 64]), &mut c);
        a.send(1, MsgClass::P2p, 1, bts(&[0u8; 64]), &mut c);
        let local = fabric.endpoint(0).try_recv(MsgClass::P2p).unwrap();
        let remote = fabric.endpoint(1).try_recv(MsgClass::P2p).unwrap();
        assert!(local.arrive_at - local.sent_at < remote.arrive_at - remote.sent_at);
    }
}
