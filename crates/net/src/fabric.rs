//! The message fabric: per-node mailboxes with (class, src, tag) matching.
//!
//! The fabric is purely in-process: `send` appends a packet to the
//! destination mailbox and stamps it with a virtual arrival time from the
//! [`NetProfile`]; `recv` blocks (in real time) until a matching packet is
//! queued and then advances the receiver's virtual clock to the arrival
//! stamp. No real-time delays are ever injected — simulation speed is bound
//! only by actual computation.
//!
//! With an active [`ChaosProfile`] the wire becomes faulty and every
//! inter-node message instead crosses the reliable channel: the send path
//! runs the seeded ARQ simulation from [`crate::reliable`] (retransmit
//! timers, backoff, retry budget) and the destination mailbox resequences
//! and deduplicates the surviving copies, so receivers still observe
//! exactly-once, in-order delivery per `(src, dst, class)` link. A send
//! whose retry budget is exhausted fail-stops the fabric with a
//! [`FabricError`] instead of letting the run deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::buffer::Bytes;
use crate::chaos::{ChaosKnobs, ChaosProfile};
use crate::packet::{MsgClass, Packet};
use crate::profile::NetProfile;
use crate::reliable::{simulate_arq, FabricError, LinkRx, RxEffect};
use crate::stats::{NetStats, NodeNetStats};
use crate::sync::{Condvar, Mutex};
use crate::vtime::{VClock, VTime};

/// Observer invoked once per retransmission with
/// `(src, dst, link seq, retransmit departure vtime)`. Used by the cluster
/// layer to emit `net.retransmit` trace events without coupling this crate
/// to the tracer.
pub type RetransmitHook = Box<dyn Fn(usize, usize, u64, VTime) + Send + Sync>;

/// Matching predicate for receives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Match {
    /// Only match packets from this source node.
    pub src: Option<usize>,
    /// Only match packets with this tag.
    pub tag: Option<u64>,
}

impl Match {
    pub fn any() -> Self {
        Match::default()
    }

    pub fn from(src: usize) -> Self {
        Match {
            src: Some(src),
            tag: None,
        }
    }

    pub fn tagged(tag: u64) -> Self {
        Match {
            src: None,
            tag: Some(tag),
        }
    }

    pub fn src_tag(src: usize, tag: u64) -> Self {
        Match {
            src: Some(src),
            tag: Some(tag),
        }
    }

    fn matches(&self, p: &Packet) -> bool {
        self.src.is_none_or(|s| s == p.src) && self.tag.is_none_or(|t| t == p.tag)
    }
}

/// A mailbox's locked state: the visible queue plus, when the reliable
/// channel is engaged, one resequencer per source link.
struct MailboxQ {
    queue: VecDeque<Packet>,
    links: Vec<LinkRx>,
}

impl MailboxQ {
    /// Run one delivered copy through its link's resequencer.
    fn deliver(&mut self, pkt: Packet) -> RxEffect {
        let MailboxQ { queue, links } = self;
        links[pkt.src].accept(pkt, queue)
    }

    /// Present every reorder-parked copy (all links) to the resequencers.
    fn flush_limbo(&mut self) -> RxEffect {
        let MailboxQ { queue, links } = self;
        let mut eff = RxEffect::default();
        for rx in links.iter_mut() {
            eff.merge(rx.flush_limbo(queue));
        }
        eff
    }

    fn ensure_links(&mut self, n: usize) {
        if self.links.len() < n {
            self.links.resize_with(n, LinkRx::default);
        }
    }

    /// Index of the queued packet matching `m` with the earliest virtual
    /// arrival stamp (ties broken by queue position). Receivers dequeue in
    /// arrival order rather than enqueue order: enqueue order of packets
    /// from different sources depends on real-time thread scheduling, while
    /// arrival stamps are pure virtual time, so arrival-ordered service
    /// keeps a receiver's clock independent of the host's scheduling.
    fn earliest_match(&self, m: Match) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .filter(|(_, p)| m.matches(p))
            .min_by_key(|&(i, p)| (p.arrive_at, i))
            .map(|(i, _)| i)
    }
}

struct Mailbox {
    queue: Mutex<MailboxQ>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(MailboxQ {
                queue: VecDeque::new(),
                links: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }
}

struct NodePort {
    boxes: [Mailbox; 4],
}

/// The shared interconnect state.
pub struct Fabric {
    ports: Vec<NodePort>,
    profile: NetProfile,
    chaos: ChaosProfile,
    /// Per-`(src, dst, class)` link sequence counters; empty when chaos is
    /// off (the clean path never numbers packets). One lazily-allocated row
    /// per sending node, so building a large fabric stays O(nodes) even
    /// though the link state is O(nodes²) in the worst case — only links a
    /// node actually sends on pay for their counters.
    tx_seqs: Vec<OnceLock<Vec<AtomicU64>>>,
    stats: NetStats,
    retx_hook: OnceLock<RetransmitHook>,
    shutdown: AtomicBool,
}

impl Fabric {
    /// Build a fabric connecting `n` nodes with a clean (fault-free) wire.
    pub fn new(n: usize, profile: NetProfile) -> Arc<Fabric> {
        Fabric::with_chaos(n, profile, ChaosProfile::off())
    }

    /// Build a fabric whose inter-node links inject the given faults.
    pub fn with_chaos(n: usize, profile: NetProfile, chaos: ChaosProfile) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one node");
        let ports = (0..n)
            .map(|_| NodePort {
                boxes: [
                    Mailbox::new(),
                    Mailbox::new(),
                    Mailbox::new(),
                    Mailbox::new(),
                ],
            })
            .collect();
        let tx_seqs = if chaos.is_active() {
            (0..n).map(|_| OnceLock::new()).collect()
        } else {
            Vec::new()
        };
        Arc::new(Fabric {
            ports,
            profile,
            chaos,
            tx_seqs,
            stats: NetStats::new(n),
            retx_hook: OnceLock::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    pub fn chaos(&self) -> &ChaosProfile {
        &self.chaos
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Install the retransmission observer (first caller wins; later calls
    /// are ignored). The hook runs on the sending thread with no fabric
    /// locks held.
    pub fn set_retransmit_hook(&self, hook: RetransmitHook) {
        let _ = self.retx_hook.set(hook);
    }

    /// The knobs for one directed link/class, or `None` when the message
    /// takes the clean path (chaos off, calm override, or intra-node).
    /// A link with a scheduled death always takes the reliable path, even
    /// with calm knobs — the death trigger lives on that path.
    fn link_knobs(&self, src: usize, dst: usize, class: MsgClass) -> Option<ChaosKnobs> {
        if src == dst || !self.chaos.is_active() {
            return None;
        }
        let k = self.chaos.knobs(src, dst, class);
        if k.is_active() || self.chaos.death_seq(src, dst).is_some() {
            Some(k)
        } else {
            None
        }
    }

    /// Per-link sequence rows: 4 per-class ARQ counters plus one link-total
    /// counter driving scheduled link death.
    fn seq_row(&self, src: usize) -> &Vec<AtomicU64> {
        let n = self.ports.len();
        self.tx_seqs[src].get_or_init(|| (0..n * 5).map(|_| AtomicU64::new(0)).collect())
    }

    fn next_seq(&self, src: usize, dst: usize, class: MsgClass) -> u64 {
        self.seq_row(src)[dst * 5 + class.index()].fetch_add(1, Ordering::Relaxed)
    }

    /// Count one logical message against the link's death schedule; true
    /// once the link has reached its scheduled death point.
    fn link_death_triggered(&self, src: usize, dst: usize) -> bool {
        let Some(after) = self.chaos.death_seq(src, dst) else {
            return false;
        };
        self.seq_row(src)[dst * 5 + 4].fetch_add(1, Ordering::Relaxed) >= after
    }

    /// Create the endpoint for node `id`. Endpoints are cheap handles and
    /// may be cloned freely across a node's threads.
    pub fn endpoint(self: &Arc<Self>, id: usize) -> Endpoint {
        assert!(id < self.ports.len(), "no such node: {id}");
        Endpoint {
            id,
            fabric: Arc::clone(self),
        }
    }

    /// Wake every blocked receiver and make subsequent receives fail fast.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for port in &self.ports {
            for mb in &port.boxes {
                let _g = mb.queue.lock();
                mb.cv.notify_all();
            }
        }
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Error returned by receives when the fabric is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fabric is shut down")
    }
}

impl std::error::Error for Disconnected {}

/// One node's attachment to the fabric.
#[derive(Clone)]
pub struct Endpoint {
    id: usize,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    pub fn id(&self) -> usize {
        self.id
    }

    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    pub fn profile(&self) -> &NetProfile {
        self.fabric.profile()
    }

    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Per-node traffic counters for this endpoint's node.
    pub fn local_stats(&self) -> &NodeNetStats {
        self.fabric.stats.node(self.id)
    }

    /// Post a message. The sender's clock is charged the per-message CPU
    /// overhead; the packet is stamped with its virtual arrival time at the
    /// destination. Sending is asynchronous (eager buffering), matching the
    /// paper's use of short eager MPI messages.
    ///
    /// Panics with the [`FabricError`] display if the reliable channel's
    /// retry budget is exhausted (after recording the error and shutting
    /// the fabric down); use [`Endpoint::send_checked`] to handle that
    /// case programmatically.
    pub fn send(&self, dst: usize, class: MsgClass, tag: u64, payload: Bytes, clock: &mut VClock) {
        if let Err(e) = self.send_checked(dst, class, tag, payload, clock) {
            panic!("{e}");
        }
    }

    /// Like [`Endpoint::send`], but surfaces retry-budget exhaustion as a
    /// structured [`FabricError`] instead of panicking. The fabric is
    /// already shut down (fail-stop) when `Err` is returned.
    pub fn send_checked(
        &self,
        dst: usize,
        class: MsgClass,
        tag: u64,
        payload: Bytes,
        clock: &mut VClock,
    ) -> Result<(), FabricError> {
        clock.sample_compute();
        let r = self.send_at_checked(dst, class, tag, payload, clock.now());
        clock.charge_comm(self.fabric.profile.per_msg_cpu);
        r
    }

    /// Post a message with an explicit departure timestamp. Used by the
    /// communication thread, which manages its own service clock. Panics on
    /// retry-budget exhaustion like [`Endpoint::send`].
    pub fn send_at(&self, dst: usize, class: MsgClass, tag: u64, payload: Bytes, now: VTime) {
        if let Err(e) = self.send_at_checked(dst, class, tag, payload, now) {
            panic!("{e}");
        }
    }

    /// Checked variant of [`Endpoint::send_at`].
    pub fn send_at_checked(
        &self,
        dst: usize,
        class: MsgClass,
        tag: u64,
        payload: Bytes,
        now: VTime,
    ) -> Result<(), FabricError> {
        let fabric = &self.fabric;
        assert!(dst < fabric.ports.len(), "no such node: {dst}");
        let transfer = fabric.profile.transfer(self.id, dst, payload.len());
        let Some(knobs) = fabric.link_knobs(self.id, dst, class) else {
            // Clean path: exactly the pre-chaos fabric.
            fabric.stats.record_send(self.id, class, payload.len());
            let pkt = Packet {
                src: self.id,
                class,
                tag,
                payload,
                sent_at: now,
                arrive_at: now + transfer,
                seq: 0,
            };
            let mb = &fabric.ports[dst].boxes[class.index()];
            let mut q = mb.queue.lock();
            q.queue.push_back(pkt);
            mb.cv.notify_all();
            return Ok(());
        };

        // Reliable channel: walk the ARQ schedule *before* taking any
        // mailbox lock (the fail path calls begin_shutdown, which locks
        // every mailbox).
        let seq = fabric.next_seq(self.id, dst, class);
        let knobs = if fabric.link_death_triggered(self.id, dst) {
            // The link is scheduled dead: every transmission is lost, so
            // the ARQ walk below deterministically exhausts its budget and
            // produces the canonical FabricError for this link.
            ChaosKnobs { drop: 1.0, ..knobs }
        } else {
            knobs
        };
        let out = match simulate_arq(
            &fabric.chaos,
            &knobs,
            self.id,
            dst,
            class,
            tag,
            seq,
            now,
            transfer,
        ) {
            Ok(out) => out,
            Err(e) => {
                fabric.stats.record_send_failure(&e);
                fabric.begin_shutdown();
                return Err(e);
            }
        };
        fabric.stats.record_arq_send(
            self.id,
            out.retx_times.len() as u64,
            out.drops as u64,
            out.drops as u64,
        );
        if let Some(hook) = fabric.retx_hook.get() {
            for &t in &out.retx_times {
                hook(self.id, dst, seq, t);
            }
        }
        // One logical message regardless of retransmissions/duplicates, so
        // send/receive totals still balance once the run drains.
        fabric.stats.record_send(self.id, class, payload.len());

        let mb = &fabric.ports[dst].boxes[class.index()];
        let mut q = mb.queue.lock();
        q.ensure_links(fabric.ports.len());
        let mut eff = RxEffect::default();
        let mut delivered_any = false;
        for d in &out.deliveries {
            let pkt = Packet {
                src: self.id,
                class,
                tag,
                payload: payload.clone(),
                sent_at: now,
                arrive_at: d.arrive_at,
                seq,
            };
            if d.reordered {
                // Parked past later traffic on this link; receivers flush
                // limbo before blocking, so this cannot deadlock them.
                q.links[self.id].stash_limbo(pkt);
            } else {
                eff.merge(q.deliver(pkt));
                delivered_any = true;
            }
        }
        if delivered_any {
            // This message counts as "later traffic": it frees any copies
            // previously reordered past it on the same link.
            let MailboxQ { queue, links } = &mut *q;
            eff.merge(links[self.id].flush_limbo(queue));
        }
        if eff.dup_drops > 0 || eff.holds > 0 {
            fabric
                .stats
                .record_rx_effect(dst, eff.dup_drops as u64, eff.holds as u64);
        }
        mb.cv.notify_all();
        Ok(())
    }

    /// Blocking receive of the earliest-arriving queued packet matching
    /// `m`.
    ///
    /// On success the caller's clock advances to the packet's virtual
    /// arrival time plus the per-message matching overhead.
    pub fn recv(
        &self,
        class: MsgClass,
        m: Match,
        clock: &mut VClock,
    ) -> Result<Packet, Disconnected> {
        clock.sample_compute();
        let pkt = self.recv_raw(class, m)?;
        clock.sync_to(pkt.arrive_at);
        clock.charge_comm(self.fabric.profile.per_msg_cpu);
        Ok(pkt)
    }

    /// Blocking receive that does not touch any virtual clock. The caller
    /// (the communication thread) reconciles times itself via
    /// [`Packet::arrive_at`].
    pub fn recv_raw(&self, class: MsgClass, m: Match) -> Result<Packet, Disconnected> {
        let fabric = &self.fabric;
        let mb = &fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.earliest_match(m) {
                let pkt = q.queue.remove(pos).expect("position just found");
                fabric.stats.record_recv(self.id, class, pkt.payload.len());
                return Ok(pkt);
            }
            // Flush reorder-parked copies before blocking: a message this
            // receiver is waiting for may be sitting in limbo.
            if self.flush_limbo_record(&mut q) > 0 {
                continue;
            }
            if fabric.is_shutdown() {
                return Err(Disconnected);
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Non-blocking receive of the earliest-arriving queued packet matching
    /// `m`, with the same clock accounting as [`Endpoint::recv`]. Returns
    /// `None` (charging nothing) when no matching packet is queued — the
    /// polling primitive for schedulers that interleave message handling
    /// with local work.
    pub fn try_recv_match(&self, class: MsgClass, m: Match, clock: &mut VClock) -> Option<Packet> {
        let fabric = &self.fabric;
        let mb = &fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        self.flush_limbo_record(&mut q);
        let pos = q.earliest_match(m)?;
        let pkt = q.queue.remove(pos).expect("position just found");
        fabric.stats.record_recv(self.id, class, pkt.payload.len());
        drop(q);
        clock.sample_compute();
        clock.sync_to(pkt.arrive_at);
        clock.charge_comm(fabric.profile.per_msg_cpu);
        Some(pkt)
    }

    /// Non-blocking receive of any packet in `class`.
    pub fn try_recv(&self, class: MsgClass) -> Option<Packet> {
        let mb = &self.fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        self.flush_limbo_record(&mut q);
        let pkt = q.queue.pop_front()?;
        self.fabric
            .stats
            .record_recv(self.id, class, pkt.payload.len());
        Some(pkt)
    }

    /// Blocking receive of the earliest-arriving packet in `class`, without
    /// clock handling. Returns `Err(Disconnected)` once the fabric shuts
    /// down and the queue is drained.
    pub fn recv_any_raw(&self, class: MsgClass) -> Result<Packet, Disconnected> {
        let fabric = &self.fabric;
        let mb = &fabric.ports[self.id].boxes[class.index()];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.earliest_match(Match::any()) {
                let p = q.queue.remove(pos).expect("position just found");
                fabric.stats.record_recv(self.id, class, p.payload.len());
                return Ok(p);
            }
            if self.flush_limbo_record(&mut q) > 0 {
                continue;
            }
            if fabric.is_shutdown() {
                return Err(Disconnected);
            }
            mb.cv.wait(&mut q);
        }
    }

    fn flush_limbo_record(&self, q: &mut MailboxQ) -> u32 {
        let eff = q.flush_limbo();
        if eff.dup_drops > 0 || eff.holds > 0 {
            self.fabric
                .stats
                .record_rx_effect(self.id, eff.dup_drops as u64, eff.holds as u64);
        }
        eff.released
    }

    /// Number of packets currently queued in `class` (diagnostics/tests).
    /// Does not count reorder-parked or resequencer-held copies.
    pub fn queued(&self, class: MsgClass) -> usize {
        self.fabric.ports[self.id].boxes[class.index()]
            .queue
            .lock()
            .queue
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vtime::VClock;

    fn bts(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }

    #[test]
    fn send_recv_advances_virtual_time() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut ca = VClock::manual();
        let mut cb = VClock::manual();
        a.send(1, MsgClass::P2p, 7, bts(&[1, 2, 3]), &mut ca);
        let pkt = b
            .recv(MsgClass::P2p, Match::src_tag(0, 7), &mut cb)
            .unwrap();
        assert_eq!(&pkt.payload[..], &[1, 2, 3]);
        // Receiver time >= one-way latency.
        assert!(cb.now() >= NetProfile::clan_via().remote.latency);
    }

    #[test]
    fn tag_matching_reorders() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::P2p, 1, bts(b"first"), &mut c);
        a.send(1, MsgClass::P2p, 2, bts(b"second"), &mut c);
        // Receive tag 2 before tag 1.
        let p2 = b.recv(MsgClass::P2p, Match::tagged(2), &mut c).unwrap();
        assert_eq!(&p2.payload[..], b"second");
        let p1 = b.recv(MsgClass::P2p, Match::tagged(1), &mut c).unwrap();
        assert_eq!(&p1.payload[..], b"first");
    }

    #[test]
    fn classes_do_not_interfere() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::Dsm, 0, bts(b"dsm"), &mut c);
        a.send(1, MsgClass::P2p, 0, bts(b"p2p"), &mut c);
        let p = b.recv(MsgClass::P2p, Match::any(), &mut c).unwrap();
        assert_eq!(&p.payload[..], b"p2p");
        assert_eq!(b.queued(MsgClass::Dsm), 1);
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let t = std::thread::spawn(move || {
            let mut c = VClock::manual();
            b.recv(MsgClass::P2p, Match::any(), &mut c).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut c = VClock::manual();
        a.send(1, MsgClass::P2p, 9, bts(b"hello"), &mut c);
        let pkt = t.join().unwrap();
        assert_eq!(pkt.tag, 9);
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let fabric = Fabric::new(1, NetProfile::zero());
        let e = fabric.endpoint(0);
        let f2 = Arc::clone(&fabric);
        let t = std::thread::spawn(move || {
            let mut c = VClock::manual();
            e.recv(MsgClass::Ctl, Match::any(), &mut c)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        f2.begin_shutdown();
        assert!(matches!(t.join().unwrap(), Err(Disconnected)));
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let fabric = Fabric::new(2, NetProfile::zero());
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        a.send(1, MsgClass::Dsm, 0, bts(&[0u8; 100]), &mut c);
        a.send(1, MsgClass::P2p, 0, bts(&[0u8; 50]), &mut c);
        let s = fabric.stats().totals();
        assert_eq!(s.msgs, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(
            fabric.stats().node(0).class_totals(MsgClass::Dsm).bytes,
            100
        );
        // In flight: sent but not yet received.
        assert_eq!(fabric.stats().recv_totals().msgs, 0);
        // Drain via all three dequeue paths' representatives.
        b.recv(MsgClass::Dsm, Match::any(), &mut c).unwrap();
        b.try_recv(MsgClass::P2p).unwrap();
        let r = fabric.stats().node(1).snapshot();
        assert_eq!(r.received.msgs, 2);
        assert_eq!(r.received.bytes, 150);
        assert_eq!(r.sent.msgs, 0);
        assert_eq!(
            fabric
                .stats()
                .node(1)
                .recv_class_totals(MsgClass::Dsm)
                .bytes,
            100
        );
    }

    #[test]
    fn local_messages_are_faster_than_remote() {
        let fabric = Fabric::new(2, NetProfile::clan_via());
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        a.send(0, MsgClass::P2p, 0, bts(&[0u8; 64]), &mut c);
        a.send(1, MsgClass::P2p, 1, bts(&[0u8; 64]), &mut c);
        let local = fabric.endpoint(0).try_recv(MsgClass::P2p).unwrap();
        let remote = fabric.endpoint(1).try_recv(MsgClass::P2p).unwrap();
        assert!(local.arrive_at - local.sent_at < remote.arrive_at - remote.sent_at);
    }

    #[test]
    fn chaos_delivers_exactly_once_in_order() {
        let chaos = ChaosProfile {
            base: ChaosKnobs {
                drop: 0.2,
                duplicate: 0.1,
                reorder: 0.2,
                delay: 0.3,
                delay_jitter: VTime::from_micros(50),
            },
            ..ChaosProfile::lossy(0xC0FFEE)
        };
        let fabric = Fabric::with_chaos(2, NetProfile::clan_via(), chaos);
        let a = fabric.endpoint(0);
        let b = fabric.endpoint(1);
        let mut c = VClock::manual();
        const N: u64 = 400;
        for i in 0..N {
            a.send(1, MsgClass::P2p, i, bts(&i.to_le_bytes()), &mut c);
        }
        let mut prev_arrive = VTime::ZERO;
        for i in 0..N {
            let p = b.recv_any_raw(MsgClass::P2p).unwrap();
            assert_eq!(p.tag, i, "link order must be preserved");
            assert_eq!(&p.payload[..], &i.to_le_bytes());
            assert!(
                p.arrive_at >= prev_arrive,
                "arrival stamps must be monotone"
            );
            prev_arrive = p.arrive_at;
        }
        assert_eq!(b.queued(MsgClass::P2p), 0, "no duplicates may survive");
        let h = fabric.stats().link_health_totals();
        assert!(h.retransmits > 0, "20% loss must force retransmissions");
        assert!(h.dup_drops > 0, "duplicates must be dropped: {h:?}");
        assert!(h.reseq_holds + h.dup_drops > 0);
        // Exactly one logical receive per logical send.
        assert_eq!(
            fabric.stats().totals().msgs,
            fabric.stats().recv_totals().msgs
        );
    }

    #[test]
    fn chaos_spares_local_traffic() {
        let fabric = Fabric::with_chaos(
            2,
            NetProfile::zero(),
            ChaosProfile::off().with_link(
                0,
                0,
                ChaosKnobs {
                    drop: 1.0,
                    ..ChaosKnobs::CALM
                },
            ),
        );
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        // A 100%-drop override on the loopback link is ignored: intra-node
        // hand-off cannot lose messages.
        a.send(0, MsgClass::P2p, 1, bts(b"local"), &mut c);
        assert!(fabric.endpoint(0).try_recv(MsgClass::P2p).is_some());
        assert!(fabric.stats().link_health_totals().is_quiet());
    }

    #[test]
    fn dead_link_fails_with_structured_error_and_shuts_down() {
        let dead = ChaosKnobs {
            drop: 1.0,
            ..ChaosKnobs::CALM
        };
        let fabric = Fabric::with_chaos(
            3,
            NetProfile::zero(),
            ChaosProfile::off().with_link(0, 2, dead),
        );
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        // Unaffected link still works.
        a.send(1, MsgClass::Dsm, 0, bts(b"ok"), &mut c);
        let err = a
            .send_checked(2, MsgClass::Dsm, 77, bts(b"doomed"), &mut c)
            .unwrap_err();
        assert_eq!((err.src, err.dst), (0, 2));
        assert_eq!(err.tag, 77);
        assert_eq!(err.attempts, fabric.chaos().retry_budget + 1);
        // Fail-stop: error recorded, fabric down, receivers unblock.
        assert_eq!(fabric.stats().fabric_error(), Some(err));
        assert!(fabric.is_shutdown());
        assert_eq!(fabric.stats().link_health_totals().send_failures, 1);
        let b = fabric.endpoint(1);
        let mut cb = VClock::manual();
        assert!(b.recv(MsgClass::Dsm, Match::any(), &mut cb).is_ok());
        assert!(matches!(
            fabric.endpoint(2).recv_raw(MsgClass::Dsm, Match::any()),
            Err(Disconnected)
        ));
    }

    #[test]
    fn scheduled_link_death_kills_after_n_messages() {
        let fabric = Fabric::with_chaos(
            2,
            NetProfile::zero(),
            ChaosProfile::off().with_link_death(0, 1, 5),
        );
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        // The first five messages cross cleanly (calm knobs, reliable path).
        for i in 0..5u64 {
            a.send_checked(1, MsgClass::P2p, i, bts(&[1]), &mut c)
                .expect("link alive before its death point");
        }
        let err = a
            .send_checked(1, MsgClass::P2p, 5, bts(&[1]), &mut c)
            .unwrap_err();
        assert_eq!((err.src, err.dst), (0, 1));
        assert_eq!(err.seq, 5);
        assert!(fabric.is_shutdown());
        assert_eq!(fabric.stats().fabric_errors().len(), 1);
        // The five pre-death messages were all delivered.
        let b = fabric.endpoint(1);
        for i in 0..5u64 {
            assert_eq!(b.recv_any_raw(MsgClass::P2p).unwrap().tag, i);
        }
    }

    #[test]
    fn link_death_composes_with_lossy_chaos() {
        let chaos = ChaosProfile::lossy(0xFEED).with_link_death(0, 1, 30);
        let fabric = Fabric::with_chaos(2, NetProfile::zero(), chaos);
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        let mut sent = 0u64;
        let err = loop {
            match a.send_checked(1, MsgClass::Dsm, sent, bts(&[0u8; 16]), &mut c) {
                Ok(()) => sent += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(sent, 30, "death strikes exactly at the scheduled message");
        assert_eq!((err.src, err.dst), (0, 1));
        // Pre-death lossy traffic still delivered exactly once, in order.
        let b = fabric.endpoint(1);
        for i in 0..sent {
            assert_eq!(b.recv_any_raw(MsgClass::Dsm).unwrap().tag, i);
        }
    }

    #[test]
    fn retransmit_hook_sees_each_retransmission() {
        use std::sync::atomic::AtomicUsize;
        let chaos = ChaosProfile {
            base: ChaosKnobs {
                drop: 0.4,
                ..ChaosKnobs::CALM
            },
            ..ChaosProfile::lossy(99)
        };
        let fabric = Fabric::with_chaos(2, NetProfile::zero(), chaos);
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        fabric.set_retransmit_hook(Box::new(move |src, dst, _seq, _vt| {
            assert_eq!((src, dst), (0, 1));
            seen2.fetch_add(1, Ordering::Relaxed);
        }));
        let a = fabric.endpoint(0);
        let mut c = VClock::manual();
        for i in 0..200 {
            a.send(1, MsgClass::Coll, i, bts(&[0u8; 8]), &mut c);
        }
        let h = fabric.stats().link_health_totals();
        assert!(h.retransmits > 0);
        assert_eq!(seen.load(Ordering::Relaxed) as u64, h.retransmits);
    }
}
