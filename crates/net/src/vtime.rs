//! Virtual time.
//!
//! The host machine may have a single core, so wall-clock measurements of a
//! many-threaded cluster simulation are meaningless. Instead every simulated
//! thread carries a [`VClock`]: a virtual timestamp advanced by
//!
//! * **compute** — the thread's measured execution time (a monotonic
//!   timer — see [`thread_cpu_ns`] for the hermetic-build caveat vs. true
//!   per-thread CPU time), multiplied by a configurable scale factor that
//!   models the target machine's speed relative to the host; or
//!   deterministic, manually charged costs; and
//! * **communication/synchronization** — analytic costs from the network
//!   profile (latency, per-byte time, service penalties), reconciled via
//!   `max()` when threads interact.
//!
//! This is the classic *direct-execution simulation* technique: data values
//! come from real execution, timing comes from the model.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    pub const ZERO: VTime = VTime(0);

    pub fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        VTime(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        VTime((s * 1e9).round().max(0.0) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }

    pub fn saturating_sub(self, other: VTime) -> VTime {
        VTime(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor (used for CPU speed scaling).
    pub fn scale(self, f: f64) -> VTime {
        VTime((self.0 as f64 * f).round().max(0.0) as u64)
    }
}

impl Add for VTime {
    type Output = VTime;
    fn add(self, rhs: VTime) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign for VTime {
    fn add_assign(&mut self, rhs: VTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VTime {
    type Output = VTime;
    fn sub(self, rhs: VTime) -> VTime {
        VTime(self.0 - rhs.0)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

/// Reads a monotonic per-process timestamp in nanoseconds.
///
/// Semantic note: this used to read `CLOCK_THREAD_CPUTIME_ID` via `libc`,
/// i.e. the calling thread's *CPU* time, immune to preemption. The hermetic
/// (std-only) build uses `std::time::Instant`, which is monotonic *wall*
/// time: on an oversubscribed host the measured compute of a simulated
/// thread now includes time it spent descheduled, so `ThreadCpu` timings
/// are noisier than before. The API and all call sites are unchanged —
/// callers only ever difference consecutive readings — and fully
/// deterministic runs should use [`TimeSource::Manual`], which never calls
/// this function.
pub fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// How a [`VClock`] accounts for compute between communication events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSource {
    /// Measure the calling thread's CPU time and scale it by the factor.
    ///
    /// A factor of around `60.0` roughly maps a modern ~3 GHz superscalar
    /// host core onto the paper's 550 MHz Pentium III nodes for numeric
    /// kernels.
    ThreadCpu { scale: f64 },
    /// Ignore real CPU time entirely; only explicit [`VClock::charge`] calls
    /// advance the clock. Fully deterministic — used by tests.
    Manual,
}

impl Default for TimeSource {
    fn default() -> Self {
        TimeSource::ThreadCpu { scale: 1.0 }
    }
}

/// A per-thread virtual clock.
#[derive(Debug, Clone)]
pub struct VClock {
    now: VTime,
    source: TimeSource,
    last_cpu_ns: u64,
    /// Total virtual time attributed to compute (vs. communication).
    compute: VTime,
    /// Total virtual time attributed to communication/synchronization waits.
    comm: VTime,
}

impl VClock {
    pub fn new(source: TimeSource) -> Self {
        let last = match source {
            TimeSource::ThreadCpu { .. } => thread_cpu_ns(),
            TimeSource::Manual => 0,
        };
        VClock {
            now: VTime::ZERO,
            source,
            last_cpu_ns: last,
            compute: VTime::ZERO,
            comm: VTime::ZERO,
        }
    }

    pub fn manual() -> Self {
        VClock::new(TimeSource::Manual)
    }

    pub fn now(&self) -> VTime {
        self.now
    }

    pub fn source(&self) -> TimeSource {
        self.source
    }

    /// Virtual time attributed to computation so far.
    pub fn compute_time(&self) -> VTime {
        self.compute
    }

    /// Virtual time attributed to communication/synchronization so far.
    pub fn comm_time(&self) -> VTime {
        self.comm
    }

    /// Fold the CPU time consumed since the last sample into the clock.
    ///
    /// Call this at every simulation API boundary so that the compute burst
    /// preceding the call is accounted before communication costs are added.
    pub fn sample_compute(&mut self) {
        if let TimeSource::ThreadCpu { scale } = self.source {
            let cpu = thread_cpu_ns();
            let delta = cpu.saturating_sub(self.last_cpu_ns);
            self.last_cpu_ns = cpu;
            let d = VTime(delta).scale(scale);
            self.now += d;
            self.compute += d;
        }
    }

    /// Reset the CPU sampling baseline without charging the elapsed time.
    ///
    /// Used when a thread has been doing bookkeeping that should not count
    /// as application compute (e.g. waiting loops).
    pub fn discard_compute(&mut self) {
        if let TimeSource::ThreadCpu { .. } = self.source {
            self.last_cpu_ns = thread_cpu_ns();
        }
    }

    /// Explicitly charge `d` of compute time.
    pub fn charge(&mut self, d: VTime) {
        self.now += d;
        self.compute += d;
    }

    /// Charge `d` of communication time.
    pub fn charge_comm(&mut self, d: VTime) {
        self.now += d;
        self.comm += d;
    }

    /// Advance to at least `t` (e.g. a message arrival), attributing the gap
    /// to communication wait.
    pub fn sync_to(&mut self, t: VTime) {
        if t > self.now {
            self.comm += t - self.now;
            self.now = t;
        }
    }

    /// Force the clock to exactly `t` (used when a forked worker inherits
    /// the fork time).
    pub fn reset_to(&mut self, t: VTime) {
        self.now = t;
        self.discard_compute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_arithmetic() {
        let a = VTime::from_micros(3);
        let b = VTime::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 3_500);
        assert_eq!((a - b).as_nanos(), 2_500);
        assert_eq!(a.max(b), a);
        assert_eq!(a.saturating_sub(a + b), VTime::ZERO);
    }

    #[test]
    fn vtime_display_units() {
        assert_eq!(format!("{}", VTime::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", VTime::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", VTime::from_millis(1_500)), "1.500s");
    }

    #[test]
    fn manual_clock_only_moves_on_charges() {
        let mut c = VClock::manual();
        // Burn some real CPU; the manual clock must not move.
        let mut x = 0u64;
        for i in 0..100_000 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        c.sample_compute();
        assert_eq!(c.now(), VTime::ZERO);
        c.charge(VTime::from_micros(5));
        c.charge_comm(VTime::from_micros(7));
        assert_eq!(c.now().as_nanos(), 12_000);
        assert_eq!(c.compute_time().as_nanos(), 5_000);
        assert_eq!(c.comm_time().as_nanos(), 7_000);
    }

    #[test]
    fn sync_to_never_goes_backwards() {
        let mut c = VClock::manual();
        c.charge(VTime::from_micros(10));
        c.sync_to(VTime::from_micros(4));
        assert_eq!(c.now(), VTime::from_micros(10));
        c.sync_to(VTime::from_micros(25));
        assert_eq!(c.now(), VTime::from_micros(25));
        assert_eq!(c.comm_time(), VTime::from_micros(15));
    }

    #[test]
    fn thread_cpu_clock_advances_with_work() {
        let mut c = VClock::new(TimeSource::ThreadCpu { scale: 1.0 });
        let mut acc = 0f64;
        for i in 0..2_000_000 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        c.sample_compute();
        assert!(c.now() > VTime::ZERO, "cpu clock should have advanced");
    }

    #[test]
    fn scale_applies_to_measured_compute() {
        // Measure the same busy loop with scale 1 vs scale 4; the scaled
        // clock should read roughly 4x (allow generous slack: the host may
        // jitter, but 4x vs 1x of the *same* measured quantity is exact
        // because scaling happens after measurement).
        let mut c = VClock::new(TimeSource::ThreadCpu { scale: 3.0 });
        c.discard_compute();
        let base = thread_cpu_ns();
        let mut acc = 0u64;
        while thread_cpu_ns() - base < 2_000_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        c.sample_compute();
        assert!(c.now().as_nanos() >= 3 * 2_000_000);
    }
}
