//! Poison-ignoring wrappers over `std::sync` primitives.
//!
//! The runtime previously used an external lock crate whose locks have no
//! poisoning and whose `Condvar::wait` takes `&mut MutexGuard`. These
//! wrappers keep that call-site shape on top of `std::sync` so the
//! workspace builds with zero external dependencies:
//!
//! * `lock()` / `read()` / `write()` return guards directly — a poisoned
//!   lock is recovered with `into_inner()` instead of panicking. Poisoning
//!   only happens when a holder panics, and every invariant the runtime
//!   protects with these locks is re-checked by the protocol state machines,
//!   so propagating the poison would just turn one test failure into a
//!   cascade of unrelated ones.
//! * [`Condvar::wait`] takes `&mut MutexGuard` (guard-centric style) by
//!   briefly moving the inner std guard out, waiting, and moving it back.

use std::sync;

/// A mutex whose `lock` never fails (poison is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can move it out and back while the caller keeps a
/// `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] held by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the mutex and block until notified, reacquiring
    /// before returning (spurious wakeups possible, as with std).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard moved during wait");
        guard.inner = Some(self.0.wait(g).unwrap_or_else(|p| p.into_inner()));
    }
}

/// A reader-writer lock whose acquisitions never fail (poison is swallowed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), [1, 2, 3]);
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            *done
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poison-ignoring lock shrugs and hands out the value.
        assert_eq!(*m.lock(), 7);
    }
}
