//! Reliable delivery over a faulty link.
//!
//! The fabric is in-process, so the stop-and-wait ARQ a real transport runs
//! (send, await ack, retransmit on a backoff timer) is *simulated* at send
//! time in virtual time: [`simulate_arq`] walks the attempt schedule that a
//! sender with the profile's retransmit timeout, exponential backoff, and
//! retry budget would execute, and reports which copies of the message get
//! through and when. Copies then pass through the receive-side
//! [`LinkRx`] — per-(src, class) sequence tracking that drops duplicates and
//! resequences out-of-order arrivals — so the mailbox only ever sees each
//! message once, in link order: exactly-once, in-order delivery on top of a
//! lossy wire.
//!
//! When every transmission within the retry budget is lost, the link is
//! declared dead and the send fails with a structured [`FabricError`]
//! naming the link and the pending operation — fail-stop, never a silent
//! deadlock.

use std::collections::{BTreeMap, VecDeque};

use parade_testkit::rng::TestRng;

use crate::chaos::{ChaosKnobs, ChaosProfile};
use crate::packet::{MsgClass, Packet};
use crate::vtime::VTime;

/// A send whose retry budget is exhausted: the link is considered dead.
///
/// Returned by [`crate::Endpoint::send_checked`]; the unchecked send path
/// records it in [`crate::NetStats`], shuts the fabric down (fail-stop) and
/// panics with this error's `Display` so the run names the failing link and
/// operation instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricError {
    /// Sending node of the dead link.
    pub src: usize,
    /// Destination node of the dead link.
    pub dst: usize,
    /// Traffic class of the undeliverable message.
    pub class: MsgClass,
    /// Match tag of the undeliverable message.
    pub tag: u64,
    /// Link sequence number of the undeliverable message.
    pub seq: u64,
    /// Transmissions attempted (1 original + retries) before giving up.
    pub attempts: u32,
    /// Virtual time at which the sender's last retransmit timer expired.
    pub gave_up_at: VTime,
}

impl FabricError {
    /// Human name of the pending operation, derived from the class.
    pub fn op(&self) -> &'static str {
        match self.class {
            MsgClass::Dsm => "DSM protocol request",
            MsgClass::P2p => "MPI point-to-point message",
            MsgClass::Coll => "MPI collective round",
            MsgClass::Ctl => "control/reply message",
        }
    }
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fabric link {}->{} dead: {} (tag {}, link seq {}) undeliverable \
             after {} transmissions; gave up at vt {}",
            self.src,
            self.dst,
            self.op(),
            self.tag,
            self.seq,
            self.attempts,
            self.gave_up_at
        )
    }
}

impl std::error::Error for FabricError {}

/// One copy of the message that reaches the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Virtual arrival time at the destination.
    pub arrive_at: VTime,
    /// Reorder fault: the receiver parks this copy (limbo) until later
    /// traffic on the link — or a blocked receiver — flushes it.
    pub reordered: bool,
}

/// Outcome of the simulated ARQ exchange for one message.
#[derive(Debug, Clone, Default)]
pub struct ArqOutcome {
    /// Copies reaching the receiver, sorted by arrival time.
    pub deliveries: Vec<Delivery>,
    /// Retransmissions the sender performed, with their departure times.
    pub retx_times: Vec<VTime>,
    /// Transmissions (data or ack) the chaos schedule destroyed.
    pub drops: u32,
}

/// Derive the deterministic fault stream for one transmission attempt.
///
/// The stream depends only on `(seed, src, dst, class, seq, attempt)` — a
/// packet's fate never depends on thread scheduling, so a pinned seed
/// replays the identical fault schedule for the same traffic.
fn attempt_rng(
    profile: &ChaosProfile,
    src: usize,
    dst: usize,
    class: MsgClass,
    seq: u64,
    attempt: u32,
) -> TestRng {
    let lid = ((src as u64) << 20) ^ ((dst as u64) << 8) ^ class.index() as u64;
    TestRng::new(
        profile
            .seed
            .wrapping_add(lid.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ seq.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
    )
}

fn chance(rng: &mut TestRng, p: f64) -> bool {
    p > 0.0 && rng.next_f64() < p
}

fn jitter(rng: &mut TestRng, max: VTime) -> VTime {
    VTime::from_nanos(rng.below(max.as_nanos().max(1)))
}

fn scale_rto(rto: VTime, backoff: u32, retries: u32) -> VTime {
    let mut t = rto;
    for _ in 0..retries {
        t = VTime::from_nanos(t.as_nanos().saturating_mul(backoff as u64));
    }
    t
}

/// Walk the ARQ attempt schedule for one message in virtual time.
///
/// `transfer_cost` is the profile's base wire cost for this payload; chaos
/// delay jitter is charged on top of it. Returns the surviving deliveries
/// or, when the retry budget runs dry without an acknowledged attempt, the
/// structured [`FabricError`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_arq(
    profile: &ChaosProfile,
    knobs: &ChaosKnobs,
    src: usize,
    dst: usize,
    class: MsgClass,
    tag: u64,
    seq: u64,
    now: VTime,
    transfer_cost: VTime,
) -> Result<ArqOutcome, FabricError> {
    let mut out = ArqOutcome::default();
    let mut t_tx = now;
    for attempt in 0..=profile.retry_budget {
        let mut rng = attempt_rng(profile, src, dst, class, seq, attempt);
        let data_lost = chance(&mut rng, knobs.drop);
        let mut acked = false;
        if !data_lost {
            let mut cost = transfer_cost;
            if chance(&mut rng, knobs.delay) {
                cost += jitter(&mut rng, knobs.delay_jitter);
            }
            let arrive = t_tx + cost;
            out.deliveries.push(Delivery {
                arrive_at: arrive,
                reordered: chance(&mut rng, knobs.reorder),
            });
            if chance(&mut rng, knobs.duplicate) {
                // A network-level duplicate trails the original slightly.
                out.deliveries.push(Delivery {
                    arrive_at: arrive + jitter(&mut rng, knobs.delay_jitter.max(profile.rto)),
                    reordered: chance(&mut rng, knobs.reorder),
                });
            }
            // The (tiny) ack crosses the same lossy wire.
            acked = !chance(&mut rng, knobs.drop);
        }
        if acked {
            out.deliveries.sort_by_key(|d| d.arrive_at);
            return Ok(out);
        }
        out.drops += 1;
        let rto = scale_rto(profile.rto, profile.backoff, attempt);
        t_tx += rto;
        if attempt < profile.retry_budget {
            out.retx_times.push(t_tx);
        }
    }
    Err(FabricError {
        src,
        dst,
        class,
        tag,
        seq,
        attempts: profile.retry_budget + 1,
        gave_up_at: t_tx,
    })
}

/// What one receive-side acceptance did (for the stats counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxEffect {
    /// Packets released into the mailbox queue (the packet itself plus any
    /// in-sequence successors it unblocked).
    pub released: u32,
    /// Copies discarded as duplicates of already-delivered sequences.
    pub dup_drops: u32,
    /// Packets parked because a predecessor had not yet arrived.
    pub holds: u32,
}

impl RxEffect {
    /// Accumulate another effect into this one.
    pub fn merge(&mut self, other: RxEffect) {
        self.released += other.released;
        self.dup_drops += other.dup_drops;
        self.holds += other.holds;
    }
}

/// Receive half of the reliable channel for one `(src, class)` link at one
/// destination mailbox: sequence tracking, duplicate suppression, and
/// resequencing of out-of-order arrivals.
#[derive(Debug, Default)]
pub struct LinkRx {
    /// Next link sequence number to release into the mailbox.
    next_seq: u64,
    /// Monotone release clock: resequenced packets cannot arrive earlier
    /// than the packets released before them.
    last_release: VTime,
    /// Out-of-order arrivals awaiting their predecessors.
    held: BTreeMap<u64, Packet>,
    /// Reorder-faulted copies not yet presented to the resequencer.
    limbo: VecDeque<Packet>,
}

impl LinkRx {
    /// Present one copy to the resequencer; released packets are pushed
    /// onto `queue` in link order with monotone arrival stamps.
    pub fn accept(&mut self, pkt: Packet, queue: &mut VecDeque<Packet>) -> RxEffect {
        let mut eff = RxEffect::default();
        if pkt.seq < self.next_seq || self.held.contains_key(&pkt.seq) {
            eff.dup_drops += 1;
            return eff;
        }
        if pkt.seq > self.next_seq {
            self.held.insert(pkt.seq, pkt);
            eff.holds += 1;
            return eff;
        }
        self.release(pkt, queue, &mut eff);
        while let Some(p) = self.held.remove(&self.next_seq) {
            self.release(p, queue, &mut eff);
        }
        eff
    }

    /// Park a reorder-faulted copy; it stays invisible until
    /// [`LinkRx::flush_limbo`].
    pub fn stash_limbo(&mut self, pkt: Packet) {
        self.limbo.push_back(pkt);
    }

    /// Present every parked copy to the resequencer. Called when later
    /// traffic arrives on the link and before a receiver blocks, so a
    /// parked message can never be lost or deadlock a receiver.
    pub fn flush_limbo(&mut self, queue: &mut VecDeque<Packet>) -> RxEffect {
        let mut eff = RxEffect::default();
        while let Some(p) = self.limbo.pop_front() {
            eff.merge(self.accept(p, queue));
        }
        eff
    }

    /// Copies currently parked by reorder faults (diagnostics).
    pub fn limbo_len(&self) -> usize {
        self.limbo.len()
    }

    fn release(&mut self, mut pkt: Packet, queue: &mut VecDeque<Packet>, eff: &mut RxEffect) {
        debug_assert_eq!(pkt.seq, self.next_seq);
        self.next_seq += 1;
        self.last_release = self.last_release.max(pkt.arrive_at);
        pkt.arrive_at = self.last_release;
        queue.push_back(pkt);
        eff.released += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Bytes;

    fn pkt(seq: u64, arrive_us: u64) -> Packet {
        Packet {
            src: 0,
            class: MsgClass::P2p,
            tag: seq,
            payload: Bytes::copy_from_slice(&seq.to_le_bytes()),
            sent_at: VTime::ZERO,
            arrive_at: VTime::from_micros(arrive_us),
            seq,
        }
    }

    #[test]
    fn resequencer_reorders_and_dedups() {
        let mut rx = LinkRx::default();
        let mut q = VecDeque::new();
        // seq 1 before seq 0: held.
        let e = rx.accept(pkt(1, 10), &mut q);
        assert_eq!(
            e,
            RxEffect {
                released: 0,
                dup_drops: 0,
                holds: 1
            }
        );
        // seq 0 releases both, with monotone arrival stamps.
        let e = rx.accept(pkt(0, 30), &mut q);
        assert_eq!(e.released, 2);
        let a = q.pop_front().unwrap();
        let b = q.pop_front().unwrap();
        assert_eq!((a.seq, b.seq), (0, 1));
        assert!(b.arrive_at >= a.arrive_at, "release clock must be monotone");
        // A late duplicate of seq 1 is dropped.
        let e = rx.accept(pkt(1, 40), &mut q);
        assert_eq!(e.dup_drops, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_of_held_packet_is_dropped() {
        let mut rx = LinkRx::default();
        let mut q = VecDeque::new();
        assert_eq!(rx.accept(pkt(2, 5), &mut q).holds, 1);
        assert_eq!(rx.accept(pkt(2, 6), &mut q).dup_drops, 1);
    }

    #[test]
    fn limbo_flush_preserves_exactly_once() {
        let mut rx = LinkRx::default();
        let mut q = VecDeque::new();
        rx.stash_limbo(pkt(0, 5));
        assert_eq!(rx.limbo_len(), 1);
        // Later traffic arrives first and is held behind the parked copy.
        assert_eq!(rx.accept(pkt(1, 7), &mut q).holds, 1);
        let e = rx.flush_limbo(&mut q);
        assert_eq!(e.released, 2);
        assert_eq!(rx.limbo_len(), 0);
        let order: Vec<u64> = q.iter().map(|p| p.seq).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn arq_calm_link_is_single_clean_delivery() {
        let p = ChaosProfile::off();
        let out = simulate_arq(
            &p,
            &ChaosKnobs::CALM,
            0,
            1,
            MsgClass::Dsm,
            0,
            0,
            VTime::from_micros(3),
            VTime::from_micros(7),
        )
        .unwrap();
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].arrive_at, VTime::from_micros(10));
        assert!(!out.deliveries[0].reordered);
        assert!(out.retx_times.is_empty());
        assert_eq!(out.drops, 0);
    }

    #[test]
    fn arq_total_loss_fails_within_bounded_virtual_time() {
        let mut p = ChaosProfile::off();
        p.retry_budget = 4;
        let knobs = ChaosKnobs {
            drop: 1.0,
            ..ChaosKnobs::CALM
        };
        let err = simulate_arq(
            &p,
            &knobs,
            2,
            3,
            MsgClass::P2p,
            99,
            7,
            VTime::ZERO,
            VTime::from_micros(5),
        )
        .unwrap_err();
        assert_eq!((err.src, err.dst), (2, 3));
        assert_eq!(err.attempts, 5);
        assert_eq!(err.tag, 99);
        // Sum of the exponential backoff schedule: rto * (2^5 - 1).
        let bound = VTime::from_nanos(p.rto.as_nanos() * 31);
        assert_eq!(err.gave_up_at, bound);
        let msg = err.to_string();
        assert!(msg.contains("2->3"), "{msg}");
        assert!(msg.contains("point-to-point"), "{msg}");
    }

    #[test]
    fn arq_is_deterministic_per_seed_and_seq() {
        let p = ChaosProfile::lossy(0xFEED);
        let knobs = p.knobs(0, 1, MsgClass::Dsm);
        let run = || {
            (0..64u64)
                .map(|seq| {
                    simulate_arq(
                        &p,
                        &knobs,
                        0,
                        1,
                        MsgClass::Dsm,
                        0,
                        seq,
                        VTime::ZERO,
                        VTime::from_micros(7),
                    )
                    .unwrap()
                    .deliveries
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // A different seed yields a different schedule somewhere.
        let p2 = ChaosProfile::lossy(0xBEEF);
        let k2 = p2.knobs(0, 1, MsgClass::Dsm);
        let other: Vec<_> = (0..64u64)
            .map(|seq| {
                simulate_arq(
                    &p2,
                    &k2,
                    0,
                    1,
                    MsgClass::Dsm,
                    0,
                    seq,
                    VTime::ZERO,
                    VTime::from_micros(7),
                )
                .unwrap()
                .deliveries
            })
            .collect();
        assert_ne!(run(), other);
    }

    #[test]
    fn arq_lossy_link_eventually_retransmits_and_duplicates() {
        let p = ChaosProfile::lossy(42);
        let knobs = ChaosKnobs {
            drop: 0.3,
            duplicate: 0.2,
            reorder: 0.2,
            delay: 0.5,
            delay_jitter: VTime::from_micros(10),
        };
        let mut retx = 0u32;
        let mut dups = 0u32;
        let mut reordered = 0u32;
        for seq in 0..256u64 {
            let out = simulate_arq(
                &p,
                &knobs,
                0,
                1,
                MsgClass::Coll,
                0,
                seq,
                VTime::ZERO,
                VTime::from_micros(7),
            )
            .expect("budget 10 never exhausted at 30% loss");
            retx += out.retx_times.len() as u32;
            dups += (out.deliveries.len() as u32).saturating_sub(1);
            reordered += out.deliveries.iter().filter(|d| d.reordered).count() as u32;
            for w in out.deliveries.windows(2) {
                assert!(w[0].arrive_at <= w[1].arrive_at, "deliveries sorted");
            }
        }
        assert!(retx > 0, "30% loss must force retransmissions");
        assert!(dups > 0, "duplicates must occur");
        assert!(reordered > 0, "reorder faults must occur");
    }
}
