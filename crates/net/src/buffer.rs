//! A minimal owned, cheaply-clonable byte buffer.
//!
//! Stand-in for the `bytes` crate's `Bytes`: payloads are built once (as a
//! `Vec<u8>`), frozen into an `Arc<[u8]>`, and then shared by reference
//! count — cloning a packet payload is a pointer bump, never a copy. The
//! fabric fans one send out to at most one mailbox, but collectives and the
//! DSM server forward the same payload to several peers, which is where the
//! cheap clone pays off.
//!
//! Only the API surface the runtime actually uses is provided; there is no
//! zero-copy sub-slicing (`slice`) because no call site needs it.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte string.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty byte string (no allocation is shared, but creating it is
    /// still cheap).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let v: Bytes = vec![4u8, 5].into();
        assert_eq!(&v[..], &[4, 5]);
        assert_eq!(Bytes::from(b"ab"), Bytes::copy_from_slice(b"ab"));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9u8; 64]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }
}
