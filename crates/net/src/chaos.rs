//! Seeded fault injection for the fabric.
//!
//! A [`ChaosProfile`] describes how hostile the interconnect is: per-link /
//! per-class probabilities of dropping, duplicating, reordering, and
//! delaying a message, plus the reliable-channel knobs (retransmit timeout,
//! exponential backoff, retry budget) that [`crate::Fabric`] uses to absorb
//! the injected faults.
//!
//! Every chaos decision is derived *statelessly* from
//! `(profile.seed, src, dst, class, link sequence number, attempt)` through
//! [`parade_testkit::rng::TestRng`], so a given packet's fate never depends
//! on thread scheduling: the same seed replays the same fault schedule for
//! the same traffic, and two runs that exchange the same payloads compute
//! bit-identical results regardless of host timing.
//!
//! Intra-node (`src == dst`) traffic is exempt — a shared-memory hand-off
//! cannot lose messages — mirroring real cluster transports where only the
//! wire is unreliable.

use crate::packet::MsgClass;
use crate::vtime::VTime;

/// Fault probabilities and jitter for one link/class combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosKnobs {
    /// Probability that one transmission (data *or* ack) is lost.
    pub drop: f64,
    /// Probability that a delivered message is duplicated in the network.
    pub duplicate: f64,
    /// Probability that a delivered message is reordered past later traffic
    /// on the same link (exercises the receive-side resequencer).
    pub reorder: f64,
    /// Probability that a delivered message suffers extra delay jitter.
    pub delay: f64,
    /// Maximum extra delay charged when `delay` triggers (uniform in
    /// `[0, delay_jitter]`), on top of the profile's transfer cost.
    pub delay_jitter: VTime,
}

impl ChaosKnobs {
    /// No faults at all.
    pub const CALM: ChaosKnobs = ChaosKnobs {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        delay: 0.0,
        delay_jitter: VTime::ZERO,
    };

    /// Does this knob set inject any fault?
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0 || self.delay > 0.0
    }
}

/// Full fault-injection configuration for a fabric.
///
/// `base` applies to every inter-node message; `per_class` and `per_link`
/// override it (a link override wins over a class override). The reliable
/// channel is engaged whenever any knob set is active.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Default knobs for all inter-node traffic.
    pub base: ChaosKnobs,
    /// Per-[`MsgClass`] overrides (indexed by `MsgClass::index()`).
    pub per_class: [Option<ChaosKnobs>; 4],
    /// Per-link `(src, dst)` overrides; win over class overrides.
    pub per_link: Vec<(usize, usize, ChaosKnobs)>,
    /// Scheduled link deaths `(src, dst, after_seq)`: the directed link
    /// dies permanently once its per-link sequence counter (summed over
    /// classes) reaches `after_seq` — every later send on it exhausts its
    /// retry budget immediately. This is the serving layer's node-failure
    /// injector: unlike a `drop=1.0` override it lets an arbitrary amount
    /// of traffic through first, so a job dies mid-run at a seeded,
    /// reproducible point instead of at its first message.
    pub link_death: Vec<(usize, usize, u64)>,
    /// Base retransmit timeout (virtual time) before the first resend.
    pub rto: VTime,
    /// Timeout multiplier per retry (exponential backoff).
    pub backoff: u32,
    /// Retransmissions allowed before the link is declared dead.
    pub retry_budget: u32,
}

impl ChaosProfile {
    /// No fault injection: the fabric behaves exactly as before.
    pub fn off() -> ChaosProfile {
        ChaosProfile {
            seed: 0,
            base: ChaosKnobs::CALM,
            per_class: [None; 4],
            per_link: Vec::new(),
            link_death: Vec::new(),
            rto: VTime::from_micros(200),
            backoff: 2,
            retry_budget: 10,
        }
    }

    /// A moderately lossy wire: the pinned profile the soak tests use.
    /// Drop 2%, duplicate 1%, reorder 5%, delay 10% with up to 20 µs of
    /// jitter.
    pub fn lossy(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            base: ChaosKnobs {
                drop: 0.02,
                duplicate: 0.01,
                reorder: 0.05,
                delay: 0.10,
                delay_jitter: VTime::from_micros(20),
            },
            ..ChaosProfile::off()
        }
    }

    /// Is any fault injection configured anywhere?
    pub fn is_active(&self) -> bool {
        self.base.is_active()
            || self.per_class.iter().flatten().any(ChaosKnobs::is_active)
            || self.per_link.iter().any(|(_, _, k)| k.is_active())
            || !self.link_death.is_empty()
    }

    /// The knobs governing one message, resolving the override chain.
    pub fn knobs(&self, src: usize, dst: usize, class: MsgClass) -> ChaosKnobs {
        if let Some((_, _, k)) = self
            .per_link
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
        {
            return *k;
        }
        self.per_class[class.index()].unwrap_or(self.base)
    }

    /// Override the knobs for one message class.
    pub fn with_class(mut self, class: MsgClass, k: ChaosKnobs) -> ChaosProfile {
        self.per_class[class.index()] = Some(k);
        self
    }

    /// Override the knobs for one directed link.
    pub fn with_link(mut self, src: usize, dst: usize, k: ChaosKnobs) -> ChaosProfile {
        self.per_link.retain(|(s, d, _)| !(*s == src && *d == dst));
        self.per_link.push((src, dst, k));
        self
    }

    /// Schedule the directed link `src -> dst` to die once it has carried
    /// `after_seq` messages (all classes combined). Intra-node links
    /// (`src == dst`) never die; such a schedule is ignored by the fabric.
    pub fn with_link_death(mut self, src: usize, dst: usize, after_seq: u64) -> ChaosProfile {
        self.link_death
            .retain(|(s, d, _)| !(*s == src && *d == dst));
        self.link_death.push((src, dst, after_seq));
        self
    }

    /// The scheduled death point of a directed link, if any.
    pub fn death_seq(&self, src: usize, dst: usize) -> Option<u64> {
        self.link_death
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, n)| *n)
    }

    /// Parse the `PARADE_CHAOS` mini-language:
    ///
    /// ```text
    /// drop=0.01,dup=0.005,reorder=0.05,delay=0.1,jitter_us=20,
    /// seed=0xC0FFEE,rto_us=200,backoff=2,budget=10
    /// ```
    ///
    /// Unknown keys or unparsable values are errors; an empty string is
    /// `ChaosProfile::off()`.
    pub fn parse(spec: &str) -> Result<ChaosProfile, String> {
        let mut p = ChaosProfile::off();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item {item:?} is not key=value"))?;
            let fval = || -> Result<f64, String> {
                let v: f64 = val
                    .parse()
                    .map_err(|_| format!("chaos spec: bad number {val:?} for {key}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("chaos spec: {key}={v} outside [0, 1]"));
                }
                Ok(v)
            };
            let uval = || -> Result<u64, String> {
                let s = val.trim();
                let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                } else {
                    s.parse()
                };
                r.map_err(|_| format!("chaos spec: bad integer {val:?} for {key}"))
            };
            match key.trim() {
                "drop" => p.base.drop = fval()?,
                "dup" | "duplicate" => p.base.duplicate = fval()?,
                "reorder" => p.base.reorder = fval()?,
                "delay" => p.base.delay = fval()?,
                "jitter_us" => p.base.delay_jitter = VTime::from_micros(uval()?),
                "seed" => p.seed = uval()?,
                "rto_us" => p.rto = VTime::from_micros(uval()?.max(1)),
                "backoff" => p.backoff = uval()?.clamp(1, 16) as u32,
                "budget" => p.retry_budget = uval()?.clamp(1, 64) as u32,
                other => return Err(format!("chaos spec: unknown key {other:?}")),
            }
        }
        Ok(p)
    }

    /// Profile from the `PARADE_CHAOS` environment variable; `off()` when
    /// unset, and a warning (not an abort) on a malformed spec.
    pub fn from_env() -> ChaosProfile {
        match std::env::var("PARADE_CHAOS") {
            Ok(spec) => match ChaosProfile::parse(&spec) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("warning: ignoring PARADE_CHAOS: {e}");
                    ChaosProfile::off()
                }
            },
            Err(_) => ChaosProfile::off(),
        }
    }
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive_and_lossy_is_active() {
        assert!(!ChaosProfile::off().is_active());
        assert!(ChaosProfile::lossy(1).is_active());
    }

    #[test]
    fn override_chain_link_beats_class_beats_base() {
        let cls = ChaosKnobs {
            drop: 0.5,
            ..ChaosKnobs::CALM
        };
        let lnk = ChaosKnobs {
            drop: 1.0,
            ..ChaosKnobs::CALM
        };
        let p = ChaosProfile::lossy(7)
            .with_class(MsgClass::Coll, cls)
            .with_link(0, 2, lnk);
        assert_eq!(p.knobs(0, 1, MsgClass::Dsm).drop, 0.02);
        assert_eq!(p.knobs(0, 1, MsgClass::Coll).drop, 0.5);
        // The link override wins for every class on that link.
        assert_eq!(p.knobs(0, 2, MsgClass::Coll).drop, 1.0);
        assert_eq!(p.knobs(2, 0, MsgClass::Coll).drop, 0.5);
    }

    #[test]
    fn with_link_replaces_existing_override() {
        let a = ChaosKnobs {
            drop: 0.3,
            ..ChaosKnobs::CALM
        };
        let b = ChaosKnobs {
            drop: 0.7,
            ..ChaosKnobs::CALM
        };
        let p = ChaosProfile::off().with_link(1, 2, a).with_link(1, 2, b);
        assert_eq!(p.per_link.len(), 1);
        assert_eq!(p.knobs(1, 2, MsgClass::P2p).drop, 0.7);
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let p = ChaosProfile::parse("drop=0.01,reorder=0.05,seed=0xBEEF").unwrap();
        assert_eq!(p.base.drop, 0.01);
        assert_eq!(p.base.reorder, 0.05);
        assert_eq!(p.seed, 0xBEEF);
        assert!(p.is_active());
        assert_eq!(
            ChaosProfile::parse("dup=0.5,jitter_us=20,rto_us=300,backoff=3,budget=5")
                .unwrap()
                .retry_budget,
            5
        );
        assert_eq!(ChaosProfile::parse("").unwrap(), ChaosProfile::off());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosProfile::parse("drop").is_err());
        assert!(ChaosProfile::parse("drop=2.0").is_err());
        assert!(ChaosProfile::parse("drop=abc").is_err());
        assert!(ChaosProfile::parse("frobnicate=1").is_err());
        assert!(ChaosProfile::parse("seed=0xZZ").is_err());
    }
}
