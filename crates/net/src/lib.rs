//! # parade-net — simulated cluster interconnect
//!
//! The substrate beneath the ParADE runtime: an in-process message fabric
//! connecting simulated SMP nodes, with a **virtual-time** cost model
//! (latency + per-byte bandwidth + per-message CPU, distinct intra-node and
//! inter-node link costs).
//!
//! Design notes:
//!
//! * Messages are demultiplexed into per-class mailboxes ([`MsgClass`]) so
//!   SDSM protocol traffic, MPI point-to-point, MPI collectives, and cluster
//!   control never interfere — mirroring the paper's dedicated communication
//!   thread and its thread-safe MPI requirement (§5.3).
//! * No real-time delay is ever injected; the fabric stamps each packet with
//!   a virtual arrival time and receivers reconcile their [`VClock`]s, which
//!   makes simulations both fast and accurate on an oversubscribed host.
//! * Seeded fault injection ([`ChaosProfile`], `PARADE_CHAOS`) turns the
//!   wire lossy; the fabric then runs a reliable channel (link sequence
//!   numbers, virtual-time retransmit timers with exponential backoff,
//!   receive-side dedup/resequencing) so every receiver still observes
//!   exactly-once, in-order delivery — or a structured [`FabricError`]
//!   naming the dead link when the retry budget runs out.

mod buffer;
mod chaos;
mod fabric;
mod packet;
mod profile;
pub mod reliable;
mod stats;
pub mod sync;
mod vbarrier;
mod vtime;

pub use buffer::Bytes;
pub use chaos::{ChaosKnobs, ChaosProfile};
pub use fabric::{Disconnected, Endpoint, Fabric, Match, RetransmitHook};
pub use packet::{MsgClass, Packet};
pub use profile::{LinkCost, NetProfile};
pub use reliable::FabricError;
pub use stats::{LinkHealth, NetStats, NodeNetStats, NodeTraffic, Traffic};
pub use vbarrier::VBarrier;
pub use vtime::{thread_cpu_ns, TimeSource, VClock, VTime};
