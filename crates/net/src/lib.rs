//! # parade-net — simulated cluster interconnect
//!
//! The substrate beneath the ParADE runtime: an in-process message fabric
//! connecting simulated SMP nodes, with a **virtual-time** cost model
//! (latency + per-byte bandwidth + per-message CPU, distinct intra-node and
//! inter-node link costs).
//!
//! Design notes:
//!
//! * Messages are demultiplexed into per-class mailboxes ([`MsgClass`]) so
//!   SDSM protocol traffic, MPI point-to-point, MPI collectives, and cluster
//!   control never interfere — mirroring the paper's dedicated communication
//!   thread and its thread-safe MPI requirement (§5.3).
//! * No real-time delay is ever injected; the fabric stamps each packet with
//!   a virtual arrival time and receivers reconcile their [`VClock`]s, which
//!   makes simulations both fast and accurate on an oversubscribed host.

mod buffer;
mod fabric;
mod packet;
mod profile;
mod stats;
pub mod sync;
mod vtime;

pub use buffer::Bytes;
pub use fabric::{Disconnected, Endpoint, Fabric, Match};
pub use packet::{MsgClass, Packet};
pub use profile::{LinkCost, NetProfile};
pub use stats::{NetStats, NodeNetStats, NodeTraffic, Traffic};
pub use vtime::{thread_cpu_ns, TimeSource, VClock, VTime};
