//! Intra-node (pthread-style) barrier with virtual-time reconciliation.
//!
//! All compute threads of a node synchronize here; the barrier releases
//! everyone at `max(arrival clocks) + overhead`, which is how barrier wait
//! time shows up in virtual time. Lives in the net crate because both the
//! core runtime's thread teams and the MPI layer's shared-memory collective
//! combine (ranks co-located on one SMP node) are built on it.

use crate::sync::{Condvar, Mutex};
use crate::vtime::{VClock, VTime};

/// Fixed CPU overhead of one node-local barrier crossing (a pthread
/// condvar round on the paper's hardware).
const NODE_BARRIER_OVERHEAD: VTime = VTime(2_000);

struct State {
    count: usize,
    generation: u64,
    max_arrival: VTime,
    release_at: VTime,
}

/// A reusable barrier for `n` threads carrying virtual time.
pub struct VBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl VBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        VBarrier {
            n,
            state: Mutex::new(State {
                count: 0,
                generation: 0,
                max_arrival: VTime::ZERO,
                release_at: VTime::ZERO,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn parties(&self) -> usize {
        self.n
    }

    /// Wait for all `n` threads; on return every clock reads the common
    /// release time. Returns `true` on exactly one thread per crossing
    /// (the "last arriver", used to elect a node representative).
    pub fn wait(&self, clock: &mut VClock) -> bool {
        clock.sample_compute();
        let mut st = self.state.lock();
        st.max_arrival = st.max_arrival.max(clock.now());
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            st.release_at = st.max_arrival + NODE_BARRIER_OVERHEAD;
            st.max_arrival = VTime::ZERO;
            let t = st.release_at;
            self.cv.notify_all();
            drop(st);
            clock.sync_to(t);
            true
        } else {
            let gen = st.generation;
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
            let t = st.release_at;
            drop(st);
            clock.sync_to(t);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_trivial() {
        let b = VBarrier::new(1);
        let mut c = VClock::manual();
        c.charge(VTime::from_micros(5));
        assert!(b.wait(&mut c));
        assert_eq!(c.now(), VTime::from_micros(5) + NODE_BARRIER_OVERHEAD);
    }

    #[test]
    fn all_threads_leave_with_max_time() {
        let b = Arc::new(VBarrier::new(3));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut c = VClock::manual();
                    c.charge(VTime::from_micros(10 * (i + 1)));
                    b.wait(&mut c);
                    c.now()
                })
            })
            .collect();
        let times: Vec<VTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let expect = VTime::from_micros(30) + NODE_BARRIER_OVERHEAD;
        assert!(times.iter().all(|&t| t == expect), "{times:?}");
    }

    #[test]
    fn exactly_one_leader_per_crossing() {
        let b = Arc::new(VBarrier::new(4));
        for _ in 0..5 {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = Arc::clone(&b);
                    std::thread::spawn(move || {
                        let mut c = VClock::manual();
                        b.wait(&mut c)
                    })
                })
                .collect();
            let leaders = handles
                .into_iter()
                .filter(|_| true)
                .map(|h| h.join().unwrap())
                .filter(|&x| x)
                .count();
            assert_eq!(leaders, 1);
        }
    }

    #[test]
    fn barrier_is_reusable_by_same_threads() {
        let b = Arc::new(VBarrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut c = VClock::manual();
                    let mut ts = Vec::new();
                    for round in 0..10 {
                        c.charge(VTime::from_nanos((i as u64 + 1) * (round + 1)));
                        b.wait(&mut c);
                        ts.push(c.now());
                    }
                    ts
                })
            })
            .collect();
        let t0 = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>();
        assert_eq!(t0[0], t0[1], "both threads see identical release times");
        for w in t0[0].windows(2) {
            assert!(w[1] > w[0], "release times strictly increase");
        }
    }
}
