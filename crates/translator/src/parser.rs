//! Recursive-descent parser for the mini-C + OpenMP subset.

use crate::ast::*;
use crate::token::{err, lex, ParseError, Spanned, Tok};

pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span()
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            err(self.line(), format!("expected {t}, found {}", self.peek()))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => err(self.line(), format!("expected identifier, found {other}")),
        }
    }

    fn try_type(&mut self) -> Option<Type> {
        // Skip storage qualifiers.
        while matches!(self.peek(), Tok::KwStatic | Tok::KwConst) {
            self.bump();
        }
        let ty = match self.peek() {
            Tok::KwInt => Type::Int,
            Tok::KwLong => Type::Long,
            Tok::KwDouble | Tok::KwFloat => Type::Double,
            Tok::KwVoid => Type::Void,
            _ => return None,
        };
        self.bump();
        // `long int`, `long long`.
        if ty == Type::Long {
            while matches!(self.peek(), Tok::KwInt | Tok::KwLong) {
                self.bump();
            }
        }
        Some(ty)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Include(s) => {
                    self.bump();
                    prog.includes.push(s);
                }
                _ => {
                    let span = self.span();
                    let Some(ty) = self.try_type() else {
                        return err(
                            span.line,
                            format!("expected declaration, found {}", self.peek()),
                        );
                    };
                    let name = self.eat_ident()?;
                    if *self.peek() == Tok::LParen {
                        prog.items.push(Item::Func(self.func_def(ty, name)?));
                    } else {
                        for d in self.decl_rest(ty, name, span)? {
                            prog.items.push(Item::Global(d));
                        }
                    }
                }
            }
        }
        Ok(prog)
    }

    fn func_def(&mut self, ret: Type, name: String) -> Result<FuncDef, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let line = self.line();
                let Some(ty) = self.try_type() else {
                    return err(line, "expected parameter type");
                };
                if ty == Type::Void && *self.peek() == Tok::RParen {
                    break; // f(void)
                }
                let pname = self.eat_ident()?;
                params.push(Param { ty, name: pname });
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block()?;
        Ok(FuncDef {
            ret,
            name,
            params,
            body,
        })
    }

    /// Continue a declaration after `type name` has been consumed; handles
    /// array dims, initializers, and comma-separated declarators.
    fn decl_rest(&mut self, ty: Type, first: String, span: Span) -> Result<Vec<Decl>, ParseError> {
        let mut out = Vec::new();
        let mut name = first;
        let mut dspan = span;
        loop {
            let mut dims = Vec::new();
            while *self.peek() == Tok::LBracket {
                self.bump();
                let line = self.line();
                let e = self.expr()?;
                let n = const_fold(&e).ok_or(ParseError {
                    line,
                    message: "array dimension must be a constant expression".into(),
                })?;
                if n <= 0 {
                    return err(line, "array dimension must be positive");
                }
                dims.push(n as usize);
                self.eat(&Tok::RBracket)?;
            }
            let init = if *self.peek() == Tok::Assign {
                self.bump();
                Some(self.assign_expr()?)
            } else {
                None
            };
            out.push(Decl {
                ty: ty.clone(),
                name,
                dims,
                init,
                span: dspan,
            });
            if *self.peek() == Tok::Comma {
                self.bump();
                dspan = self.span();
                name = self.eat_ident()?;
            } else {
                break;
            }
        }
        self.eat(&Tok::Semi)?;
        Ok(out)
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return err(self.line(), "unterminated block");
            }
            self.stmt_into(&mut stmts)?;
        }
        self.bump();
        Ok(Stmt::Block(stmts))
    }

    /// Parse one statement; declarations may expand to several.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        let span = self.span();
        if let Some(ty) = self.try_type() {
            let name = self.eat_ident()?;
            for d in self.decl_rest(ty, name, span)? {
                out.push(Stmt::Decl(d));
            }
            return Ok(());
        }
        out.push(self.stmt()?);
        Ok(())
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::LBrace => self.block(),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::PragmaOmp => self.omp(),
            Tok::KwIf => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if *self.peek() == Tok::KwElse {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::KwWhile => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Tok::KwFor => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::RParen)?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body: Box::new(self.stmt()?),
                })
            }
            Tok::KwReturn => {
                self.bump();
                let e = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            Tok::KwBreak => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            _ => {
                let span = self.span();
                let e = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Expr(e, span))
            }
        }
    }

    // ---- OpenMP pragmas ---------------------------------------------------

    fn omp(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        let line = span.line;
        self.eat(&Tok::PragmaOmp)?;
        let word = self.eat_ident()?;
        let kind = match word.as_str() {
            "parallel" => {
                if matches!(self.peek(), Tok::Ident(s) if s == "for") {
                    self.bump();
                    DirKind::ParallelFor
                } else {
                    DirKind::Parallel
                }
            }
            "for" => DirKind::For,
            "critical" => {
                let name = if *self.peek() == Tok::LParen {
                    self.bump();
                    let n = self.eat_ident()?;
                    self.eat(&Tok::RParen)?;
                    Some(n)
                } else {
                    None
                };
                DirKind::Critical(name)
            }
            "atomic" => DirKind::Atomic,
            "single" => DirKind::Single,
            "master" => DirKind::Master,
            "barrier" => DirKind::Barrier,
            "task" => DirKind::Task,
            "taskwait" => DirKind::Taskwait,
            "target" => DirKind::Target,
            other => return err(line, format!("unsupported OpenMP directive '{other}'")),
        };
        let mut clauses = Vec::new();
        while *self.peek() != Tok::PragmaEnd {
            clauses.push(self.clause()?);
        }
        self.eat(&Tok::PragmaEnd)?;
        let dir = Directive {
            kind: kind.clone(),
            clauses,
            span,
        };
        let body = match kind {
            DirKind::Barrier | DirKind::Taskwait => None,
            _ => Some(Box::new(self.stmt()?)),
        };
        Ok(Stmt::Omp(dir, body))
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        let line = self.line();
        // Allow comma separators between clauses.
        if *self.peek() == Tok::Comma {
            self.bump();
        }
        let word = self.eat_ident()?;
        match word.as_str() {
            "private" => Ok(Clause::Private(self.var_list()?)),
            "shared" => Ok(Clause::Shared(self.var_list()?)),
            "firstprivate" => Ok(Clause::FirstPrivate(self.var_list()?)),
            "lastprivate" => Ok(Clause::LastPrivate(self.var_list()?)),
            "nowait" => Ok(Clause::NoWait),
            "num_threads" => {
                self.eat(&Tok::LParen)?;
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(Clause::NumThreads(e))
            }
            "reduction" => {
                self.eat(&Tok::LParen)?;
                let op = match self.bump() {
                    Tok::Plus => RedOp::Add,
                    Tok::Star => RedOp::Mul,
                    Tok::Ident(s) if s == "min" => RedOp::Min,
                    Tok::Ident(s) if s == "max" => RedOp::Max,
                    other => return err(line, format!("unsupported reduction operator {other}")),
                };
                self.eat(&Tok::Colon)?;
                let mut vars = vec![self.eat_ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    vars.push(self.eat_ident()?);
                }
                self.eat(&Tok::RParen)?;
                Ok(Clause::Reduction(op, vars))
            }
            "depend" => {
                self.eat(&Tok::LParen)?;
                let which = self.eat_ident()?;
                let kind = match which.as_str() {
                    "in" => DepKind::In,
                    "out" => DepKind::Out,
                    "inout" => DepKind::InOut,
                    _ => return err(line, format!("unsupported depend kind '{which}'")),
                };
                self.eat(&Tok::Colon)?;
                let mut vars = vec![self.eat_ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    vars.push(self.eat_ident()?);
                }
                self.eat(&Tok::RParen)?;
                Ok(Clause::Depend(kind, vars))
            }
            "map" => {
                self.eat(&Tok::LParen)?;
                let which = self.eat_ident()?;
                let kind = match which.as_str() {
                    "to" => MapKind::To,
                    "from" => MapKind::From,
                    "tofrom" => MapKind::ToFrom,
                    _ => return err(line, format!("unsupported map kind '{which}'")),
                };
                self.eat(&Tok::Colon)?;
                let mut vars = vec![self.eat_ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    vars.push(self.eat_ident()?);
                }
                self.eat(&Tok::RParen)?;
                Ok(Clause::Map(kind, vars))
            }
            "device" => {
                self.eat(&Tok::LParen)?;
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(Clause::Device(e))
            }
            "schedule" => {
                self.eat(&Tok::LParen)?;
                let which = self.eat_ident()?;
                let chunk = if *self.peek() == Tok::Comma {
                    self.bump();
                    match self.bump() {
                        Tok::Int(v) if v > 0 => Some(v as usize),
                        other => {
                            return err(line, format!("bad schedule chunk {other}"));
                        }
                    }
                } else {
                    None
                };
                self.eat(&Tok::RParen)?;
                let s = match (which.as_str(), chunk) {
                    ("static", None) => Sched::Static,
                    ("static", Some(c)) => Sched::StaticChunk(c),
                    ("dynamic", c) => Sched::Dynamic(c.unwrap_or(1)),
                    ("guided", c) => Sched::Guided(c.unwrap_or(1)),
                    _ => return err(line, format!("unsupported schedule kind '{which}'")),
                };
                Ok(Clause::Schedule(s))
            }
            other => err(line, format!("unsupported clause '{other}'")),
        }
    }

    fn var_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut vars = vec![self.eat_ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            vars.push(self.eat_ident()?);
        }
        self.eat(&Tok::RParen)?;
        Ok(vars)
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        if !matches!(lhs, Expr::Ident(_) | Expr::Index(..)) {
            return err(line, "assignment target must be a variable or element");
        }
        let rhs = self.assign_expr()?;
        Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let c = self.logic_or()?;
        if *self.peek() == Tok::Question {
            self.bump();
            let a = self.assign_expr()?;
            self.eat(&Tok::Colon)?;
            let b = self.assign_expr()?;
            Ok(Expr::Cond(Box::new(c), Box::new(a), Box::new(b)))
        } else {
            Ok(c)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logic_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let r = self.logic_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let r = self.equality()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let r = self.relational()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                // Prefix increment: desugar to compound assignment.
                let op = if self.bump() == Tok::PlusPlus {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let target = self.unary()?;
                Ok(Expr::Assign(
                    Some(op),
                    Box::new(target),
                    Box::new(Expr::Int(1)),
                ))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::LBracket => {
                    let Expr::Ident(name) = e.clone() else {
                        return err(self.line(), "indexing is only supported on named arrays");
                    };
                    let mut idx = Vec::new();
                    while *self.peek() == Tok::LBracket {
                        self.bump();
                        idx.push(self.expr()?);
                        self.eat(&Tok::RBracket)?;
                    }
                    e = Expr::Index(name, idx);
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    // Postfix; only valid as a statement-level expression in
                    // our subset, desugared like the prefix form.
                    let op = if self.bump() == Tok::PlusPlus {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    e = Expr::Assign(Some(op), Box::new(e), Box::new(Expr::Int(1)));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.assign_expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => err(line, format!("unexpected token {other}")),
        }
    }
}

/// Fold integer constant expressions (array dimensions).
fn const_fold(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Unary(UnOp::Neg, x) => const_fold(x).map(|v| -v),
        Expr::Binary(op, a, b) => {
            let (a, b) = (const_fold(a)?, const_fold(b)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a.checked_div(b)?,
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_main() {
        let p = parse("int main() { return 0; }").unwrap();
        let f = p.func("main").unwrap();
        assert_eq!(f.ret, Type::Int);
        assert_eq!(f.params.len(), 0);
    }

    #[test]
    fn parse_decls_and_arrays() {
        let p = parse("double a[10][20]; int i, j = 3;").unwrap();
        assert_eq!(p.items.len(), 3);
        match &p.items[0] {
            Item::Global(d) => {
                assert_eq!(d.dims, vec![10, 20]);
                assert_eq!(d.byte_size(), 1600);
            }
            _ => panic!(),
        }
        match &p.items[2] {
            Item::Global(d) => assert_eq!(d.init, Some(Expr::Int(3))),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_constant_dims() {
        let p = parse("double a[4*8];").unwrap();
        match &p.items[0] {
            Item::Global(d) => assert_eq!(d.dims, vec![32]),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_parallel_for_with_clauses() {
        let src = r#"
            int main() {
                int i; double sum = 0.0; double a[100];
                #pragma omp parallel for private(i) reduction(+: sum) schedule(static, 4)
                for (i = 0; i < 100; i++) sum += a[i];
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        let f = p.func("main").unwrap();
        let Stmt::Block(stmts) = &f.body else {
            panic!()
        };
        let omp = stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Omp(d, b) => Some((d, b)),
                _ => None,
            })
            .expect("pragma parsed");
        assert_eq!(omp.0.kind, DirKind::ParallelFor);
        assert_eq!(omp.0.privates(), vec!["i".to_string()]);
        assert_eq!(omp.0.reductions(), vec![(RedOp::Add, "sum".to_string())]);
        assert_eq!(omp.0.schedule(), Sched::StaticChunk(4));
        assert!(matches!(omp.1.as_deref(), Some(Stmt::For { .. })));
    }

    #[test]
    fn parse_critical_with_name_and_atomic() {
        let src = r#"
            int main() {
                double x = 0;
                #pragma omp parallel
                {
                    #pragma omp critical (lk)
                    { x = x + 1.0; }
                    #pragma omp atomic
                    x += 2.0;
                    #pragma omp barrier
                }
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(p.func("main").is_some());
    }

    #[test]
    fn parse_expressions_precedence() {
        let p = parse("int main() { int x; x = 1 + 2 * 3 < 7 && 1; return x; }").unwrap();
        let f = p.func("main").unwrap();
        let Stmt::Block(ss) = &f.body else { panic!() };
        let Stmt::Expr(Expr::Assign(None, _, rhs), _) = &ss[1] else {
            panic!("{ss:?}")
        };
        // ((1 + (2*3)) < 7) && 1
        let Expr::Binary(BinOp::And, l, _) = rhs.as_ref() else {
            panic!()
        };
        assert!(matches!(l.as_ref(), Expr::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn parse_increment_desugars() {
        let p = parse("int main() { int i = 0; i++; ++i; i += 2; return i; }").unwrap();
        let f = p.func("main").unwrap();
        let Stmt::Block(ss) = &f.body else { panic!() };
        assert!(matches!(
            &ss[1],
            Stmt::Expr(Expr::Assign(Some(BinOp::Add), _, _), _)
        ));
        assert!(matches!(
            &ss[2],
            Stmt::Expr(Expr::Assign(Some(BinOp::Add), _, _), _)
        ));
    }

    #[test]
    fn parse_errors_are_located() {
        let e = parse("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("#pragma omp sections\nint main(){}").is_err());
    }

    #[test]
    fn parse_ternary_and_calls() {
        let p = parse("int main() { double y; y = sqrt(2.0) > 1.0 ? 1.0 : 0.0; return 0; }");
        assert!(p.is_ok());
    }
}
