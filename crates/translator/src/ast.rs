//! Abstract syntax of the mini-C + OpenMP 1.0 subset.

pub use crate::token::Span;

/// Scalar and array types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    Int,
    Long,
    Double,
    Void,
}

impl Type {
    /// Size in bytes (used by the small-data threshold analysis, §5.2.1).
    pub fn size(&self) -> usize {
        match self {
            Type::Int => 4,
            Type::Long | Type::Double => 8,
            Type::Void => 0,
        }
    }

    pub fn is_float(&self) -> bool {
        matches!(self, Type::Double)
    }
}

/// A variable declaration (scalar or fixed-size array).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    pub ty: Type,
    pub name: String,
    /// Array dimensions (empty for scalars). Dimensions are constant
    /// expressions folded at parse time.
    pub dims: Vec<usize>,
    pub init: Option<Expr>,
    /// Source position of the declarator.
    pub span: Span,
}

impl Decl {
    pub fn total_elems(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    pub fn byte_size(&self) -> usize {
        self.total_elems() * self.ty.size()
    }

    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    /// `a[i]` or `a[i][j]` (row-major).
    Index(String, Vec<Expr>),
    Call(String, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `lhs = rhs`, `lhs += rhs`, … (`op` is `None` for plain assignment).
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variables read by this expression (no dedup).
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ident(n) => out.push(n.clone()),
            Expr::Index(n, idx) => {
                out.push(n.clone());
                for e in idx {
                    e.vars(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.vars(out);
                }
            }
            Expr::Unary(_, e) => e.vars(out),
            Expr::Binary(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Expr::Cond(c, a, b) => {
                c.vars(out);
                a.vars(out);
                b.vars(out);
            }
            Expr::Assign(_, l, r) => {
                l.vars(out);
                r.vars(out);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => {}
        }
    }

    /// Function names called anywhere in this expression.
    pub fn calls(&self, out: &mut Vec<String>) {
        match self {
            Expr::Call(name, args) => {
                out.push(name.clone());
                for a in args {
                    a.calls(out);
                }
            }
            Expr::Index(_, idx) => {
                for e in idx {
                    e.calls(out);
                }
            }
            Expr::Unary(_, e) => e.calls(out),
            Expr::Binary(_, a, b) => {
                a.calls(out);
                b.calls(out);
            }
            Expr::Cond(c, a, b) => {
                c.calls(out);
                a.calls(out);
                b.calls(out);
            }
            Expr::Assign(_, l, r) => {
                l.calls(out);
                r.calls(out);
            }
            _ => {}
        }
    }
}

/// Reduction operators of the `reduction` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    Add,
    Mul,
    Min,
    Max,
}

impl RedOp {
    pub fn identity_f64(self) -> f64 {
        match self {
            RedOp::Add => 0.0,
            RedOp::Mul => 1.0,
            RedOp::Min => f64::INFINITY,
            RedOp::Max => f64::NEG_INFINITY,
        }
    }

    pub fn c_token(self) -> &'static str {
        match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Min => "min",
            RedOp::Max => "max",
        }
    }
}

/// Loop schedules of the `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sched {
    Static,
    StaticChunk(usize),
    Dynamic(usize),
    Guided(usize),
}

/// Dependence direction of the `depend` clause (tasking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    In,
    Out,
    InOut,
}

impl DepKind {
    pub fn reads(self) -> bool {
        matches!(self, DepKind::In | DepKind::InOut)
    }

    pub fn writes(self) -> bool {
        matches!(self, DepKind::Out | DepKind::InOut)
    }

    pub fn c_token(self) -> &'static str {
        match self {
            DepKind::In => "in",
            DepKind::Out => "out",
            DepKind::InOut => "inout",
        }
    }
}

/// Transfer direction of the `map` clause (`target` offload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    To,
    From,
    ToFrom,
}

impl MapKind {
    pub fn c_token(self) -> &'static str {
        match self {
            MapKind::To => "to",
            MapKind::From => "from",
            MapKind::ToFrom => "tofrom",
        }
    }
}

/// OpenMP clauses (1.0 worksharing plus the tasking/offload subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    Private(Vec<String>),
    Shared(Vec<String>),
    FirstPrivate(Vec<String>),
    LastPrivate(Vec<String>),
    Reduction(RedOp, Vec<String>),
    Schedule(Sched),
    NumThreads(Expr),
    NoWait,
    /// `depend(in|out|inout: vars)` — task ordering edges.
    Depend(DepKind, Vec<String>),
    /// `map(to|from|tofrom: vars)` — `target` data movement.
    Map(MapKind, Vec<String>),
    /// `device(expr)` — which node a `target` region offloads to.
    Device(Expr),
}

/// OpenMP directive kinds supported by the translator (the 1.0 core plus
/// the tasking/offload subset: `task`, `taskwait`, `target`).
#[derive(Debug, Clone, PartialEq)]
pub enum DirKind {
    Parallel,
    For,
    ParallelFor,
    Critical(Option<String>),
    Atomic,
    Single,
    Master,
    Barrier,
    Task,
    Taskwait,
    Target,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    pub kind: DirKind,
    pub clauses: Vec<Clause>,
    pub span: Span,
}

impl Directive {
    /// Source line of the `#pragma` (span shorthand kept for the emitter's
    /// error messages).
    pub fn line(&self) -> usize {
        self.span.line
    }
}

impl Directive {
    pub fn clause_vars(&self, pick: impl Fn(&Clause) -> Option<&Vec<String>>) -> Vec<String> {
        self.clauses
            .iter()
            .filter_map(pick)
            .flatten()
            .cloned()
            .collect()
    }

    pub fn privates(&self) -> Vec<String> {
        self.clause_vars(|c| match c {
            Clause::Private(v) => Some(v),
            _ => None,
        })
    }

    pub fn firstprivates(&self) -> Vec<String> {
        self.clause_vars(|c| match c {
            Clause::FirstPrivate(v) => Some(v),
            _ => None,
        })
    }

    pub fn lastprivates(&self) -> Vec<String> {
        self.clause_vars(|c| match c {
            Clause::LastPrivate(v) => Some(v),
            _ => None,
        })
    }

    pub fn reductions(&self) -> Vec<(RedOp, String)> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Clause::Reduction(op, vars) = c {
                for v in vars {
                    out.push((*op, v.clone()));
                }
            }
        }
        out
    }

    pub fn schedule(&self) -> Sched {
        for c in &self.clauses {
            if let Clause::Schedule(s) = c {
                return *s;
            }
        }
        Sched::Static
    }

    pub fn nowait(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::NoWait))
    }

    /// `depend` edges as `(kind, var)` pairs, in clause order.
    pub fn depends(&self) -> Vec<(DepKind, String)> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Clause::Depend(k, vars) = c {
                for v in vars {
                    out.push((*k, v.clone()));
                }
            }
        }
        out
    }

    /// `map` entries as `(kind, var)` pairs, in clause order.
    pub fn maps(&self) -> Vec<(MapKind, String)> {
        let mut out = Vec::new();
        for c in &self.clauses {
            if let Clause::Map(k, vars) = c {
                for v in vars {
                    out.push((*k, v.clone()));
                }
            }
        }
        out
    }

    /// The `device(expr)` clause, if present.
    pub fn device(&self) -> Option<&Expr> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Device(e) => Some(e),
            _ => None,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Decl(Decl),
    /// An expression statement with the source position of its first token.
    Expr(Expr, Span),
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) body` — init/step are expressions (or
    /// declarations folded by the parser into a preceding Decl).
    For {
        init: Option<Expr>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Block(Vec<Stmt>),
    Return(Option<Expr>),
    Break,
    Continue,
    /// A directive applied to the following statement (block directives).
    Omp(Directive, Option<Box<Stmt>>),
    Empty,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    pub body: Stmt,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Func(FuncDef),
    Global(Decl),
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub includes: Vec<String>,
    pub items: Vec<Item>,
}

impl Program {
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.items.iter().find_map(|i| match i {
            Item::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }
}

/// Every variable mentioned by a statement (reads and writes), including
/// nested directive bodies. Shared by the analyzers' overlap tests and the
/// MIR lowering's per-sibling use summaries.
pub fn stmt_uses(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Decl(d) => {
            if let Some(e) = &d.init {
                e.vars(out);
            }
        }
        Stmt::Expr(e, _) => e.vars(out),
        Stmt::If(c, a, b) => {
            c.vars(out);
            stmt_uses(a, out);
            if let Some(b) = b {
                stmt_uses(b, out);
            }
        }
        Stmt::While(c, b) => {
            c.vars(out);
            stmt_uses(b, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                e.vars(out);
            }
            stmt_uses(body, out);
        }
        Stmt::Block(ss) => {
            for s in ss {
                stmt_uses(s, out);
            }
        }
        Stmt::Return(Some(e)) => e.vars(out),
        Stmt::Omp(_, Some(b)) => stmt_uses(b, out),
        _ => {}
    }
}

/// Assignment targets (scalar and array names) anywhere in a statement,
/// including nested directive bodies.
pub fn stmt_write_targets(s: &Stmt, out: &mut Vec<String>) {
    fn expr_targets(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Assign(_, lhs, rhs) => {
                match lhs.as_ref() {
                    Expr::Ident(n) | Expr::Index(n, _) => out.push(n.clone()),
                    other => expr_targets(other, out),
                }
                if let Expr::Index(_, idxs) = lhs.as_ref() {
                    for ix in idxs {
                        expr_targets(ix, out);
                    }
                }
                expr_targets(rhs, out);
            }
            Expr::Unary(_, a) => expr_targets(a, out),
            Expr::Binary(_, a, b) => {
                expr_targets(a, out);
                expr_targets(b, out);
            }
            Expr::Cond(c, a, b) => {
                expr_targets(c, out);
                expr_targets(a, out);
                expr_targets(b, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    expr_targets(a, out);
                }
            }
            Expr::Index(_, idxs) => {
                for ix in idxs {
                    expr_targets(ix, out);
                }
            }
            _ => {}
        }
    }
    match s {
        Stmt::Decl(d) => {
            if let Some(e) = &d.init {
                expr_targets(e, out);
            }
        }
        Stmt::Expr(e, _) => expr_targets(e, out),
        Stmt::If(c, a, b) => {
            expr_targets(c, out);
            stmt_write_targets(a, out);
            if let Some(b) = b {
                stmt_write_targets(b, out);
            }
        }
        Stmt::While(c, b) => {
            expr_targets(c, out);
            stmt_write_targets(b, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                expr_targets(e, out);
            }
            stmt_write_targets(body, out);
        }
        Stmt::Block(ss) => {
            for s in ss {
                stmt_write_targets(s, out);
            }
        }
        Stmt::Omp(_, Some(b)) => stmt_write_targets(b, out),
        _ => {}
    }
}

/// First source position inside a statement, for diagnostics on statements
/// that carry no span of their own.
pub fn stmt_span(s: &Stmt) -> Option<Span> {
    match s {
        Stmt::Decl(d) => Some(d.span),
        Stmt::Expr(_, sp) => Some(*sp),
        Stmt::Omp(d, _) => Some(d.span),
        Stmt::If(_, a, b) => stmt_span(a).or_else(|| b.as_deref().and_then(stmt_span)),
        Stmt::While(_, b) | Stmt::For { body: b, .. } => stmt_span(b),
        Stmt::Block(ss) => ss.iter().find_map(stmt_span),
        _ => None,
    }
}

/// Builtin functions the translator treats as side-effect-free math (they
/// do not break lexical analyzability, §4.2) plus the OpenMP query API and
/// `printf`.
pub const MATH_BUILTINS: &[&str] = &[
    "sqrt", "fabs", "sin", "cos", "tan", "exp", "log", "pow", "floor", "ceil", "fmin", "fmax",
];

pub const OMP_BUILTINS: &[&str] = &["omp_get_thread_num", "omp_get_num_threads", "omp_get_wtime"];

pub fn is_math_builtin(name: &str) -> bool {
    MATH_BUILTINS.contains(&name)
}

pub fn is_known_builtin(name: &str) -> bool {
    is_math_builtin(name) || OMP_BUILTINS.contains(&name) || name == "printf"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_sizes() {
        let d = Decl {
            ty: Type::Double,
            name: "a".into(),
            dims: vec![10, 4],
            init: None,
            span: Span::default(),
        };
        assert_eq!(d.total_elems(), 40);
        assert_eq!(d.byte_size(), 320);
        assert!(d.is_array());
        let s = Decl {
            ty: Type::Int,
            name: "x".into(),
            dims: vec![],
            init: None,
            span: Span::default(),
        };
        assert_eq!(s.byte_size(), 4);
    }

    #[test]
    fn expr_vars_and_calls() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Index("a".into(), vec![Expr::Ident("i".into())])),
            Box::new(Expr::Call("sqrt".into(), vec![Expr::Ident("x".into())])),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["a".to_string(), "i".into(), "x".into()]);
        let mut calls = Vec::new();
        e.calls(&mut calls);
        assert_eq!(calls, vec!["sqrt".to_string()]);
    }

    #[test]
    fn directive_clause_helpers() {
        let d = Directive {
            kind: DirKind::ParallelFor,
            clauses: vec![
                Clause::Private(vec!["i".into(), "j".into()]),
                Clause::Reduction(RedOp::Add, vec!["err".into()]),
                Clause::Schedule(Sched::Dynamic(8)),
                Clause::NoWait,
            ],
            span: Span::at_line(1),
        };
        assert_eq!(d.privates(), vec!["i".to_string(), "j".into()]);
        assert_eq!(d.reductions(), vec![(RedOp::Add, "err".to_string())]);
        assert_eq!(d.schedule(), Sched::Dynamic(8));
        assert!(d.nowait());
    }

    #[test]
    fn stmt_helpers_cover_nested_directives() {
        let body = Stmt::Omp(
            Directive {
                kind: DirKind::Critical(None),
                clauses: vec![],
                span: Span::new(4, 9),
            },
            Some(Box::new(Stmt::Expr(
                Expr::Assign(
                    Some(BinOp::Add),
                    Box::new(Expr::Ident("sum".into())),
                    Box::new(Expr::Index("a".into(), vec![Expr::Ident("i".into())])),
                ),
                Span::new(5, 13),
            ))),
        );
        let s = Stmt::Block(vec![Stmt::Empty, body]);
        let mut uses = Vec::new();
        stmt_uses(&s, &mut uses);
        assert_eq!(uses, vec!["sum".to_string(), "a".into(), "i".into()]);
        let mut writes = Vec::new();
        stmt_write_targets(&s, &mut writes);
        assert_eq!(writes, vec!["sum".to_string()]);
        assert_eq!(stmt_span(&s), Some(Span::new(4, 9)));
    }

    #[test]
    fn builtins() {
        assert!(is_math_builtin("sqrt"));
        assert!(!is_math_builtin("compute"));
        assert!(is_known_builtin("printf"));
        assert!(is_known_builtin("omp_get_thread_num"));
    }
}
