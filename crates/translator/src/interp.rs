//! Interpreter: executes a translated OpenMP program on the ParADE
//! runtime.
//!
//! The real ParADE emits C that is compiled and linked against the runtime
//! library; this reproduction instead *interprets* the lowered program
//! directly against `parade-core`, which exercises exactly the same
//! directive lowerings end-to-end (allocation protocol selection,
//! collectives vs locks, work-sharing, barriers) without needing a C
//! toolchain inside the simulation.
//!
//! Supported subset: the mini-C of the parser; `double`/`int`/`long`
//! scalars and fixed-size arrays; functions without OpenMP directives
//! callable from anywhere; OpenMP 1.0 directives inside `main`.

use std::collections::HashMap;
use std::sync::Arc;

use parade_net::sync::Mutex;

use parade_core::{Cluster, MasterCtx, ReduceOp, SharedScalar, SharedVec, ThreadCtx};

use crate::oracle::{Oracle, RaceReport};

use crate::analysis::{
    analyze_critical, analyze_single, classify_region, loop_of, CriticalLowering,
    RegionClassification, SingleLowering, Symbols, VarScope, DEFAULT_SMALL_THRESHOLD,
};
use crate::ast::*;

/// Interpreter failure.
#[derive(Debug, Clone)]
pub struct RuntimeError {
    pub message: String,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

fn rte<T>(msg: impl Into<String>) -> Result<T, RuntimeError> {
    Err(RuntimeError {
        message: msg.into(),
    })
}

type RtResult<T> = Result<T, RuntimeError>;

/// Runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    I(i64),
    D(f64),
    S(String),
}

impl Val {
    pub fn as_f64(&self) -> f64 {
        match self {
            Val::I(v) => *v as f64,
            Val::D(v) => *v,
            Val::S(_) => f64::NAN,
        }
    }

    pub fn as_i64(&self) -> i64 {
        match self {
            Val::I(v) => *v,
            Val::D(v) => *v as i64,
            Val::S(_) => 0,
        }
    }

    fn truthy(&self) -> bool {
        match self {
            Val::I(v) => *v != 0,
            Val::D(v) => *v != 0.0,
            Val::S(s) => !s.is_empty(),
        }
    }
}

/// Shared storage assigned to a variable by the protocol-classification
/// pre-pass (§3: "ParADE classifies data structures according to their
/// size and applies different protocols").
#[derive(Clone)]
enum Shared {
    /// Large data: paged DSM, HLRC invalidate protocol.
    ArrF(SharedVec<f64>, Vec<usize>),
    ArrI(SharedVec<i64>, Vec<usize>),
    /// Small scalar, message-passing update protocol.
    ScalarUpd(SharedScalar<f64>, Type),
    /// Scalar forced onto the paged DSM (written by plain stores or inside
    /// lock-path criticals).
    ScalarHlrc(SharedVec<f64>, Type),
}

/// Private storage (master frame or a thread's frame).
#[derive(Debug, Clone)]
enum Local {
    Scalar(Type, Val),
    ArrF(Vec<usize>, Vec<f64>),
    ArrI(Vec<usize>, Vec<i64>),
}

/// Flow control outcome of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Val>),
}

/// Output of a program run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub exit: i64,
    pub stdout: String,
    /// Dynamic races found by the happens-before oracle (empty unless the
    /// interpreter was built [`Interp::with_oracle`]).
    pub races: Vec<RaceReport>,
}

/// Execution context: serial (master) or inside a parallel region.
enum Exec<'a> {
    Master(&'a mut MasterCtx),
    Thread(&'a ThreadCtx),
}

impl<'a> Exec<'a> {
    fn vec_get_f(&mut self, v: &SharedVec<f64>, i: usize) -> f64 {
        match self {
            Exec::Master(g) => g.get(v, i),
            Exec::Thread(tc) => tc.get(v, i),
        }
    }

    fn vec_set_f(&mut self, v: &SharedVec<f64>, i: usize, x: f64) {
        match self {
            Exec::Master(g) => g.set(v, i, x),
            Exec::Thread(tc) => tc.set(v, i, x),
        }
    }

    fn vec_get_i(&mut self, v: &SharedVec<i64>, i: usize) -> i64 {
        match self {
            Exec::Master(g) => g.get(v, i),
            Exec::Thread(tc) => tc.get(v, i),
        }
    }

    fn vec_set_i(&mut self, v: &SharedVec<i64>, i: usize, x: i64) {
        match self {
            Exec::Master(g) => g.set(v, i, x),
            Exec::Thread(tc) => tc.set(v, i, x),
        }
    }

    fn scalar_get(&mut self, s: &SharedScalar<f64>) -> f64 {
        match self {
            Exec::Master(g) => g.scalar_get_f64(s),
            Exec::Thread(tc) => tc.scalar_get(s),
        }
    }

    fn thread_num(&self) -> usize {
        match self {
            Exec::Master(_) => 0,
            Exec::Thread(tc) => tc.thread_num(),
        }
    }

    fn num_threads(&self) -> usize {
        match self {
            Exec::Master(_) => 1,
            Exec::Thread(tc) => tc.num_threads(),
        }
    }

    fn wtime(&mut self) -> f64 {
        match self {
            Exec::Master(g) => g.now().as_secs_f64(),
            Exec::Thread(tc) => tc.now().as_secs_f64(),
        }
    }
}

/// The interpreter for one program.
pub struct Interp {
    prog: Arc<Program>,
    threshold: usize,
    oracle: bool,
}

impl Interp {
    pub fn new(prog: Program) -> Self {
        Interp {
            prog: Arc::new(prog),
            threshold: DEFAULT_SMALL_THRESHOLD,
            oracle: false,
        }
    }

    pub fn with_threshold(mut self, t: usize) -> Self {
        self.threshold = t;
        self
    }

    /// Enable the happens-before race oracle: every shared access inside a
    /// parallel region is checked against FastTrack-style shadow state, and
    /// detected races land in [`RunOutput::races`].
    pub fn with_oracle(mut self) -> Self {
        self.oracle = true;
        self
    }

    /// Run `main` on the given cluster; returns the exit code and captured
    /// `printf` output.
    pub fn run(&self, cluster: &Cluster) -> RtResult<RunOutput> {
        let prog = Arc::clone(&self.prog);
        let threshold = self.threshold;
        let oracle_enabled = self.oracle;
        let result: RtResult<(i64, String, Vec<RaceReport>)> = cluster.run(move |g| {
            let Some(main) = prog.func("main") else {
                return rte("program has no main()");
            };
            let main = main.clone();
            let io = Arc::new(Mutex::new(String::new()));
            let syms = Symbols::collect(&prog, &main);
            let storage = plan_storage(&prog, &main, &syms, threshold);
            let shared = alloc_shared(g, &syms, &storage)?;
            let mut env = Env {
                prog: Arc::clone(&prog),
                syms: Arc::new(syms),
                shared: Arc::new(shared),
                io: Arc::clone(&io),
                threshold,
                scopes: vec![HashMap::new()],
                in_region: false,
                region_class: None,
                single_dummy: None,
                lp_scratch: None,
                in_update_body: false,
                in_task_body: false,
                cur_span: Span::default(),
                oracle_enabled,
                oracle: None,
                oracle_tid: 0,
                races: Arc::new(Mutex::new(Vec::new())),
            };
            // Initialize globals (into shared storage or master locals).
            let mut exec = Exec::Master(g);
            for item in prog.items.iter() {
                if let Item::Global(d) = item {
                    env.declare(&mut exec, d)?;
                }
            }
            let flow = env.exec_region_aware(g, &main.body)?;
            let exit = match flow {
                Flow::Return(Some(v)) => v.as_i64(),
                _ => 0,
            };
            let out = io.lock().clone();
            let races = env.races.lock().clone();
            Ok((exit, out, races))
        });
        let (exit, stdout, races) = result?;
        Ok(RunOutput {
            exit,
            stdout,
            races,
        })
    }
}

/// Storage class decided by the pre-pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorageKind {
    #[allow(dead_code)] // the implicit default: absent from the map
    MasterLocal,
    SharedArr,
    ScalarUpdate,
    ScalarHlrc,
}

/// Decide the storage/protocol of every variable (globals + main locals):
/// arrays shared by any region go to the paged DSM; shared scalars use the
/// update protocol unless written by plain stores or lock-path constructs,
/// which force HLRC.
fn plan_storage(
    prog: &Program,
    main: &FuncDef,
    syms: &Symbols,
    threshold: usize,
) -> HashMap<String, StorageKind> {
    let mut kinds: HashMap<String, StorageKind> = HashMap::new();
    // Globals are conservatively shared (callees may touch them from
    // inside regions).
    for item in &prog.items {
        if let Item::Global(d) = item {
            kinds.insert(
                d.name.clone(),
                if d.is_array() {
                    StorageKind::SharedArr
                } else {
                    StorageKind::ScalarHlrc
                },
            );
        }
    }
    // Walk main for parallel regions.
    let mut regions = Vec::new();
    collect_regions(&main.body, &mut regions);
    for (dir, body) in &regions {
        let class = classify_region(dir, body, syms);
        for name in class.shared_vars() {
            let Some(d) = syms.get(&name) else { continue };
            let entry = kinds.entry(name.clone()).or_insert(if d.is_array() {
                StorageKind::SharedArr
            } else {
                StorageKind::ScalarUpdate
            });
            if d.is_array() {
                *entry = StorageKind::SharedArr;
            }
        }
        // Plain writes (outside analyzable constructs) force HLRC.
        let mut forced = Vec::new();
        forced_hlrc_writes(body, &class, syms, threshold, &mut forced);
        for name in forced {
            if let Some(k) = kinds.get_mut(&name) {
                if *k == StorageKind::ScalarUpdate {
                    *k = StorageKind::ScalarHlrc;
                }
            }
        }
    }
    kinds
}

fn collect_regions(s: &Stmt, out: &mut Vec<(Directive, Stmt)>) {
    match s {
        Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Parallel | DirKind::ParallelFor) => {
            out.push((d.clone(), b.as_ref().clone()));
        }
        Stmt::Block(ss) => {
            for s in ss {
                collect_regions(s, out);
            }
        }
        Stmt::If(_, a, b) => {
            collect_regions(a, out);
            if let Some(b) = b {
                collect_regions(b, out);
            }
        }
        Stmt::While(_, b) => collect_regions(b, out),
        Stmt::For { body, .. } => collect_regions(body, out),
        _ => {}
    }
}

/// Scalar shared variables written by plain assignments or inside
/// lock-lowered constructs within a region body.
fn forced_hlrc_writes(
    s: &Stmt,
    class: &RegionClassification,
    syms: &Symbols,
    threshold: usize,
    out: &mut Vec<String>,
) {
    match s {
        Stmt::Expr(e, _) => expr_plain_writes(e, out),
        Stmt::Decl(d) => {
            if let Some(e) = &d.init {
                expr_plain_writes(e, out);
            }
        }
        Stmt::Block(ss) => {
            for s in ss {
                forced_hlrc_writes(s, class, syms, threshold, out);
            }
        }
        Stmt::If(c, a, b) => {
            expr_plain_writes(c, out);
            forced_hlrc_writes(a, class, syms, threshold, out);
            if let Some(b) = b {
                forced_hlrc_writes(b, class, syms, threshold, out);
            }
        }
        Stmt::While(c, b) => {
            expr_plain_writes(c, out);
            forced_hlrc_writes(b, class, syms, threshold, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                expr_plain_writes(e, out);
            }
            forced_hlrc_writes(body, class, syms, threshold, out);
        }
        Stmt::Omp(dir, Some(body)) => match &dir.kind {
            DirKind::Critical(_) => {
                if let CriticalLowering::Lock = analyze_critical(body, class, syms, threshold) {
                    // Writes inside a lock-path critical go to the DSM.
                    let mut w = Vec::new();
                    all_scalar_writes(body, &mut w);
                    out.extend(w);
                }
            }
            DirKind::Atomic => { /* collective path, never forces */ }
            DirKind::Single => {
                if let SingleLowering::LockFlagBarrier =
                    analyze_single(body, class, syms, threshold)
                {
                    let mut w = Vec::new();
                    all_scalar_writes(body, &mut w);
                    out.extend(w);
                }
            }
            _ => forced_hlrc_writes(body, class, syms, threshold, out),
        },
        _ => {}
    }
}

fn expr_plain_writes(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Assign(_, lhs, rhs) => {
            if let Expr::Ident(n) = lhs.as_ref() {
                out.push(n.clone());
            }
            expr_plain_writes(rhs, out);
        }
        Expr::Binary(_, a, b) => {
            expr_plain_writes(a, out);
            expr_plain_writes(b, out);
        }
        Expr::Unary(_, a) => expr_plain_writes(a, out),
        Expr::Cond(c, a, b) => {
            expr_plain_writes(c, out);
            expr_plain_writes(a, out);
            expr_plain_writes(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_plain_writes(a, out);
            }
        }
        _ => {}
    }
}

fn all_scalar_writes(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Expr(e, _) => expr_plain_writes(e, out),
        Stmt::Block(ss) => {
            for s in ss {
                all_scalar_writes(s, out);
            }
        }
        Stmt::If(_, a, b) => {
            all_scalar_writes(a, out);
            if let Some(b) = b {
                all_scalar_writes(b, out);
            }
        }
        Stmt::While(_, b) => all_scalar_writes(b, out),
        Stmt::For { body, .. } => all_scalar_writes(body, out),
        Stmt::Omp(_, Some(b)) => all_scalar_writes(b, out),
        _ => {}
    }
}

fn alloc_shared(
    g: &mut MasterCtx,
    syms: &Symbols,
    storage: &HashMap<String, StorageKind>,
) -> RtResult<HashMap<String, Shared>> {
    let mut out = HashMap::new();
    // Deterministic allocation order.
    let mut names: Vec<&String> = storage.keys().collect();
    names.sort();
    for name in names {
        let kind = storage[name];
        let Some(d) = syms.get(name) else { continue };
        let slot = match kind {
            StorageKind::MasterLocal => continue,
            StorageKind::SharedArr => {
                if d.ty.is_float() {
                    Shared::ArrF(g.alloc_f64(d.total_elems()), d.dims.clone())
                } else {
                    Shared::ArrI(g.alloc_vec::<i64>(d.total_elems()), d.dims.clone())
                }
            }
            StorageKind::ScalarUpdate => Shared::ScalarUpd(g.alloc_scalar_f64(), d.ty.clone()),
            StorageKind::ScalarHlrc => Shared::ScalarHlrc(g.alloc_f64(1), d.ty.clone()),
        };
        out.insert(name.clone(), slot);
    }
    Ok(out)
}

/// One interpreter environment (master frame or a thread frame).
struct Env {
    prog: Arc<Program>,
    syms: Arc<Symbols>,
    shared: Arc<HashMap<String, Shared>>,
    io: Arc<Mutex<String>>,
    threshold: usize,
    scopes: Vec<HashMap<String, Local>>,
    in_region: bool,
    /// Classification of the enclosing region (thread frames only).
    region_class: Option<RegionClassification>,
    /// Coordination scalar for execute-once singles (thread frames only).
    single_dummy: Option<SharedScalar<f64>>,
    /// Scratch vector receiving lastprivate values (thread frames only).
    lp_scratch: Option<SharedVec<f64>>,
    /// Inside the body of a `single`/analyzable construct: stores to
    /// update-protocol scalars are sanctioned and go to the local copy.
    in_update_body: bool,
    /// Inside the body of an explicit `task`/`target` region: barriers and
    /// worksharing may not be closely nested there (conformance).
    in_task_body: bool,
    /// Source position of the statement currently executing (for oracle
    /// race reports).
    cur_span: Span,
    /// Whether `Interp::with_oracle` was requested for this run.
    oracle_enabled: bool,
    /// The per-region happens-before oracle (thread frames only).
    oracle: Option<Arc<Oracle>>,
    /// This frame's global thread number (thread frames only).
    oracle_tid: usize,
    /// Race reports accumulated across all regions of the run.
    races: Arc<Mutex<Vec<RaceReport>>>,
}

impl Env {
    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Remember the source position of the statement about to execute.
    fn at(&mut self, span: Span) {
        self.cur_span = span;
    }

    fn oracle_read(&self, name: &str, idx: usize, scalar: bool) {
        if let Some(o) = &self.oracle {
            o.read(self.oracle_tid, name, idx, scalar, self.cur_span);
        }
    }

    fn oracle_write(&self, name: &str, idx: usize, scalar: bool) {
        if let Some(o) = &self.oracle {
            o.write(self.oracle_tid, name, idx, scalar, self.cur_span);
        }
    }

    /// Model an atomic read-modify-write of scalar `var`: both accesses
    /// happen under a per-variable lock, mirroring the runtime's atomic
    /// update protocol.
    /// Oracle bookkeeping for an `atomic` update. Must stay indivisible:
    /// the runtime atomic that follows serializes the data, not this
    /// bookkeeping, so issuing acquire/read/write/release as separate calls
    /// lets two threads interleave and yields false races (see
    /// [`Oracle::atomic_rmw`]).
    fn oracle_rmw(&self, var: &str) {
        if let Some(o) = &self.oracle {
            o.atomic_rmw(self.oracle_tid, var, self.cur_span);
        }
    }

    /// Runtime barrier bracketed by the oracle's two-phase clock exchange.
    fn sync_barrier(&self, tc: &ThreadCtx) {
        match &self.oracle {
            Some(o) => {
                o.pre_barrier(self.oracle_tid);
                tc.barrier();
                o.post_barrier(self.oracle_tid);
            }
            None => tc.barrier(),
        }
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn local_mut(&mut self, name: &str) -> Option<&mut Local> {
        for sc in self.scopes.iter_mut().rev() {
            if let Some(l) = sc.get_mut(name) {
                return Some(l);
            }
        }
        None
    }

    fn has_local(&self, name: &str) -> bool {
        self.scopes.iter().rev().any(|s| s.contains_key(name))
    }

    fn insert_local(&mut self, name: &str, l: Local) {
        self.scopes
            .last_mut()
            .expect("scope stack")
            .insert(name.to_string(), l);
    }

    fn coerce(ty: &Type, v: Val) -> Val {
        match ty {
            Type::Double => Val::D(v.as_f64()),
            Type::Int | Type::Long => Val::I(v.as_i64()),
            Type::Void => v,
        }
    }

    /// Declare a variable in the current scope (unless it lives in shared
    /// storage, in which case only its initializer runs).
    fn declare(&mut self, exec: &mut Exec<'_>, d: &Decl) -> RtResult<()> {
        let is_shared = self.shared.contains_key(&d.name) && !self.in_region;
        if is_shared || (self.in_region && self.shared.contains_key(&d.name)) {
            // Shared storage already allocated; run the initializer.
            if let Some(init) = &d.init {
                let v = self.eval(exec, init)?;
                self.write_var(exec, &d.name, v)?;
            }
            return Ok(());
        }
        let l = if d.is_array() {
            if d.ty.is_float() {
                Local::ArrF(d.dims.clone(), vec![0.0; d.total_elems()])
            } else {
                Local::ArrI(d.dims.clone(), vec![0; d.total_elems()])
            }
        } else {
            let init = match &d.init {
                Some(e) => Self::coerce(&d.ty, self.eval(exec, e)?),
                None => Self::coerce(&d.ty, Val::I(0)),
            };
            Local::Scalar(d.ty.clone(), init)
        };
        self.insert_local(&d.name, l);
        // Arrays with initializers are not in the subset.
        Ok(())
    }

    // ---- variable access ---------------------------------------------------

    fn read_var(&mut self, exec: &mut Exec<'_>, name: &str) -> RtResult<Val> {
        if self.has_local(name) {
            let l = self.local_mut(name).expect("just checked");
            return match l {
                Local::Scalar(_, v) => Ok(v.clone()),
                _ => rte(format!("array {name} used as a scalar")),
            };
        }
        match self.shared.get(name) {
            Some(Shared::ScalarUpd(s, ty)) => {
                self.oracle_read(name, 0, true);
                let v = exec.scalar_get(s);
                Ok(Self::coerce(ty, Val::D(v)))
            }
            Some(Shared::ScalarHlrc(vec, ty)) => {
                self.oracle_read(name, 0, true);
                let v = exec.vec_get_f(vec, 0);
                Ok(Self::coerce(ty, Val::D(v)))
            }
            Some(_) => rte(format!("array {name} used as a scalar")),
            None => rte(format!("undefined variable {name}")),
        }
    }

    fn write_var(&mut self, exec: &mut Exec<'_>, name: &str, v: Val) -> RtResult<()> {
        if self.has_local(name) {
            let l = self.local_mut(name).expect("just checked");
            match l {
                Local::Scalar(ty, slot) => {
                    *slot = Self::coerce(ty, v);
                    Ok(())
                }
                _ => rte(format!("array {name} used as a scalar")),
            }
        } else {
            match (self.shared.get(name).cloned(), &mut *exec) {
                (Some(Shared::ScalarUpd(s, _)), Exec::Master(g)) => {
                    g.scalar_set_f64(&s, v.as_f64());
                    Ok(())
                }
                (Some(Shared::ScalarUpd(s, _)), Exec::Thread(tc)) => {
                    if self.in_update_body {
                        self.oracle_write(name, 0, true);
                        tc.scalar_set_in_construct(&s, v.as_f64());
                        Ok(())
                    } else {
                        rte(format!(
                            "unsynchronized write to update-protocol variable {name} inside a region \
                             (the translator routes such writes through atomic/critical/single)"
                        ))
                    }
                }
                (Some(Shared::ScalarHlrc(vec, _)), exec) => {
                    self.oracle_write(name, 0, true);
                    exec.vec_set_f(&vec, 0, v.as_f64());
                    Ok(())
                }
                (Some(_), _) => rte(format!("array {name} used as a scalar")),
                (None, _) => rte(format!("undefined variable {name}")),
            }
        }
    }

    fn flat_index(dims: &[usize], idx: &[i64]) -> RtResult<usize> {
        if dims.len() != idx.len() {
            return rte(format!(
                "array indexed with {} subscripts, has {} dims",
                idx.len(),
                dims.len()
            ));
        }
        let mut flat = 0usize;
        for (d, i) in dims.iter().zip(idx) {
            if *i < 0 || *i as usize >= *d {
                return rte(format!("index {i} out of bounds for dimension {d}"));
            }
            flat = flat * d + *i as usize;
        }
        Ok(flat)
    }

    fn read_elem(&mut self, exec: &mut Exec<'_>, name: &str, idx: &[i64]) -> RtResult<Val> {
        if self.has_local(name) {
            let l = self.local_mut(name).expect("just checked");
            return match l {
                Local::ArrF(dims, data) => {
                    let i = Self::flat_index(dims, idx)?;
                    Ok(Val::D(data[i]))
                }
                Local::ArrI(dims, data) => {
                    let i = Self::flat_index(dims, idx)?;
                    Ok(Val::I(data[i]))
                }
                _ => rte(format!("scalar {name} indexed")),
            };
        }
        match self.shared.get(name).cloned() {
            Some(Shared::ArrF(v, dims)) => {
                let i = Self::flat_index(&dims, idx)?;
                self.oracle_read(name, i, false);
                Ok(Val::D(exec.vec_get_f(&v, i)))
            }
            Some(Shared::ArrI(v, dims)) => {
                let i = Self::flat_index(&dims, idx)?;
                self.oracle_read(name, i, false);
                Ok(Val::I(exec.vec_get_i(&v, i)))
            }
            Some(_) => rte(format!("scalar {name} indexed")),
            None => rte(format!("undefined array {name}")),
        }
    }

    fn write_elem(&mut self, exec: &mut Exec<'_>, name: &str, idx: &[i64], v: Val) -> RtResult<()> {
        if self.has_local(name) {
            let l = self.local_mut(name).expect("just checked");
            return match l {
                Local::ArrF(dims, data) => {
                    let i = Self::flat_index(dims, idx)?;
                    data[i] = v.as_f64();
                    Ok(())
                }
                Local::ArrI(dims, data) => {
                    let i = Self::flat_index(dims, idx)?;
                    data[i] = v.as_i64();
                    Ok(())
                }
                _ => rte(format!("scalar {name} indexed")),
            };
        }
        match self.shared.get(name).cloned() {
            Some(Shared::ArrF(vec, dims)) => {
                let i = Self::flat_index(&dims, idx)?;
                self.oracle_write(name, i, false);
                exec.vec_set_f(&vec, i, v.as_f64());
                Ok(())
            }
            Some(Shared::ArrI(vec, dims)) => {
                let i = Self::flat_index(&dims, idx)?;
                self.oracle_write(name, i, false);
                exec.vec_set_i(&vec, i, v.as_i64());
                Ok(())
            }
            Some(_) => rte(format!("scalar {name} indexed")),
            None => rte(format!("undefined array {name}")),
        }
    }

    // ---- expressions ---------------------------------------------------------

    fn eval(&mut self, exec: &mut Exec<'_>, e: &Expr) -> RtResult<Val> {
        match e {
            Expr::Int(v) => Ok(Val::I(*v)),
            Expr::Float(v) => Ok(Val::D(*v)),
            Expr::Str(s) => Ok(Val::S(s.clone())),
            Expr::Ident(n) => self.read_var(exec, n),
            Expr::Index(n, idx) => {
                let mut flat = Vec::with_capacity(idx.len());
                for i in idx {
                    flat.push(self.eval(exec, i)?.as_i64());
                }
                self.read_elem(exec, n, &flat)
            }
            Expr::Unary(op, a) => {
                let v = self.eval(exec, a)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        Val::I(x) => Val::I(-x),
                        Val::D(x) => Val::D(-x),
                        Val::S(_) => return rte("cannot negate a string"),
                    },
                    UnOp::Not => Val::I(i64::from(!v.truthy())),
                })
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let av = self.eval(exec, a)?;
                        if !av.truthy() {
                            return Ok(Val::I(0));
                        }
                        let bv = self.eval(exec, b)?;
                        return Ok(Val::I(i64::from(bv.truthy())));
                    }
                    BinOp::Or => {
                        let av = self.eval(exec, a)?;
                        if av.truthy() {
                            return Ok(Val::I(1));
                        }
                        let bv = self.eval(exec, b)?;
                        return Ok(Val::I(i64::from(bv.truthy())));
                    }
                    _ => {}
                }
                let av = self.eval(exec, a)?;
                let bv = self.eval(exec, b)?;
                binop(*op, av, bv)
            }
            Expr::Cond(c, a, b) => {
                if self.eval(exec, c)?.truthy() {
                    self.eval(exec, a)
                } else {
                    self.eval(exec, b)
                }
            }
            Expr::Assign(op, lhs, rhs) => {
                let rv = self.eval(exec, rhs)?;
                let newv = match op {
                    None => rv,
                    Some(o) => {
                        let old = match lhs.as_ref() {
                            Expr::Ident(n) => self.read_var(exec, n)?,
                            Expr::Index(n, idx) => {
                                let mut flat = Vec::with_capacity(idx.len());
                                for i in idx {
                                    flat.push(self.eval(exec, i)?.as_i64());
                                }
                                self.read_elem(exec, n, &flat)?
                            }
                            _ => return rte("bad assignment target"),
                        };
                        binop(*o, old, rv)?
                    }
                };
                match lhs.as_ref() {
                    Expr::Ident(n) => self.write_var(exec, n, newv.clone())?,
                    Expr::Index(n, idx) => {
                        let mut flat = Vec::with_capacity(idx.len());
                        for i in idx {
                            flat.push(self.eval(exec, i)?.as_i64());
                        }
                        self.write_elem(exec, n, &flat, newv.clone())?;
                    }
                    _ => return rte("bad assignment target"),
                }
                Ok(newv)
            }
            Expr::Call(name, args) => self.call(exec, name, args),
        }
    }

    fn call(&mut self, exec: &mut Exec<'_>, name: &str, args: &[Expr]) -> RtResult<Val> {
        // Builtins.
        match name {
            "printf" => return self.printf(exec, args),
            "omp_get_thread_num" => return Ok(Val::I(exec.thread_num() as i64)),
            "omp_get_num_threads" => return Ok(Val::I(exec.num_threads() as i64)),
            "omp_get_wtime" => return Ok(Val::D(exec.wtime())),
            _ => {}
        }
        if is_math_builtin(name) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(exec, a)?.as_f64());
            }
            let v = match (name, vals.as_slice()) {
                ("sqrt", [x]) => x.sqrt(),
                ("fabs", [x]) => x.abs(),
                ("sin", [x]) => x.sin(),
                ("cos", [x]) => x.cos(),
                ("tan", [x]) => x.tan(),
                ("exp", [x]) => x.exp(),
                ("log", [x]) => x.ln(),
                ("floor", [x]) => x.floor(),
                ("ceil", [x]) => x.ceil(),
                ("pow", [x, y]) => x.powf(*y),
                ("fmin", [x, y]) => x.min(*y),
                ("fmax", [x, y]) => x.max(*y),
                _ => return rte(format!("bad arity for builtin {name}")),
            };
            return Ok(Val::D(v));
        }
        // User function.
        let Some(f) = self.prog.func(name) else {
            return rte(format!("call to undefined function {name}"));
        };
        let f = f.clone();
        if f.params.len() != args.len() {
            return rte(format!(
                "{name} expects {} arguments, got {}",
                f.params.len(),
                args.len()
            ));
        }
        if contains_omp(&f.body) {
            return rte(format!(
                "function {name} contains OpenMP directives; only main may \
                 (translator subset restriction)"
            ));
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(exec, a)?);
        }
        // New frame: only globals remain visible.
        let saved = std::mem::replace(&mut self.scopes, vec![HashMap::new()]);
        for (p, v) in f.params.iter().zip(vals) {
            self.insert_local(&p.name, Local::Scalar(p.ty.clone(), Self::coerce(&p.ty, v)));
        }
        let flow = self.exec_stmt(exec, &f.body)?;
        self.scopes = saved;
        match flow {
            Flow::Return(Some(v)) => Ok(Self::coerce(&f.ret, v)),
            _ => Ok(Val::I(0)),
        }
    }

    fn printf(&mut self, exec: &mut Exec<'_>, args: &[Expr]) -> RtResult<Val> {
        let Some(Expr::Str(fmt)) = args.first() else {
            return rte("printf needs a literal format string");
        };
        let fmt = fmt.clone();
        let mut vals = Vec::new();
        for a in &args[1..] {
            vals.push(self.eval(exec, a)?);
        }
        let text = format_c(&fmt, &vals)?;
        self.io.lock().push_str(&text);
        Ok(Val::I(text.len() as i64))
    }

    // ---- statements -----------------------------------------------------------

    /// Execute serial code, dispatching parallel regions (master only).
    fn exec_region_aware(&mut self, g: &mut MasterCtx, s: &Stmt) -> RtResult<Flow> {
        match s {
            Stmt::Omp(dir, body)
                if matches!(dir.kind, DirKind::Parallel | DirKind::ParallelFor) =>
            {
                self.run_parallel(g, dir, body.as_deref().expect("region body"))?;
                Ok(Flow::Normal)
            }
            Stmt::Block(ss) => {
                self.push_scope();
                for s in ss {
                    match self.exec_region_aware(g, s)? {
                        Flow::Normal => {}
                        other => {
                            self.pop_scope();
                            return Ok(other);
                        }
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            Stmt::If(c, a, b) => {
                let cond = {
                    let mut exec = Exec::Master(g);
                    self.eval(&mut exec, c)?
                };
                if cond.truthy() {
                    self.exec_region_aware(g, a)
                } else if let Some(b) = b {
                    self.exec_region_aware(g, b)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(c, b) => {
                loop {
                    let cond = {
                        let mut exec = Exec::Master(g);
                        self.eval(&mut exec, c)?
                    };
                    if !cond.truthy() {
                        break;
                    }
                    match self.exec_region_aware(g, b)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    let mut exec = Exec::Master(g);
                    self.eval(&mut exec, e)?;
                }
                loop {
                    if let Some(c) = cond {
                        let v = {
                            let mut exec = Exec::Master(g);
                            self.eval(&mut exec, c)?
                        };
                        if !v.truthy() {
                            break;
                        }
                    }
                    match self.exec_region_aware(g, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if let Some(e) = step {
                        let mut exec = Exec::Master(g);
                        self.eval(&mut exec, e)?;
                    }
                }
                Ok(Flow::Normal)
            }
            other => {
                let mut exec = Exec::Master(g);
                self.exec_stmt(&mut exec, other)
            }
        }
    }

    /// Execute a statement in straight-line (non-region-spawning) context.
    fn exec_stmt(&mut self, exec: &mut Exec<'_>, s: &Stmt) -> RtResult<Flow> {
        match s {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Decl(d) => {
                self.at(d.span);
                self.declare(exec, d)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e, span) => {
                self.at(*span);
                self.eval(exec, e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(ss) => {
                self.push_scope();
                for s in ss {
                    match self.exec_stmt(exec, s)? {
                        Flow::Normal => {}
                        other => {
                            self.pop_scope();
                            return Ok(other);
                        }
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            Stmt::If(c, a, b) => {
                if self.eval(exec, c)?.truthy() {
                    self.exec_stmt(exec, a)
                } else if let Some(b) = b {
                    self.exec_stmt(exec, b)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(c, b) => {
                while self.eval(exec, c)?.truthy() {
                    match self.exec_stmt(exec, b)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    self.eval(exec, e)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(exec, c)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(exec, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if let Some(e) = step {
                        self.eval(exec, e)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(exec, e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Omp(dir, body) => self.exec_directive(exec, dir, body.as_deref()),
        }
    }

    // ---- directives inside regions ---------------------------------------------

    fn exec_directive(
        &mut self,
        exec: &mut Exec<'_>,
        dir: &Directive,
        body: Option<&Stmt>,
    ) -> RtResult<Flow> {
        self.at(dir.span);
        // Tasking constructs are legal both at serial scope (a team of one)
        // and inside regions; handle them before requiring a thread frame.
        match &dir.kind {
            DirKind::Task | DirKind::Target => {
                return self.exec_task(exec, dir, body.expect("task body"));
            }
            DirKind::Taskwait => {
                // The interpreter executes tasks undeferred (a legal task
                // schedule), so all children are already complete here.
                return Ok(Flow::Normal);
            }
            _ => {}
        }
        let Exec::Thread(tc) = exec else {
            return rte(format!(
                "directive {:?} outside a parallel region",
                dir.kind
            ));
        };
        let tc: &ThreadCtx = tc;
        if self.in_task_body
            && matches!(
                dir.kind,
                DirKind::Barrier | DirKind::For | DirKind::Single | DirKind::Master
            )
        {
            return rte(format!(
                "{:?} may not be closely nested inside a task region",
                dir.kind
            ));
        }
        match &dir.kind {
            DirKind::Parallel | DirKind::ParallelFor => {
                rte("nested parallel regions are not supported")
            }
            DirKind::Task | DirKind::Taskwait | DirKind::Target => {
                unreachable!("handled above")
            }
            DirKind::Barrier => {
                self.sync_barrier(tc);
                Ok(Flow::Normal)
            }
            DirKind::Master => {
                if tc.thread_num() == 0 {
                    let mut exec = Exec::Thread(tc);
                    self.exec_stmt(&mut exec, body.expect("master body"))?;
                }
                Ok(Flow::Normal)
            }
            DirKind::For => {
                let body = body.expect("loop body");
                self.worksharing_loop(tc, dir, body)?;
                Ok(Flow::Normal)
            }
            DirKind::Critical(cname) => {
                let body = body.expect("critical body");
                let class = self.current_class()?;
                match analyze_critical(body, &class, &self.syms, self.threshold) {
                    CriticalLowering::Collective(updates)
                        if updates.iter().all(|u| {
                            matches!(self.shared.get(&u.target), Some(Shared::ScalarUpd(..)))
                        }) =>
                    {
                        for u in updates {
                            let mut exec = Exec::Thread(tc);
                            let operand = self.eval(&mut exec, &u.operand)?.as_f64();
                            let Some(Shared::ScalarUpd(s, _)) = self.shared.get(&u.target) else {
                                unreachable!("checked above");
                            };
                            self.oracle_rmw(&u.target);
                            tc.atomic_f64(s, red_to_mpi(u.op), operand);
                        }
                        Ok(Flow::Normal)
                    }
                    _ => {
                        // Lock fallback (hierarchical).
                        let id = critical_lock_id(cname.as_deref());
                        let key = format!("critical:{}", cname.as_deref().unwrap_or("<anonymous>"));
                        tc.critical(id, |tc2| {
                            if let Some(o) = &self.oracle {
                                o.lock_acquire(self.oracle_tid, &key);
                            }
                            let mut exec = Exec::Thread(tc2);
                            let r = self.exec_stmt(&mut exec, body);
                            if let Some(o) = &self.oracle {
                                o.lock_release(self.oracle_tid, &key);
                            }
                            r
                        })
                    }
                }
            }
            DirKind::Atomic => {
                let Some(Stmt::Expr(e, _)) = body else {
                    return rte("atomic body must be an expression statement");
                };
                let Some(u) = crate::analysis::as_scalar_update(e) else {
                    return rte("atomic body must be a scalar update");
                };
                match self.shared.get(&u.target).cloned() {
                    Some(Shared::ScalarUpd(s, _)) => {
                        let mut exec = Exec::Thread(tc);
                        let operand = self.eval(&mut exec, &u.operand)?.as_f64();
                        self.oracle_rmw(&u.target);
                        tc.atomic_f64(&s, red_to_mpi(u.op), operand);
                        Ok(Flow::Normal)
                    }
                    _ => {
                        // HLRC-stored target: lock path.
                        let id = critical_lock_id(Some(&u.target));
                        let key = format!("atomic:{}", u.target);
                        let body = body.expect("atomic body");
                        tc.critical(id, |tc2| {
                            if let Some(o) = &self.oracle {
                                o.lock_acquire(self.oracle_tid, &key);
                            }
                            let mut exec = Exec::Thread(tc2);
                            let r = self.exec_stmt(&mut exec, body);
                            if let Some(o) = &self.oracle {
                                o.lock_release(self.oracle_tid, &key);
                            }
                            r
                        })
                    }
                }
            }
            DirKind::Single => {
                let body = body.expect("single body");
                let class = self.current_class()?;
                let lowering = analyze_single(body, &class, &self.syms, self.threshold);
                let upd_targets: Option<Vec<SharedScalar<f64>>> = match &lowering {
                    SingleLowering::Broadcast(targets) => targets
                        .iter()
                        .map(|t| match self.shared.get(t) {
                            Some(Shared::ScalarUpd(s, _)) => Some(*s),
                            _ => None,
                        })
                        .collect(),
                    SingleLowering::LockFlagBarrier => None,
                };
                match upd_targets {
                    Some(scalars) => {
                        // Broadcast path: the body runs on the earliest
                        // thread of node 0; targets propagate by bcast.
                        let targets: Vec<String> = match &lowering {
                            SingleLowering::Broadcast(t) => t.clone(),
                            _ => unreachable!(),
                        };
                        let shared = Arc::clone(&self.shared);
                        let mut err = None;
                        tc.single_update(&scalars, |tc2| {
                            let mut exec = Exec::Thread(tc2);
                            self.in_update_body = true;
                            let r = self.exec_stmt(&mut exec, body);
                            self.in_update_body = false;
                            if let Some(o) = &self.oracle {
                                o.single_done(self.oracle_tid);
                            }
                            if let Err(e) = r {
                                err = Some(e);
                                return vec![0.0; targets.len()];
                            }
                            // Read back the values the body stored.
                            targets
                                .iter()
                                .map(|t| match shared.get(t) {
                                    Some(Shared::ScalarUpd(s, _)) => tc2.scalar_get(s),
                                    _ => 0.0,
                                })
                                .collect()
                        });
                        if let Some(o) = &self.oracle {
                            o.single_join(self.oracle_tid);
                        }
                        if let Some(e) = err {
                            return Err(e);
                        }
                        Ok(Flow::Normal)
                    }
                    None => {
                        // Execute-once + barrier (targets live on HLRC).
                        let dummy = self.single_dummy()?;
                        let mut err = None;
                        tc.single_f64(&dummy, |tc2| {
                            let mut exec = Exec::Thread(tc2);
                            self.in_update_body = true;
                            let r = self.exec_stmt(&mut exec, body);
                            self.in_update_body = false;
                            if let Some(o) = &self.oracle {
                                o.single_done(self.oracle_tid);
                            }
                            if let Err(e) = r {
                                err = Some(e);
                            }
                            0.0
                        });
                        if let Some(o) = &self.oracle {
                            o.single_join(self.oracle_tid);
                        }
                        self.sync_barrier(tc);
                        if let Some(e) = err {
                            return Err(e);
                        }
                        Ok(Flow::Normal)
                    }
                }
            }
        }
    }

    /// Execute a `task` or `target` body.
    ///
    /// The interpreter runs tasks **undeferred** — a legal task schedule —
    /// at their generating thread; the distributed work-stealing schedule
    /// is exercised by the runtime-API kernels instead. `depend` edges are
    /// modelled for the happens-before oracle as synthetic per-variable
    /// locks, which is exactly the ordering the scheduler's dependency
    /// graph guarantees: two tasks naming a common depend variable are
    /// ordered, everything else runs concurrently. `map` clauses only
    /// validate that the named variables exist (data movement is the DSM's
    /// job); `device(n)` evaluates its expression and checks the range.
    fn exec_task(&mut self, exec: &mut Exec<'_>, dir: &Directive, body: &Stmt) -> RtResult<Flow> {
        for (_, var) in dir.maps() {
            if !self.has_local(&var)
                && !self.shared.contains_key(&var)
                && self.syms.get(&var).is_none()
            {
                return rte(format!("map clause names undefined variable {var}"));
            }
        }
        if dir.kind == DirKind::Target {
            if let Some(e) = dir.device() {
                let dev = self.eval(exec, e)?.as_i64();
                let nn = match exec {
                    Exec::Master(g) => g.nodes(),
                    Exec::Thread(tc) => tc.num_nodes(),
                };
                if dev < 0 || dev as usize >= nn {
                    return rte(format!("device({dev}) out of range for {nn} nodes"));
                }
            }
        }
        let mut deps = dir.depends();
        // Canonical (sorted, deduped) acquisition order: nested per-variable
        // locks can never deadlock between tasks naming overlapping sets.
        deps.sort_by(|a, b| a.1.cmp(&b.1));
        deps.dedup_by(|a, b| a.1 == b.1);
        let vars: Vec<String> = deps.into_iter().map(|(_, v)| v).collect();
        self.task_body_locked(exec, &vars, body)
    }

    /// Execute a task body holding one *real* interpreter lock per `depend`
    /// variable. The distributed scheduler orders dep-related tasks through
    /// its dependency graph; the undeferred interpreter gets the equivalent
    /// mutual exclusion from cluster locks (tasks naming a common variable
    /// serialize, everything else overlaps), and the oracle sees the
    /// matching acquire/release happens-before edges. Annotations alone are
    /// not enough: without the lock, two bodies can physically overlap and
    /// the oracle would (correctly) report the overlap as a race.
    fn task_body_locked(
        &mut self,
        exec: &mut Exec<'_>,
        vars: &[String],
        body: &Stmt,
    ) -> RtResult<Flow> {
        let Some((var, rest)) = vars.split_first() else {
            let was = self.in_task_body;
            self.in_task_body = true;
            self.push_scope();
            let r = self.exec_stmt(exec, body);
            self.pop_scope();
            self.in_task_body = was;
            r?;
            return Ok(Flow::Normal);
        };
        let key = format!("dep:{var}");
        match exec {
            Exec::Thread(tc) => {
                let tc: &ThreadCtx = tc;
                tc.critical(critical_lock_id(Some(&key)), |tc2| {
                    if let Some(o) = &self.oracle {
                        o.lock_acquire(self.oracle_tid, &key);
                    }
                    let mut exec2 = Exec::Thread(tc2);
                    let r = self.task_body_locked(&mut exec2, rest, body);
                    if let Some(o) = &self.oracle {
                        o.lock_release(self.oracle_tid, &key);
                    }
                    r
                })
            }
            // Serial scope: a team of one, so the annotation alone is exact.
            Exec::Master(_) => {
                if let Some(o) = &self.oracle {
                    o.lock_acquire(self.oracle_tid, &key);
                }
                let r = self.task_body_locked(exec, rest, body);
                if let Some(o) = &self.oracle {
                    o.lock_release(self.oracle_tid, &key);
                }
                r
            }
        }
    }

    fn current_class(&self) -> RtResult<RegionClassification> {
        match &self.region_class {
            Some(c) => Ok(c.clone()),
            None => rte("directive outside a region context"),
        }
    }

    fn single_dummy(&self) -> RtResult<SharedScalar<f64>> {
        match &self.single_dummy {
            Some(s) => Ok(*s),
            None => rte("runtime scratch missing"),
        }
    }

    // ---- parallel region execution -------------------------------------------

    fn run_parallel(&mut self, g: &mut MasterCtx, dir: &Directive, body: &Stmt) -> RtResult<()> {
        let class = classify_region(dir, body, &self.syms);
        // Firstprivate snapshots (captured by value at fork, §4.1).
        let mut fp: HashMap<String, Val> = HashMap::new();
        for name in dir.firstprivates() {
            let mut exec = Exec::Master(g);
            fp.insert(name.clone(), self.read_var(&mut exec, &name)?);
        }
        // Reduction setup.
        let reductions = dir.reductions();
        // Lastprivate scratch.
        let lastprivates = dir.lastprivates();
        let lp_scratch = if lastprivates.is_empty() {
            None
        } else {
            Some(g.alloc_f64(lastprivates.len()))
        };
        let single_dummy = g.alloc_scalar_f64();

        let shared = Arc::clone(&self.shared);
        let syms = Arc::clone(&self.syms);
        let prog = Arc::clone(&self.prog);
        let io = Arc::clone(&self.io);
        let threshold = self.threshold;
        let body = Arc::new(body.clone());
        let dir = Arc::new(dir.clone());
        let class_arc = Arc::new(class);
        let fp = Arc::new(fp);
        let reductions_arc = Arc::new(reductions.clone());
        let lastprivates_arc = Arc::new(lastprivates.clone());
        // A fresh oracle per region: the fork provides happens-before from
        // all earlier serial code, so shadow state starts empty.
        let oracle = self.oracle_enabled.then(|| Arc::new(Oracle::new()));
        let oracle_tl = oracle.clone();
        let races = Arc::clone(&self.races);

        let result: RtResult<Vec<f64>> = g.parallel(move |tc| {
            let mut env = Env {
                prog: Arc::clone(&prog),
                syms: Arc::clone(&syms),
                shared: Arc::clone(&shared),
                io: Arc::clone(&io),
                threshold,
                scopes: vec![HashMap::new()],
                in_region: true,
                region_class: Some((*class_arc).clone()),
                single_dummy: Some(single_dummy),
                lp_scratch,
                in_update_body: false,
                in_task_body: false,
                cur_span: Span::default(),
                oracle_enabled: oracle_tl.is_some(),
                oracle: oracle_tl.clone(),
                oracle_tid: tc.thread_num(),
                races: Arc::clone(&races),
            };
            // Private variables: loop vars and clause-private names get
            // fresh locals; firstprivate get snapshots; reduction vars get
            // identity-initialized locals.
            let mut names: Vec<(&String, &VarScope)> = class_arc.scopes.iter().collect();
            names.sort_by_key(|(n, _)| (*n).clone());
            for (name, scope) in names {
                match scope {
                    VarScope::Private | VarScope::LastPrivate => {
                        if let Some(d) = syms.get(name) {
                            let l = if d.is_array() {
                                if d.ty.is_float() {
                                    Local::ArrF(d.dims.clone(), vec![0.0; d.total_elems()])
                                } else {
                                    Local::ArrI(d.dims.clone(), vec![0; d.total_elems()])
                                }
                            } else {
                                Local::Scalar(d.ty.clone(), Env::coerce(&d.ty, Val::I(0)))
                            };
                            env.insert_local(name, l);
                        }
                    }
                    VarScope::FirstPrivate => {
                        let v = fp.get(name).cloned().unwrap_or(Val::I(0));
                        let ty = syms.get(name).map(|d| d.ty.clone()).unwrap_or(Type::Double);
                        env.insert_local(name, Local::Scalar(ty.clone(), Env::coerce(&ty, v)));
                    }
                    VarScope::Reduction(op) => {
                        let ty = syms.get(name).map(|d| d.ty.clone()).unwrap_or(Type::Double);
                        env.insert_local(name, Local::Scalar(ty, Val::D(op.identity_f64())));
                    }
                    VarScope::Shared => {}
                }
            }

            // Execute the region body.
            let exec_result: RtResult<()> = (|| {
                match dir.kind {
                    DirKind::ParallelFor => {
                        env.worksharing_loop(tc, &dir, &body)?;
                    }
                    _ => {
                        let mut exec = Exec::Thread(tc);
                        env.exec_stmt(&mut exec, &body)?;
                    }
                }
                Ok(())
            })();
            exec_result?;

            // Reduction epilogue: combine thread contributions; every
            // thread returns the totals (lead's return reaches the master).
            let mut totals = Vec::new();
            for (op, name) in reductions_arc.iter() {
                let local = match env.local_mut(name) {
                    Some(Local::Scalar(_, v)) => v.as_f64(),
                    _ => 0.0,
                };
                totals.push(tc.reduce_f64(red_to_mpi(*op), local));
            }
            // Lastprivate: the owner of the final iteration stored into the
            // scratch during the loop; nothing more to do here.
            let _ = &lastprivates_arc;
            Ok(totals)
        });
        let totals = result?;

        // Region join: collect the oracle's findings for this region.
        if let Some(o) = &oracle {
            self.races.lock().extend(o.drain());
        }

        // Fold reduction totals into the master's variables.
        for ((op, name), total) in reductions.iter().zip(totals) {
            let mut exec = Exec::Master(g);
            let old = self.read_var(&mut exec, name)?.as_f64();
            let new = red_to_mpi(*op).fold_f64(old, total);
            self.write_var(&mut exec, name, Val::D(new))?;
        }
        // Lastprivate writeback.
        if let Some(scratch) = lp_scratch {
            for (k, name) in lastprivates.iter().enumerate() {
                let v = g.get(&scratch, k);
                let mut exec = Exec::Master(g);
                self.write_var(&mut exec, name, Val::D(v))?;
            }
        }
        Ok(())
    }

    /// Execute a work-shared canonical loop on this thread.
    fn worksharing_loop(&mut self, tc: &ThreadCtx, dir: &Directive, body: &Stmt) -> RtResult<()> {
        let Some(cl) = loop_of(body) else {
            return rte("work-shared loop is not in canonical form");
        };
        let (lo, hi) = {
            let mut exec = Exec::Thread(tc);
            let lo = self.eval(&mut exec, &cl.lo)?.as_i64();
            let hi = self.eval(&mut exec, &cl.hi)?.as_i64();
            (lo, hi)
        };
        let count = if hi > lo {
            ((hi - lo) as usize).div_ceil(cl.step as usize)
        } else {
            0
        };
        let lastprivates = dir.lastprivates();
        let last_iter_val = if count > 0 {
            Some(lo + ((count - 1) as i64) * cl.step)
        } else {
            None
        };

        let run_iter = |env: &mut Env, k: usize| -> RtResult<()> {
            let i = lo + (k as i64) * cl.step;
            let mut exec = Exec::Thread(tc);
            env.write_var(&mut exec, &cl.var, Val::I(i))?;
            env.exec_stmt(&mut exec, &cl.body)?;
            if Some(i) == last_iter_val && !lastprivates.is_empty() {
                // Owner of the last iteration publishes lastprivate values.
                if let Some(scratch) = env.lp_scratch {
                    for (slot, name) in lastprivates.iter().enumerate() {
                        let v = env.read_var(&mut exec, name)?.as_f64();
                        tc.set(&scratch, slot, v);
                    }
                }
            }
            Ok(())
        };

        // OpenMP 1.0 §2.4.1: the control variable of a work-shared loop is
        // implicitly private to each thread, even when it is shared in the
        // enclosing region. Shadow it with a thread-local for the loop.
        self.push_scope();
        self.insert_local(&cl.var, Local::Scalar(Type::Long, Val::I(lo)));
        let schedule = |env: &mut Env| -> RtResult<bool> {
            match dir.schedule() {
                Sched::Static => {
                    for k in tc.for_static(0..count) {
                        run_iter(env, k)?;
                    }
                }
                Sched::StaticChunk(c) => {
                    for chunk in tc.for_static_chunks(0..count, c) {
                        for k in chunk {
                            run_iter(env, k)?;
                        }
                    }
                }
                Sched::Dynamic(c) => {
                    let mut err = None;
                    tc.for_dynamic_nowait(0..count, c, |r| {
                        for k in r {
                            if err.is_some() {
                                return;
                            }
                            if let Err(e) = run_iter(env, k) {
                                err = Some(e);
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
                Sched::Guided(c) => {
                    let mut err = None;
                    // for_guided carries its own implicit barrier.
                    tc.for_guided(0..count, c, |r| {
                        for k in r {
                            if err.is_some() {
                                return;
                            }
                            if let Err(e) = run_iter(env, k) {
                                err = Some(e);
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    return Ok(true);
                }
            }
            Ok(false)
        };
        let guided = schedule(self);
        self.pop_scope();
        if guided? {
            // The guided scheduler carries its own runtime barrier that
            // the oracle cannot bracket; add an oracle-visible barrier
            // so the clock exchange matches the runtime join. Timing
            // under the oracle differs by one barrier round-trip.
            if self.oracle.is_some() {
                self.sync_barrier(tc);
            }
            return Ok(());
        }
        if !dir.nowait() {
            self.sync_barrier(tc);
        }
        Ok(())
    }
}

fn critical_lock_id(name: Option<&str>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.unwrap_or("<anonymous>").hash(&mut h);
    // Stay inside the user lock-id space.
    h.finish() % (1 << 30)
}

fn red_to_mpi(op: RedOp) -> ReduceOp {
    match op {
        RedOp::Add => ReduceOp::Sum,
        RedOp::Mul => ReduceOp::Prod,
        RedOp::Min => ReduceOp::Min,
        RedOp::Max => ReduceOp::Max,
    }
}

fn contains_omp(s: &Stmt) -> bool {
    match s {
        Stmt::Omp(..) => true,
        Stmt::Block(ss) => ss.iter().any(contains_omp),
        Stmt::If(_, a, b) => {
            contains_omp(a) || b.as_ref().map(|b| contains_omp(b)).unwrap_or(false)
        }
        Stmt::While(_, b) => contains_omp(b),
        Stmt::For { body, .. } => contains_omp(body),
        _ => false,
    }
}

fn binop(op: BinOp, a: Val, b: Val) -> RtResult<Val> {
    use BinOp::*;
    let float = matches!(a, Val::D(_)) || matches!(b, Val::D(_));
    Ok(match op {
        Add | Sub | Mul | Div => {
            if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                Val::D(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                })
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                Val::I(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return rte("integer division by zero");
                        }
                        x / y
                    }
                    _ => unreachable!(),
                })
            }
        }
        Rem => {
            let (x, y) = (a.as_i64(), b.as_i64());
            if y == 0 {
                return rte("modulo by zero");
            }
            Val::I(x % y)
        }
        Eq | Ne | Lt | Gt | Le | Ge => {
            let r = if float {
                let (x, y) = (a.as_f64(), b.as_f64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Gt => x > y,
                    Le => x <= y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_i64(), b.as_i64());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Gt => x > y,
                    Le => x <= y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            Val::I(i64::from(r))
        }
        And | Or => unreachable!("handled by short-circuit in eval"),
    })
}

/// A small C-style formatter supporting %d %ld %f %e %g %s %% with
/// optional width/precision on the float forms.
fn format_c(fmt: &str, args: &[Val]) -> RtResult<String> {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        if chars.peek() == Some(&'%') {
            chars.next();
            out.push('%');
            continue;
        }
        // Parse width[.precision] flags (digits and '.').
        let mut spec = String::new();
        while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || *c == '.' || *c == '-') {
            spec.push(chars.next().expect("peeked"));
        }
        // Skip length modifiers.
        while matches!(chars.peek(), Some('l') | Some('h')) {
            chars.next();
        }
        let Some(conv) = chars.next() else {
            return rte("dangling % in format string");
        };
        let arg = args.get(next).cloned().unwrap_or(Val::I(0));
        next += 1;
        let prec: Option<usize> = spec.split('.').nth(1).and_then(|p| p.parse().ok());
        match conv {
            'd' | 'i' | 'u' => out.push_str(&arg.as_i64().to_string()),
            'f' | 'F' => {
                let p = prec.unwrap_or(6);
                out.push_str(&format!("{:.*}", p, arg.as_f64()));
            }
            'e' | 'E' => {
                let p = prec.unwrap_or(6);
                out.push_str(&format!("{:.*e}", p, arg.as_f64()));
            }
            'g' | 'G' => {
                out.push_str(&format!("{}", arg.as_f64()));
            }
            's' => match arg {
                Val::S(s) => out.push_str(&s),
                other => out.push_str(&format!("{other:?}")),
            },
            other => return rte(format!("unsupported conversion %{other}")),
        }
    }
    Ok(out)
}
