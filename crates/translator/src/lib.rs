//! # parade-translator — the ParADE OpenMP translator
//!
//! The bridge between the OpenMP abstraction and the hybrid programming
//! interfaces of the ParADE runtime (paper §4). The original modifies the
//! Omni compiler's C-front; this reproduction implements a self-contained
//! pipeline over a mini-C subset:
//!
//! 1. [`token`]/[`parser`] — lex and parse C with `#pragma omp` directives
//!    (OpenMP 1.0 subset: `parallel`, `for`, `parallel for`, `critical`,
//!    `atomic`, `single`, `master`, `barrier`; clauses `private`, `shared`,
//!    `firstprivate`, `lastprivate`, `reduction`, `schedule`, `nowait`,
//!    `num_threads`);
//! 2. [`analysis`] — variable scope classification (default shared) and the
//!    hybrid-protocol decisions: lexical analyzability and the 256-byte
//!    small-data threshold decide collective vs lock lowering per directive
//!    (§4.2, §5.2.1);
//! 3. [`emit`] — source-to-source backend producing translated C against
//!    the ParADE API or against a conventional SDSM API (the two sides of
//!    Figures 2 and 3);
//! 4. [`interp`] — an interpreter that executes the lowered program
//!    directly on the `parade-core` runtime, so translated OpenMP programs
//!    run end-to-end on the simulated cluster.
//!
//! The `paradec` binary wraps all of this:
//!
//! ```text
//! paradec translate examples/jacobi.c --mode parade
//! paradec run examples/jacobi.c --nodes 4 --threads 2
//! ```

pub mod analysis;
pub mod ast;
pub mod emit;
pub mod interp;
pub mod oracle;
pub mod parser;
pub mod token;

pub use analysis::DEFAULT_SMALL_THRESHOLD;
pub use emit::{translate, translate_default, EmitMode};
pub use interp::{Interp, RunOutput, RuntimeError};
pub use oracle::{RaceKind, RaceReport};
pub use parser::parse;
pub use token::{ParseError, Span};

#[cfg(test)]
mod interp_tests;
