//! Lexer for the mini-C + OpenMP subset.
//!
//! The real ParADE translator reuses Omni's C-front on preprocessed C; this
//! reproduction lexes a self-contained C subset directly. `#pragma omp`
//! lines are tokenized in-line and terminated by a [`Tok::PragmaEnd`]
//! marker (pragmas are line-oriented); `#include` lines are preserved
//! verbatim for the emitter.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // Keywords.
    KwInt,
    KwLong,
    KwDouble,
    KwFloat,
    KwVoid,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwStatic,
    KwConst,
    KwStruct,
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    // Preprocessor-ish.
    PragmaOmp,
    PragmaEnd,
    Include(String),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A half-open source location: 1-based line and column of the first
/// character of a token/statement. Carried through the AST so the static
/// analyzer (`parade-check`) and the interpreter's race oracle can anchor
/// diagnostics at the offending source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl Span {
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// A span that only knows its line (pre-span AST nodes, synthesized
    /// statements).
    pub fn at_line(line: usize) -> Span {
        Span { line, col: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "{}", self.line)
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// A token with its source span (for error messages and AST spans).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

impl Spanned {
    pub fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

/// Lexing / parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

pub fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    /// Byte offset of the start of the current line (for column tracking).
    line_start: usize,
    /// Inside a `#pragma` line: newline ends the pragma.
    in_pragma: bool,
    out: Vec<Spanned>,
}

/// Tokenize a source file.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        in_pragma: false,
        out: Vec::new(),
    };
    lx.run()?;
    Ok(lx.out)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        c
    }

    /// 1-based column of the current position.
    fn col(&self) -> usize {
        self.pos - self.line_start + 1
    }

    fn push(&mut self, tok: Tok) {
        self.push_at(tok, self.col());
    }

    fn push_at(&mut self, tok: Tok, col: usize) {
        self.out.push(Spanned {
            tok,
            line: self.line,
            col,
        });
    }

    fn run(&mut self) -> Result<(), ParseError> {
        while self.pos < self.src.len() {
            let c = self.peek();
            match c {
                b'\n' => {
                    if self.in_pragma {
                        self.push(Tok::PragmaEnd);
                        self.in_pragma = false;
                    }
                    self.bump();
                }
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'\\' if self.in_pragma && self.peek2() == b'\n' => {
                    // Pragma line continuation.
                    self.bump();
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return err(self.line, "unterminated block comment");
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'#' => self.directive()?,
                b'"' => self.string()?,
                b'0'..=b'9' => self.number()?,
                b'.' if self.peek2().is_ascii_digit() => self.number()?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => self.operator()?,
            }
        }
        if self.in_pragma {
            self.push(Tok::PragmaEnd);
        }
        self.push(Tok::Eof);
        Ok(())
    }

    fn directive(&mut self) -> Result<(), ParseError> {
        let start_line = self.line;
        let start_col = self.col();
        let line_start = self.pos;
        // Read the directive word.
        self.bump(); // '#'
        while self.peek() == b' ' {
            self.bump();
        }
        let mut word = String::new();
        while self.peek().is_ascii_alphabetic() {
            word.push(self.bump() as char);
        }
        match word.as_str() {
            "pragma" => {
                while self.peek() == b' ' {
                    self.bump();
                }
                let mut what = String::new();
                while self.peek().is_ascii_alphabetic() {
                    what.push(self.bump() as char);
                }
                if what == "omp" {
                    self.push_at(Tok::PragmaOmp, start_col);
                    self.in_pragma = true;
                    Ok(())
                } else {
                    // Unknown pragma: skip the line.
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                    Ok(())
                }
            }
            "include" => {
                let mut text = String::new();
                while self.pos < self.src.len() && self.peek() != b'\n' {
                    text.push(self.bump() as char);
                }
                self.push_at(Tok::Include(text.trim().to_string()), start_col);
                Ok(())
            }
            _ => {
                let _ = line_start;
                err(
                    start_line,
                    format!("unsupported preprocessor directive #{word}"),
                )
            }
        }
    }

    fn string(&mut self) -> Result<(), ParseError> {
        let line = self.line;
        let col = self.col();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                0 => return err(line, "unterminated string literal"),
                b'"' => break,
                b'\\' => {
                    let e = self.bump();
                    s.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'0' => '\0',
                        other => other as char,
                    });
                }
                c => s.push(c as char),
            }
        }
        self.push_at(Tok::Str(s), col);
        Ok(())
    }

    fn number(&mut self) -> Result<(), ParseError> {
        let line = self.line;
        let col = self.col();
        let start = self.pos;
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.push_at(Tok::Float(v), col),
                Err(_) => return err(line, format!("bad float literal {text}")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push_at(Tok::Int(v), col),
                Err(_) => return err(line, format!("bad integer literal {text}")),
            }
        }
        Ok(())
    }

    fn ident(&mut self) {
        let col = self.col();
        let start = self.pos;
        while {
            let c = self.peek();
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if self.in_pragma {
            // Pragma words ("for", "if", …) are directive/clause names,
            // not C keywords.
            self.push_at(Tok::Ident(text.to_string()), col);
            return;
        }
        let tok = match text {
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "double" => Tok::KwDouble,
            "float" => Tok::KwFloat,
            "void" => Tok::KwVoid,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "for" => Tok::KwFor,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "static" => Tok::KwStatic,
            "const" => Tok::KwConst,
            "struct" => Tok::KwStruct,
            _ => Tok::Ident(text.to_string()),
        };
        self.push_at(tok, col);
    }

    fn operator(&mut self) -> Result<(), ParseError> {
        let line = self.line;
        let col = self.col();
        let c = self.bump();
        let two = |lx: &mut Lexer, next: u8, a: Tok, b: Tok| {
            if lx.peek() == next {
                lx.bump();
                a
            } else {
                b
            }
        };
        let tok = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b':' => Tok::Colon,
            b'?' => Tok::Question,
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    Tok::PlusPlus
                } else {
                    two(self, b'=', Tok::PlusAssign, Tok::Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.bump();
                    Tok::MinusMinus
                } else {
                    two(self, b'=', Tok::MinusAssign, Tok::Minus)
                }
            }
            b'*' => two(self, b'=', Tok::StarAssign, Tok::Star),
            b'/' => two(self, b'=', Tok::SlashAssign, Tok::Slash),
            b'%' => Tok::Percent,
            b'=' => two(self, b'=', Tok::Eq, Tok::Assign),
            b'!' => two(self, b'=', Tok::Ne, Tok::Not),
            b'<' => two(self, b'=', Tok::Le, Tok::Lt),
            b'>' => two(self, b'=', Tok::Ge, Tok::Gt),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    Tok::AndAnd
                } else {
                    Tok::Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    Tok::OrOr
                } else {
                    return err(line, "bitwise | unsupported");
                }
            }
            other => return err(line, format!("unexpected character {:?}", other as char)),
        };
        self.push_at(tok, col);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lex_simple_function() {
        let t = toks("int main() { return 0; }");
        assert_eq!(
            t,
            vec![
                Tok::KwInt,
                Tok::Ident("main".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::KwReturn,
                Tok::Int(0),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_pragma_line_terminates() {
        let t = toks("#pragma omp parallel for\nx = 1;");
        assert_eq!(t[0], Tok::PragmaOmp);
        assert_eq!(t[1], Tok::Ident("parallel".into()));
        assert_eq!(t[2], Tok::Ident("for".into()));
        assert_eq!(t[3], Tok::PragmaEnd);
        assert_eq!(t[4], Tok::Ident("x".into()));
    }

    #[test]
    fn lex_pragma_continuation() {
        let t = toks("#pragma omp parallel \\\n  private(i)\ny = 2;");
        let end = t.iter().position(|x| *x == Tok::PragmaEnd).unwrap();
        assert!(t[..end].contains(&Tok::Ident("private".into())));
        assert_eq!(t[end + 1], Tok::Ident("y".into()));
    }

    #[test]
    fn lex_numbers_and_floats() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("3.5")[0], Tok::Float(3.5));
        assert_eq!(toks("1e-3")[0], Tok::Float(1e-3));
        assert_eq!(toks(".25")[0], Tok::Float(0.25));
    }

    #[test]
    fn lex_operators() {
        let t = toks("a += b == c && d <= e++");
        assert!(t.contains(&Tok::PlusAssign));
        assert!(t.contains(&Tok::Eq));
        assert!(t.contains(&Tok::AndAnd));
        assert!(t.contains(&Tok::Le));
        assert!(t.contains(&Tok::PlusPlus));
    }

    #[test]
    fn lex_comments_and_strings() {
        let t = toks("// line\nprintf(\"a\\n\"); /* block\n comment */ x");
        assert_eq!(t[0], Tok::Ident("printf".into()));
        assert_eq!(t[2], Tok::Str("a\n".into()));
        assert!(t.contains(&Tok::Ident("x".into())));
    }

    #[test]
    fn lex_include_preserved() {
        let t = toks("#include <stdio.h>\nint x;");
        assert_eq!(t[0], Tok::Include("<stdio.h>".into()));
    }

    #[test]
    fn lex_error_reports_line() {
        let e = lex("int x;\n$").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
