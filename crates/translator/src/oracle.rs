//! Happens-before race oracle for the interpreter.
//!
//! A FastTrack-flavoured dynamic detector: every simulated thread carries a
//! vector clock ([`VecTime`], a per-thread vector of [`VTime`] ticks layered
//! over parade-net's scalar virtual clock), every shared location carries
//! shadow state (the epoch of the last write plus the epochs of reads since
//! that write), and every synchronization operation of the runtime —
//! barriers, `critical`/`atomic` locks, `single` broadcasts — transfers
//! clocks exactly where the runtime transfers control. Two accesses to the
//! same location race iff neither happens-before the other and at least one
//! is a write; the oracle reports each such pair once per (variable, kind).
//!
//! The oracle exists to keep `parade-check`'s static verdicts honest (see
//! `crates/check`): the corpus in `tests/check_corpus.rs` asserts that every
//! program the static pass calls racy is also flagged here, and every clean
//! program is flagged by neither.
//!
//! Synchronization protocol notes:
//!
//! * **Barrier** — two-phase. Before entering the runtime barrier each
//!   thread contributes its clock to a per-generation accumulator
//!   ([`Oracle::pre_barrier`]); after the runtime barrier releases it joins
//!   the accumulated clock ([`Oracle::post_barrier`]). The runtime barrier
//!   guarantees all contributions land before any join reads them.
//! * **Locks** (`critical`, lock-path `atomic`) — classic release/acquire:
//!   the releaser snapshots its clock into the lock, the next acquirer
//!   joins it.
//! * **`single`** — the executing thread snapshots its clock at the end of
//!   the body ([`Oracle::single_done`]); every thread joins that snapshot
//!   after the runtime collective returns ([`Oracle::single_join`]). This
//!   gives executor→everyone edges (the broadcast) without pretending the
//!   non-executing threads synchronized with each other.
//! * **Fork** — the oracle is created fresh per parallel region, so serial
//!   code before the region can never race with region code (matching
//!   OpenMP fork semantics). Join discards the oracle after draining
//!   reports.

use std::collections::{HashMap, HashSet};
use std::fmt;

use parade_net::sync::Mutex;
use parade_net::VTime;

use crate::token::Span;

/// A per-thread vector of virtual-time ticks. Grows on demand so callers
/// need not know the team size up front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecTime(Vec<VTime>);

impl VecTime {
    pub fn new() -> VecTime {
        VecTime(Vec::new())
    }

    pub fn get(&self, tid: usize) -> VTime {
        self.0.get(tid).copied().unwrap_or(VTime::ZERO)
    }

    fn slot(&mut self, tid: usize) -> &mut VTime {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, VTime::ZERO);
        }
        &mut self.0[tid]
    }

    pub fn tick(&mut self, tid: usize) {
        let s = self.slot(tid);
        *s = VTime(s.0 + 1);
    }

    /// Pointwise max.
    pub fn join(&mut self, other: &VecTime) {
        for (tid, t) in other.0.iter().enumerate() {
            let s = self.slot(tid);
            *s = (*s).max(*t);
        }
    }

    /// Does the epoch `(tid, t)` happen before (or equal) this clock?
    pub fn covers(&self, tid: usize, t: VTime) -> bool {
        t <= self.get(tid)
    }
}

/// `(thread, tick)` — the FastTrack compressed timestamp of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Epoch {
    tid: usize,
    t: VTime,
}

/// Which access pair conflicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKind {
    WriteWrite,
    /// Earlier write, later unordered read.
    WriteRead,
    /// Earlier read, later unordered write.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::WriteRead => write!(f, "write-read"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One dynamic race, reported once per `(variable, kind)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    pub var: String,
    /// Flattened element index for arrays, `None` for scalars.
    pub index: Option<usize>,
    pub kind: RaceKind,
    /// Source position of the earlier access.
    pub first: Span,
    /// Source position of the later access.
    pub second: Span,
    pub threads: (usize, usize),
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} race on `{}`", self.kind, self.var)?;
        if let Some(i) = self.index {
            write!(f, "[{i}]")?;
        }
        write!(
            f,
            ": thread {} at {} vs thread {} at {}",
            self.threads.0, self.first, self.threads.1, self.second
        )
    }
}

/// Shadow state of one shared location.
#[derive(Debug, Default)]
struct Shadow {
    write: Option<(Epoch, Span)>,
    /// Reads since the last write, one entry per thread (full-VC
    /// representation; we favour completeness over FastTrack's epoch
    /// compression at corpus scale).
    reads: HashMap<usize, (VTime, Span)>,
}

#[derive(Default)]
struct State {
    /// Per-thread clocks.
    clocks: HashMap<usize, VecTime>,
    /// Release clocks, keyed by lock name (`critical:x`, `atomic:x`).
    locks: HashMap<String, VecTime>,
    /// Per-thread barrier generation counters.
    barrier_gen: HashMap<usize, u64>,
    /// Clock accumulator per barrier generation.
    barrier_acc: HashMap<u64, VecTime>,
    /// Per-thread `single` generation counters.
    single_gen: HashMap<usize, u64>,
    /// Executor clock snapshot per `single` generation.
    single_snap: HashMap<u64, VecTime>,
    shadow: HashMap<(String, usize), Shadow>,
    races: Vec<RaceReport>,
    seen: HashSet<(String, RaceKind)>,
}

impl State {
    fn clock(&mut self, tid: usize) -> &mut VecTime {
        self.clocks.entry(tid).or_insert_with(|| {
            // A fresh thread starts at tick 1 of its own component so its
            // epochs are never covered by the zero clock.
            let mut c = VecTime::new();
            c.tick(tid);
            c
        })
    }

    fn on_read(&mut self, tid: usize, var: &str, idx: usize, scalar: bool, span: Span) {
        let clock = self.clock(tid).clone();
        let key = (var.to_string(), idx);
        let sh = self.shadow.entry(key).or_default();
        let prior = match &sh.write {
            Some((w, wspan)) if !clock.covers(w.tid, w.t) => Some((w.tid, *wspan)),
            _ => None,
        };
        sh.reads.insert(tid, (clock.get(tid), span));
        if let Some(first) = prior {
            self.report(var, idx, scalar, RaceKind::WriteRead, first, (tid, span));
        }
    }

    fn on_write(&mut self, tid: usize, var: &str, idx: usize, scalar: bool, span: Span) {
        let clock = self.clock(tid).clone();
        let key = (var.to_string(), idx);
        let sh = self.shadow.entry(key).or_default();
        let mut conflicts: Vec<(RaceKind, (usize, Span))> = Vec::new();
        if let Some((w, wspan)) = &sh.write {
            if !clock.covers(w.tid, w.t) {
                conflicts.push((RaceKind::WriteWrite, (w.tid, *wspan)));
            }
        }
        for (rtid, (rt, rspan)) in &sh.reads {
            if !clock.covers(*rtid, *rt) {
                conflicts.push((RaceKind::ReadWrite, (*rtid, *rspan)));
            }
        }
        sh.write = Some((
            Epoch {
                tid,
                t: clock.get(tid),
            },
            span,
        ));
        sh.reads.clear();
        for (kind, first) in conflicts {
            self.report(var, idx, scalar, kind, first, (tid, span));
        }
    }

    fn on_lock_acquire(&mut self, tid: usize, key: &str) {
        if let Some(l) = self.locks.get(key).cloned() {
            self.clock(tid).join(&l);
        }
    }

    fn on_lock_release(&mut self, tid: usize, key: &str) {
        let snap = self.clock(tid).clone();
        self.locks.insert(key.to_string(), snap);
        self.clock(tid).tick(tid);
    }

    fn report(
        &mut self,
        var: &str,
        idx: usize,
        scalar: bool,
        kind: RaceKind,
        first: (usize, Span),
        second: (usize, Span),
    ) {
        if first.0 == second.0 {
            return; // same thread: program order, not a race
        }
        if !self.seen.insert((var.to_string(), kind)) {
            return;
        }
        self.races.push(RaceReport {
            var: var.to_string(),
            index: if scalar { None } else { Some(idx) },
            kind,
            first: first.1,
            second: second.1,
            threads: (first.0, second.0),
        });
    }
}

/// The per-region oracle; shared by every thread of the team.
pub struct Oracle {
    inner: Mutex<State>,
}

impl Default for Oracle {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle {
    pub fn new() -> Oracle {
        Oracle {
            inner: Mutex::new(State::default()),
        }
    }

    /// Record a read of `var` (element `idx`; 0 with `scalar=true` for
    /// scalars) by thread `tid`.
    pub fn read(&self, tid: usize, var: &str, idx: usize, scalar: bool, span: Span) {
        self.inner.lock().on_read(tid, var, idx, scalar, span);
    }

    /// Record a write of `var` by thread `tid`.
    pub fn write(&self, tid: usize, var: &str, idx: usize, scalar: bool, span: Span) {
        self.inner.lock().on_write(tid, var, idx, scalar, span);
    }

    /// Release/acquire edge: join the lock's release clock into `tid`.
    pub fn lock_acquire(&self, tid: usize, key: &str) {
        self.inner.lock().on_lock_acquire(tid, key);
    }

    /// Snapshot `tid`'s clock into the lock and advance the thread.
    pub fn lock_release(&self, tid: usize, key: &str) {
        self.inner.lock().on_lock_release(tid, key);
    }

    /// Model one `#pragma omp atomic` read-modify-write of scalar `var` as a
    /// single indivisible acquire/read/write/release, all under one hold of
    /// the oracle's state lock.
    ///
    /// The runtime serializes the *data* update (e.g. `atomic_f64`), but the
    /// interpreter's oracle bookkeeping runs outside that mutual exclusion.
    /// Issued as four separate calls, two threads could interleave
    /// `acquire/acquire/read/write/...`: the second acquirer would join the
    /// lock clock *before* the first released into it, miss the
    /// happens-before edge, and report a false write-write/write-read race
    /// on a perfectly clean `atomic`. Doing the whole sequence atomically
    /// here pins a valid linearization — whichever thread's RMW lands first
    /// releases its clock before the next one acquires.
    pub fn atomic_rmw(&self, tid: usize, var: &str, span: Span) {
        let mut st = self.inner.lock();
        let key = format!("atomic:{var}");
        st.on_lock_acquire(tid, &key);
        st.on_read(tid, var, 0, true, span);
        st.on_write(tid, var, 0, true, span);
        st.on_lock_release(tid, &key);
    }

    /// Contribute this thread's clock to the current barrier generation.
    /// Call immediately **before** the runtime barrier.
    pub fn pre_barrier(&self, tid: usize) {
        let mut st = self.inner.lock();
        let gen = *st.barrier_gen.entry(tid).or_insert(0);
        let snap = st.clock(tid).clone();
        st.barrier_acc.entry(gen).or_default().join(&snap);
    }

    /// Join the accumulated clocks of the generation and advance. Call
    /// immediately **after** the runtime barrier.
    pub fn post_barrier(&self, tid: usize) {
        let mut st = self.inner.lock();
        let gen = st.barrier_gen.entry(tid).or_insert(0);
        let g = *gen;
        *gen += 1;
        if let Some(acc) = st.barrier_acc.get(&g).cloned() {
            st.clock(tid).join(&acc);
        }
        st.clock(tid).tick(tid);
    }

    /// The `single` executor finished its body: snapshot its clock for the
    /// construct instance and advance. Runs inside the runtime collective,
    /// so the snapshot is complete before any [`Oracle::single_join`].
    pub fn single_done(&self, tid: usize) {
        let mut st = self.inner.lock();
        let gen = *st.single_gen.entry(tid).or_insert(0);
        let snap = st.clock(tid).clone();
        st.single_snap.insert(gen, snap);
        st.clock(tid).tick(tid);
    }

    /// Every thread joins the executor snapshot after the collective
    /// returns, then advances its `single` generation.
    pub fn single_join(&self, tid: usize) {
        let mut st = self.inner.lock();
        let gen = st.single_gen.entry(tid).or_insert(0);
        let g = *gen;
        *gen += 1;
        if let Some(s) = st.single_snap.get(&g).cloned() {
            st.clock(tid).join(&s);
        }
    }

    /// Drain the reports collected so far (region join).
    pub fn drain(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.inner.lock().races)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(line: usize) -> Span {
        Span::at_line(line)
    }

    #[test]
    fn unordered_writes_race() {
        let o = Oracle::new();
        o.write(0, "x", 0, true, sp(1));
        o.write(1, "x", 0, true, sp(2));
        let races = o.drain();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::WriteWrite);
        assert_eq!(races[0].var, "x");
        assert_eq!(races[0].index, None);
    }

    #[test]
    fn barrier_orders_accesses() {
        let o = Oracle::new();
        o.write(0, "x", 0, true, sp(1));
        o.pre_barrier(0);
        o.pre_barrier(1);
        o.post_barrier(0);
        o.post_barrier(1);
        o.read(1, "x", 0, true, sp(2));
        assert!(o.drain().is_empty());
    }

    #[test]
    fn lock_orders_critical_sections() {
        let o = Oracle::new();
        o.lock_acquire(0, "critical:c");
        o.write(0, "x", 0, true, sp(1));
        o.lock_release(0, "critical:c");
        o.lock_acquire(1, "critical:c");
        o.write(1, "x", 0, true, sp(1));
        o.lock_release(1, "critical:c");
        assert!(o.drain().is_empty());
    }

    #[test]
    fn read_then_unordered_write_races() {
        let o = Oracle::new();
        o.read(0, "a", 3, false, sp(4));
        o.write(1, "a", 3, false, sp(5));
        let races = o.drain();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::ReadWrite);
        assert_eq!(races[0].index, Some(3));
    }

    #[test]
    fn distinct_elements_do_not_race() {
        let o = Oracle::new();
        o.write(0, "a", 0, false, sp(1));
        o.write(1, "a", 1, false, sp(1));
        assert!(o.drain().is_empty());
    }

    #[test]
    fn single_gives_executor_to_all_edge() {
        let o = Oracle::new();
        // Thread 0 executes the single body, writing x.
        o.write(0, "x", 0, true, sp(2));
        o.single_done(0);
        o.single_join(0);
        o.single_join(1);
        // Thread 1 may now read x without racing.
        o.read(1, "x", 0, true, sp(3));
        assert!(o.drain().is_empty());
    }

    #[test]
    fn atomic_rmws_never_race_with_each_other() {
        let o = Oracle::new();
        o.atomic_rmw(0, "x", sp(7));
        o.atomic_rmw(1, "x", sp(7));
        o.atomic_rmw(0, "x", sp(7));
        assert!(o.drain().is_empty());
    }

    #[test]
    fn split_rmw_bookkeeping_interleaves_into_false_races() {
        // Documents why `atomic_rmw` exists: the same operations issued as
        // four separate calls can interleave across threads (the runtime's
        // atomic serializes the data update, not this bookkeeping). The
        // second acquirer joins the lock clock before the first release
        // lands, so the happens-before edge is missed.
        let o = Oracle::new();
        o.lock_acquire(0, "atomic:x");
        o.lock_acquire(1, "atomic:x"); // joins an empty lock clock
        o.read(0, "x", 0, true, sp(7));
        o.write(0, "x", 0, true, sp(7));
        o.lock_release(0, "atomic:x");
        o.read(1, "x", 0, true, sp(7));
        o.write(1, "x", 0, true, sp(7));
        o.lock_release(1, "atomic:x");
        let races = o.drain();
        assert!(
            races.iter().any(|r| r.kind == RaceKind::WriteWrite),
            "interleaved split bookkeeping must look racy: {races:?}"
        );
    }

    #[test]
    fn race_reported_once_per_var_and_kind() {
        let o = Oracle::new();
        o.write(0, "x", 0, true, sp(1));
        o.write(1, "x", 0, true, sp(1));
        o.write(2, "x", 0, true, sp(1));
        assert_eq!(o.drain().len(), 1);
    }
}
