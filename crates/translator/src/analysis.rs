//! Directive analysis: variable classification and protocol selection.
//!
//! This is where the ParADE translator earns its keep (§4, §5.2.1): for
//! every synchronization or work-sharing directive it decides between the
//! *message-passing update protocol* (collectives; requires the enclosed
//! block to be lexically analyzable and its shared data to fit under the
//! small-data threshold) and the conventional SDSM path (distributed lock
//! and/or barrier).

use std::collections::{HashMap, HashSet};

use crate::ast::*;

/// Default small-data threshold in bytes (§5.2.1: 256 B on the paper's
/// Linux cluster).
pub const DEFAULT_SMALL_THRESHOLD: usize = 256;

/// How a variable is stored/kept consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Small data: plain per-node storage, eagerly updated by collectives.
    Update,
    /// Paged DSM under HLRC (invalidate protocol).
    Hlrc,
}

/// Scope of a variable with respect to a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarScope {
    Shared,
    Private,
    FirstPrivate,
    LastPrivate,
    Reduction(RedOp),
}

/// All declarations visible to the translator, keyed by name.
/// (The subset forbids shadowing of shared variables inside regions, which
/// keeps this flat map sound.)
#[derive(Debug, Default, Clone)]
pub struct Symbols {
    pub decls: HashMap<String, Decl>,
}

impl Symbols {
    /// Collect globals plus every local declaration of `f`.
    pub fn collect(prog: &Program, f: &FuncDef) -> Symbols {
        let mut s = Symbols::default();
        for item in &prog.items {
            if let Item::Global(d) = item {
                s.decls.insert(d.name.clone(), d.clone());
            }
        }
        for p in &f.params {
            s.decls.insert(
                p.name.clone(),
                Decl {
                    ty: p.ty.clone(),
                    name: p.name.clone(),
                    dims: vec![],
                    init: None,
                    span: Span::default(),
                },
            );
        }
        collect_stmt(&f.body, &mut s);
        s
    }

    pub fn get(&self, name: &str) -> Option<&Decl> {
        self.decls.get(name)
    }

    pub fn byte_size(&self, name: &str) -> usize {
        self.get(name).map(|d| d.byte_size()).unwrap_or(8)
    }
}

fn collect_stmt(s: &Stmt, out: &mut Symbols) {
    match s {
        Stmt::Decl(d) => {
            out.decls.insert(d.name.clone(), d.clone());
        }
        Stmt::Block(ss) => {
            for s in ss {
                collect_stmt(s, out);
            }
        }
        Stmt::If(_, a, b) => {
            collect_stmt(a, out);
            if let Some(b) = b {
                collect_stmt(b, out);
            }
        }
        Stmt::While(_, b) => collect_stmt(b, out),
        Stmt::For { body, .. } => collect_stmt(body, out),
        Stmt::Omp(_, Some(b)) => collect_stmt(b, out),
        _ => {}
    }
}

/// Variable classification for one parallel region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionClassification {
    pub scopes: HashMap<String, VarScope>,
    /// Variables declared inside the region body (always private).
    pub region_locals: HashSet<String>,
}

impl RegionClassification {
    pub fn scope_of(&self, name: &str) -> VarScope {
        if self.region_locals.contains(name) {
            return VarScope::Private;
        }
        self.scopes.get(name).copied().unwrap_or(VarScope::Shared)
    }

    pub fn shared_vars(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter(|(_, s)| matches!(s, VarScope::Shared))
            .map(|(n, _)| n.clone())
            .collect()
    }
}

/// Classify every variable referenced by a region (OpenMP defaults: shared
/// unless privatized; region-local declarations and directive loop
/// variables are private).
pub fn classify_region(dir: &Directive, body: &Stmt, syms: &Symbols) -> RegionClassification {
    let mut c = RegionClassification::default();
    // The controlling variable of a work-shared loop defaults to private;
    // establish that before the shared-by-default pass.
    if matches!(dir.kind, DirKind::ParallelFor | DirKind::For) {
        if let Some(var) = loop_of(body).and_then(|l| l.var()) {
            c.scopes.insert(var, VarScope::Private);
        }
    }
    let mut used = Vec::new();
    stmt_vars(body, &mut used);
    let mut locals = HashSet::new();
    region_local_decls(body, &mut locals);
    for v in used {
        if syms.get(&v).is_some() && !locals.contains(&v) {
            c.scopes.entry(v).or_insert(VarScope::Shared);
        }
    }
    for v in dir.privates() {
        c.scopes.insert(v, VarScope::Private);
    }
    for v in dir.firstprivates() {
        c.scopes.insert(v, VarScope::FirstPrivate);
    }
    for v in dir.lastprivates() {
        c.scopes.insert(v, VarScope::LastPrivate);
    }
    for (op, v) in dir.reductions() {
        c.scopes.insert(v, VarScope::Reduction(op));
    }
    c.region_locals = locals;
    c
}

fn region_local_decls(s: &Stmt, out: &mut HashSet<String>) {
    match s {
        Stmt::Decl(d) => {
            out.insert(d.name.clone());
        }
        Stmt::Block(ss) => {
            for s in ss {
                region_local_decls(s, out);
            }
        }
        Stmt::If(_, a, b) => {
            region_local_decls(a, out);
            if let Some(b) = b {
                region_local_decls(b, out);
            }
        }
        Stmt::While(_, b) => region_local_decls(b, out),
        Stmt::For { body, .. } => region_local_decls(body, out),
        Stmt::Omp(_, Some(b)) => region_local_decls(b, out),
        _ => {}
    }
}

fn stmt_vars(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Decl(d) => {
            if let Some(e) = &d.init {
                e.vars(out);
            }
        }
        Stmt::Expr(e, _) => e.vars(out),
        Stmt::If(c, a, b) => {
            c.vars(out);
            stmt_vars(a, out);
            if let Some(b) = b {
                stmt_vars(b, out);
            }
        }
        Stmt::While(c, b) => {
            c.vars(out);
            stmt_vars(b, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                e.vars(out);
            }
            stmt_vars(body, out);
        }
        Stmt::Block(ss) => {
            for s in ss {
                stmt_vars(s, out);
            }
        }
        Stmt::Return(Some(e)) => e.vars(out),
        Stmt::Omp(_, Some(b)) => stmt_vars(b, out),
        _ => {}
    }
}

fn stmt_calls(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Decl(d) => {
            if let Some(e) = &d.init {
                e.calls(out);
            }
        }
        Stmt::Expr(e, _) => e.calls(out),
        Stmt::If(c, a, b) => {
            c.calls(out);
            stmt_calls(a, out);
            if let Some(b) = b {
                stmt_calls(b, out);
            }
        }
        Stmt::While(c, b) => {
            c.calls(out);
            stmt_calls(b, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            for e in [init, cond, step].into_iter().flatten() {
                e.calls(out);
            }
            stmt_calls(body, out);
        }
        Stmt::Block(ss) => {
            for s in ss {
                stmt_calls(s, out);
            }
        }
        Stmt::Return(Some(e)) => e.calls(out),
        Stmt::Omp(_, Some(b)) => stmt_calls(b, out),
        _ => {}
    }
}

/// A recognized scalar accumulation `x = x ⊕ e` / `x ⊕= e`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarUpdate {
    pub target: String,
    pub op: RedOp,
    pub operand: Expr,
}

/// Try to recognize an expression as a scalar reduction-style update of a
/// shared scalar.
pub fn as_scalar_update(e: &Expr) -> Option<ScalarUpdate> {
    let red = |b: BinOp| match b {
        BinOp::Add => Some(RedOp::Add),
        BinOp::Mul => Some(RedOp::Mul),
        _ => None,
    };
    match e {
        // x += e, x *= e
        Expr::Assign(Some(op), lhs, rhs) => {
            let Expr::Ident(name) = lhs.as_ref() else {
                return None;
            };
            let op = red(*op)?;
            operand_independent(name, rhs)?;
            Some(ScalarUpdate {
                target: name.clone(),
                op,
                operand: rhs.as_ref().clone(),
            })
        }
        // x = x + e  |  x = e + x  |  x = x * e ...
        Expr::Assign(None, lhs, rhs) => {
            let Expr::Ident(name) = lhs.as_ref() else {
                return None;
            };
            let Expr::Binary(bop, a, b) = rhs.as_ref() else {
                return None;
            };
            let op = red(*bop)?;
            let operand = if matches!(a.as_ref(), Expr::Ident(n) if n == name) {
                b.as_ref()
            } else if matches!(b.as_ref(), Expr::Ident(n) if n == name) && op != RedOp::Mul {
                // commutative + only for safety with mul ordering
                a.as_ref()
            } else if matches!(b.as_ref(), Expr::Ident(n) if n == name) {
                a.as_ref()
            } else {
                return None;
            };
            operand_independent(name, operand)?;
            Some(ScalarUpdate {
                target: name.clone(),
                op,
                operand: operand.clone(),
            })
        }
        _ => None,
    }
}

/// `x = fmin(x, e)` / `x = fmax(x, e)` — the combining form of min/max
/// reductions (the [`as_scalar_update`] analogue for `RedOp::Min`/`Max`).
pub fn as_minmax_update(e: &Expr) -> Option<ScalarUpdate> {
    let Expr::Assign(None, lhs, rhs) = e else {
        return None;
    };
    let Expr::Ident(name) = lhs.as_ref() else {
        return None;
    };
    let Expr::Call(f, args) = rhs.as_ref() else {
        return None;
    };
    let op = match f.as_str() {
        "fmin" => RedOp::Min,
        "fmax" => RedOp::Max,
        _ => return None,
    };
    if args.len() != 2 {
        return None;
    }
    let is_self = |a: &Expr| matches!(a, Expr::Ident(n) if n == name);
    let other = if is_self(&args[0]) {
        &args[1]
    } else if is_self(&args[1]) {
        &args[0]
    } else {
        return None;
    };
    operand_independent(name, other)?;
    Some(ScalarUpdate {
        target: name.clone(),
        op,
        operand: other.clone(),
    })
}

/// `atomic` bodies arrive as `{ x += e; }` or bare `x += e;` — strip a
/// single-statement block down to the statement.
pub fn flatten_single(s: &Stmt) -> &Stmt {
    if let Stmt::Block(ss) = s {
        let real: Vec<&Stmt> = ss.iter().filter(|s| !matches!(s, Stmt::Empty)).collect();
        if real.len() == 1 {
            return real[0];
        }
    }
    s
}

/// The operand of an update must not itself mention the target (otherwise
/// the collective reduction semantics would differ from serialization).
fn operand_independent(name: &str, e: &Expr) -> Option<()> {
    let mut vars = Vec::new();
    e.vars(&mut vars);
    if vars.iter().any(|v| v == name) {
        None
    } else {
        Some(())
    }
}

/// How a `critical` (or `atomic`) block is lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum CriticalLowering {
    /// Hierarchical pthread lock + collective update (Figure 2 right).
    Collective(Vec<ScalarUpdate>),
    /// Conventional distributed lock (Figure 2 left / fallback).
    Lock,
}

/// Decide the lowering of a critical block (§4.2 + §5.2.1 + §7):
/// lexically analyzable (no non-builtin calls), every statement a scalar
/// accumulation on a shared scalar, and the touched shared data under the
/// threshold.
pub fn analyze_critical(
    body: &Stmt,
    class: &RegionClassification,
    syms: &Symbols,
    threshold: usize,
) -> CriticalLowering {
    let mut calls = Vec::new();
    stmt_calls(body, &mut calls);
    if calls.iter().any(|c| !is_math_builtin(c)) {
        return CriticalLowering::Lock;
    }
    let stmts: Vec<&Stmt> = match body {
        Stmt::Block(ss) => ss.iter().collect(),
        other => vec![other],
    };
    let mut updates = Vec::new();
    let mut touched = 0usize;
    for s in stmts {
        match s {
            Stmt::Empty => {}
            Stmt::Expr(e, _) => match as_scalar_update(e) {
                Some(u) => {
                    if !matches!(class.scope_of(&u.target), VarScope::Shared) {
                        return CriticalLowering::Lock;
                    }
                    if syms.get(&u.target).map(|d| d.is_array()).unwrap_or(false) {
                        return CriticalLowering::Lock;
                    }
                    touched += syms.byte_size(&u.target);
                    updates.push(u);
                }
                None => return CriticalLowering::Lock,
            },
            _ => return CriticalLowering::Lock,
        }
    }
    if updates.is_empty() || touched > threshold {
        return CriticalLowering::Lock;
    }
    CriticalLowering::Collective(updates)
}

/// How a `single` block is lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum SingleLowering {
    /// Earliest thread executes under the node lock; the written small
    /// scalars are broadcast — no barrier (Figure 3 right).
    Broadcast(Vec<String>),
    /// Conventional: distributed lock + DSM flag + barrier (Figure 3 left).
    LockFlagBarrier,
}

/// Decide the lowering of a single block: analyzable and writing only
/// small shared scalars → broadcast path.
pub fn analyze_single(
    body: &Stmt,
    class: &RegionClassification,
    syms: &Symbols,
    threshold: usize,
) -> SingleLowering {
    let mut calls = Vec::new();
    stmt_calls(body, &mut calls);
    if calls.iter().any(|c| !is_math_builtin(c)) {
        return SingleLowering::LockFlagBarrier;
    }
    let mut writes = Vec::new();
    if collect_scalar_writes(body, &mut writes).is_err() {
        return SingleLowering::LockFlagBarrier;
    }
    let mut total = 0usize;
    let mut targets = Vec::new();
    for w in writes {
        if !matches!(class.scope_of(&w), VarScope::Shared) {
            // Private writes are fine but irrelevant for propagation.
            continue;
        }
        if syms.get(&w).map(|d| d.is_array()).unwrap_or(false) {
            return SingleLowering::LockFlagBarrier;
        }
        total += syms.byte_size(&w);
        if !targets.contains(&w) {
            targets.push(w);
        }
    }
    if total > threshold {
        return SingleLowering::LockFlagBarrier;
    }
    SingleLowering::Broadcast(targets)
}

/// Collect scalar assignment targets; `Err` on array writes or control
/// flow that defeats lexical analysis.
fn collect_scalar_writes(s: &Stmt, out: &mut Vec<String>) -> Result<(), ()> {
    match s {
        Stmt::Empty => Ok(()),
        Stmt::Expr(e, _) => expr_writes(e, out),
        Stmt::Block(ss) => {
            for s in ss {
                collect_scalar_writes(s, out)?;
            }
            Ok(())
        }
        _ => Err(()),
    }
}

fn expr_writes(e: &Expr, out: &mut Vec<String>) -> Result<(), ()> {
    match e {
        Expr::Assign(_, lhs, rhs) => {
            match lhs.as_ref() {
                Expr::Ident(n) => out.push(n.clone()),
                Expr::Index(..) => return Err(()),
                _ => return Err(()),
            }
            expr_writes(rhs, out)
        }
        Expr::Binary(_, a, b) => {
            expr_writes(a, out)?;
            expr_writes(b, out)
        }
        Expr::Unary(_, a) => expr_writes(a, out),
        Expr::Cond(c, a, b) => {
            expr_writes(c, out)?;
            expr_writes(a, out)?;
            expr_writes(b, out)
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_writes(a, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// A canonical `for` loop recognized by the work-sharing lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonLoop {
    pub var: String,
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
    /// Positive stride.
    pub step: i64,
    pub body: Stmt,
}

impl CanonLoop {
    pub fn var(&self) -> Option<String> {
        Some(self.var.clone())
    }
}

/// Find the `for` loop a work-sharing directive applies to.
pub fn loop_of(body: &Stmt) -> Option<CanonLoop> {
    let Stmt::For {
        init,
        cond,
        step,
        body,
    } = body
    else {
        return None;
    };
    // init: i = lo
    let Some(Expr::Assign(None, lhs, lo)) = init else {
        return None;
    };
    let Expr::Ident(var) = lhs.as_ref() else {
        return None;
    };
    // cond: i < hi  or  i <= hi
    let Some(Expr::Binary(cmp, cl, ch)) = cond else {
        return None;
    };
    if !matches!(cl.as_ref(), Expr::Ident(n) if n == var) {
        return None;
    }
    let hi = match cmp {
        BinOp::Lt => ch.as_ref().clone(),
        BinOp::Le => Expr::Binary(
            BinOp::Add,
            Box::new(ch.as_ref().clone()),
            Box::new(Expr::Int(1)),
        ),
        _ => return None,
    };
    // step: i++  |  i += c  |  i = i + c
    let stride = match step {
        Some(Expr::Assign(Some(BinOp::Add), sl, sr)) if matches!(sl.as_ref(), Expr::Ident(n) if n == var) => {
            match sr.as_ref() {
                Expr::Int(c) if *c > 0 => *c,
                _ => return None,
            }
        }
        Some(Expr::Assign(None, sl, sr)) if matches!(sl.as_ref(), Expr::Ident(n) if n == var) => {
            match sr.as_ref() {
                Expr::Binary(BinOp::Add, a, b) if matches!(a.as_ref(), Expr::Ident(n) if n == var) => {
                    match b.as_ref() {
                        Expr::Int(c) if *c > 0 => *c,
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        _ => return None,
    };
    Some(CanonLoop {
        var: var.clone(),
        lo: lo.as_ref().clone(),
        hi,
        step: stride,
        body: body.as_ref().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn region_of(src: &str) -> (Directive, Stmt, Symbols) {
        let prog = parse(src).unwrap();
        let f = prog.func("main").unwrap().clone();
        let syms = Symbols::collect(&prog, &f);
        fn find(s: &Stmt) -> Option<(Directive, Stmt)> {
            match s {
                Stmt::Omp(d, Some(b))
                    if matches!(d.kind, DirKind::Parallel | DirKind::ParallelFor) =>
                {
                    Some((d.clone(), b.as_ref().clone()))
                }
                Stmt::Block(ss) => ss.iter().find_map(find),
                _ => None,
            }
        }
        let (d, b) = find(&f.body).expect("region found");
        (d, b, syms)
    }

    #[test]
    fn default_scope_is_shared() {
        let (d, b, syms) = region_of(
            "int main() { double x; int i;\n#pragma omp parallel private(i)\n{ x = 1.0; i = 2; }\nreturn 0; }",
        );
        let c = classify_region(&d, &b, &syms);
        assert_eq!(c.scope_of("x"), VarScope::Shared);
        assert_eq!(c.scope_of("i"), VarScope::Private);
    }

    #[test]
    fn region_locals_are_private() {
        let (d, b, syms) = region_of(
            "int main() { double x;\n#pragma omp parallel\n{ double t; t = 1.0; x = t; }\nreturn 0; }",
        );
        let c = classify_region(&d, &b, &syms);
        assert_eq!(c.scope_of("t"), VarScope::Private);
        assert_eq!(c.scope_of("x"), VarScope::Shared);
    }

    #[test]
    fn parallel_for_loop_var_is_private() {
        let (d, b, syms) = region_of(
            "int main() { int i; double a[100];\n#pragma omp parallel for\nfor (i = 0; i < 100; i++) a[i] = 1.0;\nreturn 0; }",
        );
        let c = classify_region(&d, &b, &syms);
        assert_eq!(c.scope_of("i"), VarScope::Private);
    }

    #[test]
    fn scalar_update_patterns() {
        let u = as_scalar_update(&parse_expr("x += y * 2.0")).unwrap();
        assert_eq!(u.target, "x");
        assert_eq!(u.op, RedOp::Add);
        let u = as_scalar_update(&parse_expr("x = x + 1.0")).unwrap();
        assert_eq!(u.op, RedOp::Add);
        let u = as_scalar_update(&parse_expr("x = y + x")).unwrap();
        assert_eq!(u.target, "x");
        assert!(as_scalar_update(&parse_expr("x = x - 1.0")).is_none());
        assert!(as_scalar_update(&parse_expr("x = x + x")).is_none());
        assert!(as_scalar_update(&parse_expr("a[0] += 1.0")).is_none());
    }

    fn parse_expr(s: &str) -> Expr {
        let prog = parse(&format!(
            "int main() {{ double x, y; double a[4]; {s}; return 0; }}"
        ))
        .unwrap();
        let f = prog.func("main").unwrap();
        let Stmt::Block(ss) = &f.body else { panic!() };
        ss.iter()
            .find_map(|st| match st {
                Stmt::Expr(e, _) => Some(e.clone()),
                _ => None,
            })
            .unwrap()
    }

    #[test]
    fn critical_small_scalar_becomes_collective() {
        let (d, b, syms) = region_of(
            r#"int main() { double sum; double local;
#pragma omp parallel
{
#pragma omp critical
{ sum = sum + local; }
}
return 0; }"#,
        );
        let c = classify_region(&d, &b, &syms);
        // Find the critical inside the region body.
        fn find_crit(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Critical(_)) => Some(b),
                Stmt::Block(ss) => ss.iter().find_map(find_crit),
                Stmt::Omp(_, Some(b)) => find_crit(b),
                _ => None,
            }
        }
        let crit = find_crit(&b).unwrap();
        match analyze_critical(crit, &c, &syms, DEFAULT_SMALL_THRESHOLD) {
            CriticalLowering::Collective(us) => {
                assert_eq!(us.len(), 1);
                assert_eq!(us[0].target, "sum");
            }
            other => panic!("expected collective, got {other:?}"),
        }
    }

    #[test]
    fn critical_with_call_falls_back_to_lock() {
        let (d, b, syms) = region_of(
            r#"int main() { double sum;
#pragma omp parallel
{
#pragma omp critical
{ sum = sum + compute(); }
}
return 0; }
double compute() { return 1.0; }"#,
        );
        let c = classify_region(&d, &b, &syms);
        fn find_crit(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Critical(_)) => Some(b),
                Stmt::Block(ss) => ss.iter().find_map(find_crit),
                Stmt::Omp(_, Some(b)) => find_crit(b),
                _ => None,
            }
        }
        let crit = find_crit(&b).unwrap();
        assert_eq!(
            analyze_critical(crit, &c, &syms, DEFAULT_SMALL_THRESHOLD),
            CriticalLowering::Lock
        );
    }

    #[test]
    fn critical_large_array_falls_back_to_lock() {
        let (d, b, syms) = region_of(
            r#"int main() { double big[1000]; double s;
#pragma omp parallel
{
#pragma omp critical
{ big[0] = big[0] + 1.0; }
}
return 0; }"#,
        );
        let c = classify_region(&d, &b, &syms);
        fn find_crit(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Critical(_)) => Some(b),
                Stmt::Block(ss) => ss.iter().find_map(find_crit),
                Stmt::Omp(_, Some(b)) => find_crit(b),
                _ => None,
            }
        }
        let crit = find_crit(&b).unwrap();
        let _ = &syms;
        assert_eq!(
            analyze_critical(crit, &c, &syms, DEFAULT_SMALL_THRESHOLD),
            CriticalLowering::Lock
        );
    }

    #[test]
    fn single_small_write_broadcasts() {
        let (d, b, syms) = region_of(
            r#"int main() { double tol;
#pragma omp parallel
{
#pragma omp single
{ tol = 1e-7; }
}
return 0; }"#,
        );
        let c = classify_region(&d, &b, &syms);
        fn find_single(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Single) => Some(b),
                Stmt::Block(ss) => ss.iter().find_map(find_single),
                Stmt::Omp(_, Some(b)) => find_single(b),
                _ => None,
            }
        }
        let single = find_single(&b).unwrap();
        assert_eq!(
            analyze_single(single, &c, &syms, DEFAULT_SMALL_THRESHOLD),
            SingleLowering::Broadcast(vec!["tol".to_string()])
        );
    }

    #[test]
    fn single_array_init_needs_barrier_path() {
        let (d, b, syms) = region_of(
            r#"int main() { double a[100];
#pragma omp parallel
{
#pragma omp single
{ a[0] = 1.0; }
}
return 0; }"#,
        );
        let c = classify_region(&d, &b, &syms);
        fn find_single(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::Single) => Some(b),
                Stmt::Block(ss) => ss.iter().find_map(find_single),
                Stmt::Omp(_, Some(b)) => find_single(b),
                _ => None,
            }
        }
        let single = find_single(&b).unwrap();
        assert_eq!(
            analyze_single(single, &c, &syms, DEFAULT_SMALL_THRESHOLD),
            SingleLowering::LockFlagBarrier
        );
    }

    #[test]
    fn canonical_loop_extraction() {
        let prog = parse(
            "int main() { int i; double a[10]; for (i = 0; i < 10; i++) a[i] = 1.0; return 0; }",
        )
        .unwrap();
        let f = prog.func("main").unwrap();
        let Stmt::Block(ss) = &f.body else { panic!() };
        let floop = ss.iter().find(|s| matches!(s, Stmt::For { .. })).unwrap();
        let l = loop_of(floop).unwrap();
        assert_eq!(l.var, "i");
        assert_eq!(l.lo, Expr::Int(0));
        assert_eq!(l.hi, Expr::Int(10));
        assert_eq!(l.step, 1);
    }

    #[test]
    fn le_bound_becomes_exclusive() {
        let prog = parse(
            "int main() { int i; double a[11]; for (i = 1; i <= 10; i += 2) a[i] = 1.0; return 0; }",
        )
        .unwrap();
        let f = prog.func("main").unwrap();
        let Stmt::Block(ss) = &f.body else { panic!() };
        let floop = ss.iter().find(|s| matches!(s, Stmt::For { .. })).unwrap();
        let l = loop_of(floop).unwrap();
        assert_eq!(l.step, 2);
        assert_eq!(
            l.hi,
            Expr::Binary(BinOp::Add, Box::new(Expr::Int(10)), Box::new(Expr::Int(1)))
        );
    }
}
