//! Source-to-source backend: emits the translated C program.
//!
//! Mirrors the paper's translator output (§4, Figures 2 and 3): parallel
//! regions become extracted thread functions invoked through the ParADE
//! runtime; synchronization and work-sharing directives are rewritten
//! either to the hybrid message-passing form ([`EmitMode::Parade`]) or to
//! the conventional SDSM form ([`EmitMode::Sdsm`]) used for the baseline
//! comparison.

use std::fmt::Write as _;

use crate::analysis::{
    analyze_critical, analyze_single, classify_region, loop_of, CriticalLowering,
    RegionClassification, SingleLowering, Symbols, VarScope, DEFAULT_SMALL_THRESHOLD,
};
use crate::ast::*;
use crate::token::ParseError;

/// Which runtime dialect to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// ParADE hybrid: collectives for small-data directives.
    Parade,
    /// Conventional SDSM: distributed locks + barriers (KDSM-style).
    Sdsm,
}

impl EmitMode {
    fn barrier(self) -> &'static str {
        match self {
            EmitMode::Parade => "parade_barrier();",
            EmitMode::Sdsm => "sdsm_barrier();",
        }
    }
}

/// Translate a parsed program to C source against the ParADE (or baseline
/// SDSM) runtime API.
pub fn translate(prog: &Program, mode: EmitMode, threshold: usize) -> Result<String, ParseError> {
    let mut e = Emitter {
        mode,
        threshold,
        out: String::new(),
        regions: String::new(),
        region_count: 0,
        lock_count: 0,
        single_count: 0,
        indent: 0,
        prog,
    };
    e.program()?;
    Ok(e.out)
}

/// Translate with the paper's default 256-byte threshold.
pub fn translate_default(prog: &Program, mode: EmitMode) -> Result<String, ParseError> {
    translate(prog, mode, DEFAULT_SMALL_THRESHOLD)
}

struct Emitter<'p> {
    mode: EmitMode,
    threshold: usize,
    out: String,
    regions: String,
    region_count: usize,
    lock_count: usize,
    single_count: usize,
    indent: usize,
    prog: &'p Program,
}

impl<'p> Emitter<'p> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn program(&mut self) -> Result<(), ParseError> {
        let header = match self.mode {
            EmitMode::Parade => "/* translated by paradec — ParADE hybrid runtime */",
            EmitMode::Sdsm => "/* translated by paradec — conventional SDSM runtime */",
        };
        self.line(header);
        for inc in &self.prog.includes {
            self.line(&format!("#include {inc}"));
        }
        match self.mode {
            EmitMode::Parade => {
                self.line("#include \"parade_rt.h\"");
                self.line("#include <pthread.h>");
            }
            EmitMode::Sdsm => self.line("#include \"sdsm_rt.h\""),
        }
        self.line("");
        // Two passes: emit function bodies (collecting extracted regions),
        // then append region functions.
        for item in &self.prog.items {
            match item {
                Item::Global(d) => {
                    let decl = decl_text(d);
                    self.line(&format!("{decl};"));
                }
                Item::Func(f) => self.func(f)?,
            }
        }
        if !self.regions.is_empty() {
            self.out
                .push_str("\n/* ---- extracted parallel regions ---- */\n");
            let regions = std::mem::take(&mut self.regions);
            self.out.push_str(&regions);
        }
        Ok(())
    }

    fn func(&mut self, f: &FuncDef) -> Result<(), ParseError> {
        let params = if f.params.is_empty() {
            "void".to_string()
        } else {
            f.params
                .iter()
                .map(|p| format!("{} {}", type_text(&p.ty), p.name))
                .collect::<Vec<_>>()
                .join(", ")
        };
        self.line(&format!("{} {}({})", type_text(&f.ret), f.name, params));
        let syms = Symbols::collect(self.prog, f);
        self.stmt(&f.body, &syms, None)?;
        self.line("");
        Ok(())
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        syms: &Symbols,
        region: Option<&RegionClassification>,
    ) -> Result<(), ParseError> {
        match s {
            Stmt::Block(ss) => {
                self.line("{");
                self.indent += 1;
                for s in ss {
                    self.stmt(s, syms, region)?;
                }
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Decl(d) => {
                self.line(&format!("{};", decl_text(d)));
            }
            Stmt::Expr(e, _) => {
                let text = self.expr(e, region);
                self.line(&format!("{text};"));
            }
            Stmt::If(c, a, b) => {
                let cond = self.expr(c, region);
                self.line(&format!("if ({cond})"));
                self.stmt(a, syms, region)?;
                if let Some(b) = b {
                    self.line("else");
                    self.stmt(b, syms, region)?;
                }
            }
            Stmt::While(c, b) => {
                let cond = self.expr(c, region);
                self.line(&format!("while ({cond})"));
                self.stmt(b, syms, region)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let i = init
                    .as_ref()
                    .map(|e| self.expr(e, region))
                    .unwrap_or_default();
                let c = cond
                    .as_ref()
                    .map(|e| self.expr(e, region))
                    .unwrap_or_default();
                let st = step
                    .as_ref()
                    .map(|e| self.expr(e, region))
                    .unwrap_or_default();
                self.line(&format!("for ({i}; {c}; {st})"));
                self.stmt(body, syms, region)?;
            }
            Stmt::Return(e) => {
                let text = e
                    .as_ref()
                    .map(|e| format!("return {};", self.expr(e, region)))
                    .unwrap_or_else(|| "return;".into());
                self.line(&text);
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Empty => self.line(";"),
            Stmt::Omp(dir, body) => self.directive(dir, body.as_deref(), syms, region)?,
        }
        Ok(())
    }

    fn directive(
        &mut self,
        dir: &Directive,
        body: Option<&Stmt>,
        syms: &Symbols,
        region: Option<&RegionClassification>,
    ) -> Result<(), ParseError> {
        match (&dir.kind, region) {
            (DirKind::Parallel | DirKind::ParallelFor, _) => {
                self.parallel_region(dir, body.expect("region body"), syms)
            }
            (DirKind::Barrier, _) => {
                self.line(self.mode.barrier());
                Ok(())
            }
            (DirKind::Master, Some(_)) => {
                self.line("if (parade_thread_num() == 0)");
                self.stmt(body.expect("master body"), syms, region)?;
                Ok(())
            }
            (DirKind::For, Some(class)) => {
                let class = class.clone();
                self.worksharing_for(dir, body.expect("loop"), syms, &class)
            }
            (DirKind::Critical(_), Some(class)) => {
                let class = class.clone();
                self.critical(dir, body.expect("critical body"), syms, &class)
            }
            (DirKind::Atomic, Some(class)) => {
                let class = class.clone();
                self.atomic(body.expect("atomic body"), syms, &class, dir.line())
            }
            (DirKind::Single, Some(class)) => {
                let class = class.clone();
                self.single(body.expect("single body"), syms, &class)
            }
            // Tasking constructs are emitted with serial elision: an
            // undeferred task executed inline is a legal task schedule, and
            // program order subsumes every `depend` edge. The distributed
            // work-stealing schedule lives in the runtime (parade-tasks),
            // not in the generated C.
            (DirKind::Task, _) => {
                let deps = dir.depends();
                if deps.is_empty() {
                    self.line("/* task: serial elision (undeferred execution) */");
                } else {
                    let list = deps
                        .iter()
                        .map(|(k, v)| format!("{}:{v}", k.c_token()))
                        .collect::<Vec<_>>()
                        .join(", ");
                    self.line(&format!(
                        "/* task depend({list}): program order subsumes the edges */"
                    ));
                }
                self.stmt(body.expect("task body"), syms, region)
            }
            (DirKind::Taskwait, _) => {
                self.line("/* taskwait: no-op under serial elision */");
                Ok(())
            }
            (DirKind::Target, _) => {
                let dev = dir
                    .device()
                    .map(|e| format!(" device({})", self.expr(e, region)))
                    .unwrap_or_default();
                let maps = dir.maps();
                let map_text = if maps.is_empty() {
                    String::new()
                } else {
                    format!(
                        " map({})",
                        maps.iter()
                            .map(|(k, v)| format!("{}:{v}", k.c_token()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                self.line(&format!(
                    "/* target{dev}{map_text}: host fallback (the runtime \
                     offloads via pinned tasks + DSM notices) */"
                ));
                self.stmt(body.expect("target body"), syms, region)
            }
            (kind, None) => Err(ParseError {
                line: dir.line(),
                message: format!("directive {kind:?} outside a parallel region"),
            }),
        }
    }

    // ---- parallel region extraction (§4.1) --------------------------------

    fn parallel_region(
        &mut self,
        dir: &Directive,
        body: &Stmt,
        syms: &Symbols,
    ) -> Result<(), ParseError> {
        let id = self.region_count;
        self.region_count += 1;
        let class = classify_region(dir, body, syms);

        // Captured variables: everything shared / firstprivate /
        // lastprivate / reduction that is declared outside.
        let mut captured: Vec<(String, VarScope, Decl)> = Vec::new();
        let mut names: Vec<&String> = class.scopes.keys().collect();
        names.sort();
        for name in names {
            let scope = class.scope_of(name);
            if matches!(scope, VarScope::Private) {
                continue;
            }
            if let Some(d) = syms.get(name) {
                captured.push((name.clone(), scope, d.clone()));
            }
        }

        // Call site: fill the argument struct and fork.
        self.line(&format!(
            "/* parallel region {id}: fork-join via the ParADE runtime */"
        ));
        self.line("{");
        self.indent += 1;
        self.line(&format!("struct __parade_region_{id}_args __a{id};"));
        for (name, _, _) in &captured {
            self.line(&format!("__a{id}.{name} = &{name};"));
        }
        self.line(&format!("parade_parallel(__parade_region_{id}, &__a{id});"));
        self.indent -= 1;
        self.line("}");

        // Region function, built into a side buffer.
        let mut r = String::new();
        let _ = writeln!(r, "struct __parade_region_{id}_args {{");
        for (name, _, d) in &captured {
            let _ = writeln!(r, "    {} (*{name}){};", type_text(&d.ty), dims_text(d));
        }
        let _ = writeln!(r, "}};");
        let _ = writeln!(r, "static void __parade_region_{id}(void *__arg)");

        // Emit the body through a nested emitter so indentation restarts.
        let mut inner = Emitter {
            mode: self.mode,
            threshold: self.threshold,
            out: String::new(),
            regions: String::new(),
            region_count: self.region_count,
            lock_count: self.lock_count,
            single_count: self.single_count,
            indent: 0,
            prog: self.prog,
        };
        inner.line("{");
        inner.indent += 1;
        inner.line(&format!(
            "struct __parade_region_{id}_args *__a = (struct __parade_region_{id}_args *)__arg;"
        ));
        // Bind captured pointers.
        for (name, _, d) in &captured {
            inner.line(&format!(
                "{} (*{name}){} = __a->{name};",
                type_text(&d.ty),
                dims_text(d)
            ));
        }
        // Private copies.
        let mut privs: Vec<&String> = class
            .scopes
            .iter()
            .filter(|(_, s)| matches!(s, VarScope::Private))
            .map(|(n, _)| n)
            .collect();
        privs.sort();
        for name in privs {
            if let Some(d) = syms.get(name) {
                inner.line(&format!("{};  /* private */", decl_text(d)));
            }
        }
        // Firstprivate initialization.
        for (name, scope, d) in &captured {
            if matches!(scope, VarScope::FirstPrivate) {
                inner.line(&format!(
                    "{} {name}__fp = *{name};  /* firstprivate */",
                    type_text(&d.ty)
                ));
            }
        }
        // Reduction locals.
        for (name, scope, d) in &captured {
            if let VarScope::Reduction(op) = scope {
                inner.line(&format!(
                    "{} {name}__red = {};  /* reduction({}) local */",
                    type_text(&d.ty),
                    red_identity_text(*op),
                    op.c_token()
                ));
            }
        }

        // For `parallel for`, the body is the loop itself.
        match dir.kind {
            DirKind::ParallelFor => {
                inner.worksharing_for(dir, body, syms, &class)?;
            }
            _ => inner.stmt(body, syms, Some(&class))?,
        }

        // Reduction epilogue.
        for (name, scope, _) in &captured {
            if let VarScope::Reduction(op) = scope {
                match self.mode {
                    EmitMode::Parade => inner.line(&format!(
                        "parade_atomic_double({name}, PARADE_{}, {name}__red);  /* reduction -> collective */",
                        red_tag(*op)
                    )),
                    EmitMode::Sdsm => {
                        let lk = inner.lock_count;
                        inner.lock_count += 1;
                        inner.line(&format!("sdsm_lock({lk});"));
                        inner.line(&format!("*{name} = *{name} {} {name}__red;", red_c_op(*op)));
                        inner.line(&format!("sdsm_unlock({lk});"));
                        inner.line("sdsm_barrier();");
                    }
                }
            }
        }
        inner.indent -= 1;
        inner.line("}");

        self.lock_count = inner.lock_count;
        self.single_count = inner.single_count;
        self.region_count = inner.region_count;
        r.push_str(&inner.out);
        r.push('\n');
        self.regions.push_str(&r);
        self.regions.push_str(&inner.regions);
        Ok(())
    }

    // ---- work-sharing for (§4.3) -------------------------------------------

    fn worksharing_for(
        &mut self,
        dir: &Directive,
        body: &Stmt,
        syms: &Symbols,
        class: &RegionClassification,
    ) -> Result<(), ParseError> {
        let Some(cl) = loop_of(body) else {
            return Err(ParseError {
                line: dir.line(),
                message: "work-shared loop is not in canonical form".into(),
            });
        };
        let lo = self.expr(&cl.lo, Some(class));
        let hi = self.expr(&cl.hi, Some(class));
        let var = &cl.var;
        self.line("{");
        self.indent += 1;
        self.line("long __lo, __hi;");
        match dir.schedule() {
            Sched::Static => self.line(&format!(
                "parade_loop_static({lo}, {hi}, &__lo, &__hi);  /* static schedule */"
            )),
            Sched::StaticChunk(c) => self.line(&format!(
                "parade_loop_static_chunk({lo}, {hi}, {c}, &__lo, &__hi);"
            )),
            Sched::Dynamic(c) => self.line(&format!("parade_loop_dynamic_init({lo}, {hi}, {c});")),
            Sched::Guided(c) => self.line(&format!("parade_loop_guided_init({lo}, {hi}, {c});")),
        }
        match dir.schedule() {
            Sched::Dynamic(_) | Sched::Guided(_) => {
                self.line("while (parade_loop_next(&__lo, &__hi)) {");
                self.indent += 1;
                self.line(&format!(
                    "for ({var} = __lo; {var} < __hi; {var} += {})",
                    cl.step
                ));
                self.stmt(&cl.body, syms, Some(class))?;
                self.indent -= 1;
                self.line("}");
            }
            _ => {
                self.line(&format!(
                    "for ({var} = __lo; {var} < __hi; {var} += {})",
                    cl.step
                ));
                self.stmt(&cl.body, syms, Some(class))?;
            }
        }
        self.indent -= 1;
        self.line("}");
        if !dir.nowait() {
            self.line(&format!(
                "{}  /* implicit barrier of omp for */",
                self.mode.barrier()
            ));
        }
        Ok(())
    }

    // ---- critical / atomic (§4.2, Figure 2) --------------------------------

    fn critical(
        &mut self,
        _dir: &Directive,
        body: &Stmt,
        syms: &Symbols,
        class: &RegionClassification,
    ) -> Result<(), ParseError> {
        let lowering = analyze_critical(body, class, syms, self.threshold);
        match (self.mode, lowering) {
            (EmitMode::Parade, CriticalLowering::Collective(updates)) => {
                self.line("/* critical: lexically analyzable, small data ->");
                self.line("   hierarchical pthread lock + collective update (Fig. 2) */");
                self.line("pthread_mutex_lock(&__parade_node_mutex);");
                for u in &updates {
                    let operand = self.expr(&u.operand, Some(class));
                    self.line(&format!(
                        "__parade_local_acc_double(&{t}, PARADE_{op}, {operand});",
                        t = u.target,
                        op = red_tag(u.op)
                    ));
                }
                self.line("pthread_mutex_unlock(&__parade_node_mutex);");
                for u in &updates {
                    self.line(&format!(
                        "parade_allreduce_double(&{t}, PARADE_{op});",
                        t = u.target,
                        op = red_tag(u.op)
                    ));
                }
                Ok(())
            }
            (EmitMode::Parade, CriticalLowering::Lock) => {
                let lk = self.lock_count;
                self.lock_count += 1;
                self.line("/* critical: not analyzable -> hierarchical lock fallback */");
                self.line("pthread_mutex_lock(&__parade_node_mutex);");
                self.line(&format!("parade_lock({lk});"));
                self.stmt(body, syms, Some(class))?;
                self.line(&format!("parade_unlock({lk});"));
                self.line("pthread_mutex_unlock(&__parade_node_mutex);");
                Ok(())
            }
            (EmitMode::Sdsm, _) => {
                let lk = self.lock_count;
                self.lock_count += 1;
                self.line("/* critical: conventional SDSM lock (Fig. 2 left) */");
                self.line(&format!("sdsm_lock({lk});"));
                self.stmt(body, syms, Some(class))?;
                self.line(&format!("sdsm_unlock({lk});"));
                Ok(())
            }
        }
    }

    fn atomic(
        &mut self,
        body: &Stmt,
        syms: &Symbols,
        class: &RegionClassification,
        line: usize,
    ) -> Result<(), ParseError> {
        let Stmt::Expr(e, _) = body else {
            return Err(ParseError {
                line,
                message: "atomic body must be an expression statement".into(),
            });
        };
        let Some(u) = crate::analysis::as_scalar_update(e) else {
            return Err(ParseError {
                line,
                message: "atomic body must be a scalar update x op= expr".into(),
            });
        };
        match self.mode {
            EmitMode::Parade => {
                let operand = self.expr(&u.operand, Some(class));
                self.line(&format!(
                    "parade_atomic_double(&{t}, PARADE_{op}, {operand});  /* atomic -> collective */",
                    t = u.target,
                    op = red_tag(u.op)
                ));
            }
            EmitMode::Sdsm => {
                let lk = self.lock_count;
                self.lock_count += 1;
                self.line(&format!("sdsm_lock({lk});"));
                self.stmt(body, syms, Some(class))?;
                self.line(&format!("sdsm_unlock({lk});"));
            }
        }
        Ok(())
    }

    // ---- single (Figure 3) ---------------------------------------------------

    fn single(
        &mut self,
        body: &Stmt,
        syms: &Symbols,
        class: &RegionClassification,
    ) -> Result<(), ParseError> {
        let sid = self.single_count;
        self.single_count += 1;
        match (self.mode, analyze_single(body, class, syms, self.threshold)) {
            (EmitMode::Parade, SingleLowering::Broadcast(targets)) => {
                self.line("/* single: small shared data -> pthread lock +");
                self.line("   broadcast, no barrier (Fig. 3) */");
                self.line("pthread_mutex_lock(&__parade_node_mutex);");
                self.line(&format!("if (parade_single_begin({sid})) {{"));
                self.indent += 1;
                self.line("if (parade_node() == 0)");
                self.stmt(body, syms, Some(class))?;
                for t in &targets {
                    self.line(&format!("parade_bcast(&{t}, sizeof({t}), 0);"));
                }
                self.line(&format!("parade_single_end({sid});"));
                self.indent -= 1;
                self.line("}");
                self.line("pthread_mutex_unlock(&__parade_node_mutex);");
                Ok(())
            }
            (EmitMode::Parade, SingleLowering::LockFlagBarrier) => {
                self.line("/* single: large data -> execute-once + barrier */");
                self.line(&format!("if (parade_single_begin({sid})) {{"));
                self.indent += 1;
                self.stmt(body, syms, Some(class))?;
                self.line(&format!("parade_single_end({sid});"));
                self.indent -= 1;
                self.line("}");
                self.line("parade_barrier();");
                Ok(())
            }
            (EmitMode::Sdsm, _) => {
                let lk = self.lock_count;
                self.lock_count += 1;
                self.line("/* single: conventional SDSM translation (Fig. 3 left):");
                self.line("   lock + shared flag + barrier */");
                self.line(&format!("sdsm_lock({lk});"));
                self.line(&format!("if (!sdsm_flag_test_and_set({sid})) {{"));
                self.indent += 1;
                self.stmt(body, syms, Some(class))?;
                self.indent -= 1;
                self.line("}");
                self.line(&format!("sdsm_unlock({lk});"));
                self.line("sdsm_barrier();");
                Ok(())
            }
        }
    }

    // ---- expressions -----------------------------------------------------------

    fn expr(&self, e: &Expr, region: Option<&RegionClassification>) -> String {
        match e {
            Expr::Int(v) => v.to_string(),
            Expr::Float(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains("inf") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Expr::Str(s) => format!("{s:?}"),
            Expr::Ident(n) => self.var_ref(n, region),
            Expr::Index(n, idx) => {
                let parts: Vec<String> = idx.iter().map(|i| self.expr(i, region)).collect();
                format!("{}[{}]", self.array_ref(n, region), parts.join("]["))
            }
            Expr::Call(f, args) => {
                let parts: Vec<String> = args.iter().map(|a| self.expr(a, region)).collect();
                format!("{f}({})", parts.join(", "))
            }
            Expr::Unary(op, a) => {
                let t = self.expr(a, region);
                match op {
                    UnOp::Neg => format!("(-{t})"),
                    UnOp::Not => format!("(!{t})"),
                }
            }
            Expr::Binary(op, a, b) => {
                format!(
                    "({} {} {})",
                    self.expr(a, region),
                    bin_text(*op),
                    self.expr(b, region)
                )
            }
            Expr::Cond(c, a, b) => format!(
                "({} ? {} : {})",
                self.expr(c, region),
                self.expr(a, region),
                self.expr(b, region)
            ),
            Expr::Assign(op, l, r) => {
                let lhs = self.expr(l, region);
                let rhs = self.expr(r, region);
                match op {
                    None => format!("{lhs} = {rhs}"),
                    Some(o) => format!("{lhs} {}= {rhs}", bin_text(*o)),
                }
            }
        }
    }

    /// A scalar reference: shared captured scalars are accessed through
    /// their pointer inside a region function.
    fn var_ref(&self, name: &str, region: Option<&RegionClassification>) -> String {
        if let Some(class) = region {
            match class.scope_of(name) {
                VarScope::Shared if !class.region_locals.contains(name) => {
                    return format!("(*{name})");
                }
                VarScope::FirstPrivate => return format!("{name}__fp"),
                VarScope::Reduction(_) => return format!("{name}__red"),
                _ => {}
            }
        }
        name.to_string()
    }

    fn array_ref(&self, name: &str, region: Option<&RegionClassification>) -> String {
        if let Some(class) = region {
            if matches!(class.scope_of(name), VarScope::Shared)
                && !class.region_locals.contains(name)
            {
                return format!("(*{name})");
            }
        }
        name.to_string()
    }
}

fn type_text(t: &Type) -> &'static str {
    match t {
        Type::Int => "int",
        Type::Long => "long",
        Type::Double => "double",
        Type::Void => "void",
    }
}

fn dims_text(d: &Decl) -> String {
    d.dims.iter().map(|n| format!("[{n}]")).collect()
}

fn decl_text(d: &Decl) -> String {
    let mut s = format!("{} {}{}", type_text(&d.ty), d.name, dims_text(d));
    if let Some(init) = &d.init {
        let e = Emitter {
            mode: EmitMode::Parade,
            threshold: DEFAULT_SMALL_THRESHOLD,
            out: String::new(),
            regions: String::new(),
            region_count: 0,
            lock_count: 0,
            single_count: 0,
            indent: 0,
            prog: &EMPTY_PROG,
        };
        let _ = write!(s, " = {}", e.expr(init, None));
    }
    s
}

static EMPTY_PROG: Program = Program {
    includes: Vec::new(),
    items: Vec::new(),
};

fn bin_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn red_tag(op: RedOp) -> &'static str {
    match op {
        RedOp::Add => "SUM",
        RedOp::Mul => "PROD",
        RedOp::Min => "MIN",
        RedOp::Max => "MAX",
    }
}

fn red_c_op(op: RedOp) -> &'static str {
    match op {
        RedOp::Add => "+",
        RedOp::Mul => "*",
        RedOp::Min | RedOp::Max => "/* min/max */",
    }
}

fn red_identity_text(op: RedOp) -> &'static str {
    match op {
        RedOp::Add => "0.0",
        RedOp::Mul => "1.0",
        RedOp::Min => "INFINITY",
        RedOp::Max => "-INFINITY",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const CRITICAL_SRC: &str = r#"
int main() {
    double sum = 0.0;
    double local = 1.0;
    #pragma omp parallel firstprivate(local)
    {
        #pragma omp critical
        { sum = sum + local; }
    }
    return 0;
}
"#;

    #[test]
    fn critical_parade_uses_collective() {
        let prog = parse(CRITICAL_SRC).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(
            out.contains("pthread_mutex_lock(&__parade_node_mutex);"),
            "{out}"
        );
        assert!(
            out.contains("parade_allreduce_double(&sum, PARADE_SUM);"),
            "{out}"
        );
        assert!(!out.contains("sdsm_lock"), "{out}");
    }

    #[test]
    fn critical_sdsm_uses_lock() {
        let prog = parse(CRITICAL_SRC).unwrap();
        let out = translate_default(&prog, EmitMode::Sdsm).unwrap();
        assert!(out.contains("sdsm_lock(0);"), "{out}");
        assert!(out.contains("sdsm_unlock(0);"), "{out}");
        assert!(!out.contains("allreduce"), "{out}");
    }

    const SINGLE_SRC: &str = r#"
int main() {
    double tol = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        { tol = 1e-7; }
    }
    return 0;
}
"#;

    #[test]
    fn single_parade_broadcasts_without_barrier() {
        let prog = parse(SINGLE_SRC).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(out.contains("parade_bcast(&tol"), "{out}");
        assert!(out.contains("parade_single_begin(0)"), "{out}");
        // No barrier in the single's lowering (the region's join barrier is
        // inside parade_parallel, not emitted here).
        assert!(!out.contains("parade_barrier();  /* implicit"), "{out}");
    }

    #[test]
    fn single_sdsm_has_flag_and_barrier() {
        let prog = parse(SINGLE_SRC).unwrap();
        let out = translate_default(&prog, EmitMode::Sdsm).unwrap();
        assert!(out.contains("sdsm_flag_test_and_set(0)"), "{out}");
        assert!(out.contains("sdsm_barrier();"), "{out}");
    }

    #[test]
    fn parallel_for_extracts_region_and_schedules() {
        let src = r#"
int main() {
    int i;
    double a[100];
    double sum = 0.0;
    #pragma omp parallel for reduction(+: sum)
    for (i = 0; i < 100; i++) sum += a[i];
    return 0;
}
"#;
        let prog = parse(src).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(out.contains("struct __parade_region_0_args"), "{out}");
        assert!(out.contains("parade_parallel(__parade_region_0"), "{out}");
        assert!(out.contains("parade_loop_static(0, 100"), "{out}");
        assert!(out.contains("double sum__red = 0.0;"), "{out}");
        assert!(
            out.contains("parade_atomic_double(sum, PARADE_SUM, sum__red);"),
            "{out}"
        );
        assert!(out.contains("sum__red += (*a)[i]"), "{out}");
    }

    #[test]
    fn atomic_maps_exactly_to_collective() {
        let src = r#"
int main() {
    double x = 0.0;
    #pragma omp parallel
    {
        #pragma omp atomic
        x += 2.0;
    }
    return 0;
}
"#;
        let prog = parse(src).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(
            out.contains("parade_atomic_double(&x, PARADE_SUM, 2.0);"),
            "{out}"
        );
    }

    #[test]
    fn threshold_zero_forces_lock_path() {
        let prog = parse(CRITICAL_SRC).unwrap();
        let out = translate(&prog, EmitMode::Parade, 0).unwrap();
        assert!(out.contains("parade_lock(0);"), "{out}");
        assert!(!out.contains("allreduce"), "{out}");
    }

    #[test]
    fn dynamic_schedule_emits_chunk_loop() {
        let src = r#"
int main() {
    int i;
    double a[64];
    #pragma omp parallel for schedule(dynamic, 4)
    for (i = 0; i < 64; i++) a[i] = 1.0;
    return 0;
}
"#;
        let prog = parse(src).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(out.contains("parade_loop_dynamic_init(0, 64, 4);"), "{out}");
        assert!(
            out.contains("while (parade_loop_next(&__lo, &__hi))"),
            "{out}"
        );
    }

    #[test]
    fn tasking_constructs_elide_serially() {
        let src = r#"
int main() {
    double x = 0.0;
    double buf[8];
    #pragma omp parallel
    {
        #pragma omp task depend(out: x)
        x = 1.0;
        #pragma omp taskwait
    }
    #pragma omp target device(1) map(tofrom: buf)
    { buf[0] = 2.0; }
    return 0;
}
"#;
        let prog = parse(src).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(out.contains("task depend(out:x)"), "{out}");
        assert!(
            out.contains("taskwait: no-op under serial elision"),
            "{out}"
        );
        assert!(out.contains("target device(1) map(tofrom:buf)"), "{out}");
    }

    #[test]
    fn nowait_suppresses_barrier() {
        let src = r#"
int main() {
    int i;
    double a[8];
    #pragma omp parallel
    {
        #pragma omp for nowait
        for (i = 0; i < 8; i++) a[i] = 1.0;
    }
    return 0;
}
"#;
        let prog = parse(src).unwrap();
        let out = translate_default(&prog, EmitMode::Parade).unwrap();
        assert!(!out.contains("implicit barrier"), "{out}");
    }
}
