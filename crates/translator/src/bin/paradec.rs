//! `paradec` — the ParADE OpenMP translator CLI.
//!
//! ```text
//! paradec translate <file.c> [--mode parade|sdsm] [--threshold N]
//! paradec run <file.c> [--nodes N] [--threads T] [--mode parade|sdsm] [--trace FILE]
//! paradec check <file.c>
//! ```
//!
//! `translate` prints the translated C source (Figures 2/3 style);
//! `run` interprets the program on a simulated cluster and prints its
//! output plus a runtime report; `check` parses and analyzes only.

use parade_core::{Cluster, NetProfile, ProtocolMode, TimeSource};
use parade_translator::emit::{translate, EmitMode};
use parade_translator::interp::Interp;
use parade_translator::parser::parse;

fn usage() -> ! {
    eprintln!(
        "usage:\n  paradec translate <file.c> [--mode parade|sdsm] [--threshold N]\n  \
         paradec run <file.c> [--nodes N] [--threads T] [--mode parade|sdsm] [--trace FILE]\n  \
         paradec check <file.c>\n\
  --trace FILE: record the run and write a Chrome trace_event file\n\
                (open in chrome://tracing or Perfetto); same as PARADE_TRACE=FILE"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let cmd = args[0].as_str();
    let file = &args[1];
    let mut mode = "parade".to_string();
    let mut nodes = 2usize;
    let mut threads = 2usize;
    let mut threshold = parade_translator::analysis::DEFAULT_SMALL_THRESHOLD;
    let mut trace_path: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                mode = args.get(i).unwrap_or_else(|| usage()).clone();
            }
            "--nodes" => {
                i += 1;
                nodes = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --nodes");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --threads");
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad --threshold");
            }
            _ => usage(),
        }
        i += 1;
    }

    let src = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("paradec: cannot read {file}: {e}");
        std::process::exit(1);
    });
    let prog = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("paradec: {file}: {e}");
            std::process::exit(1);
        }
    };

    match cmd {
        "check" => {
            println!(
                "{file}: ok ({} top-level items, {} includes)",
                prog.items.len(),
                prog.includes.len()
            );
        }
        "translate" => {
            let emit_mode = match mode.as_str() {
                "sdsm" => EmitMode::Sdsm,
                _ => EmitMode::Parade,
            };
            match translate(&prog, emit_mode, threshold) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("paradec: {file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "run" => {
            if let Some(path) = &trace_path {
                // The runtime reads this when the cluster launches.
                std::env::set_var("PARADE_TRACE", path);
            }
            let protocol = match mode.as_str() {
                "sdsm" => ProtocolMode::SdsmOnly,
                _ => ProtocolMode::Parade,
            };
            let cluster = Cluster::builder()
                .nodes(nodes)
                .threads_per_node(threads)
                .protocol(protocol)
                .net(NetProfile::clan_via())
                .time(TimeSource::ThreadCpu { scale: 60.0 })
                .build()
                .expect("cluster config");
            match Interp::new(prog).with_threshold(threshold).run(&cluster) {
                Ok(out) => {
                    print!("{}", out.stdout);
                    if let Some(path) = &trace_path {
                        eprintln!("[paradec] trace written to {path}");
                    }
                    eprintln!("[paradec] exit code {}", out.exit);
                    std::process::exit(out.exit as i32);
                }
                Err(e) => {
                    eprintln!("paradec: {file}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
