//! End-to-end interpreter tests: OpenMP C source → parse → analyze →
//! execute on a simulated ParADE cluster.

use parade_core::{Cluster, NetProfile, ProtocolMode, TimeSource};

use crate::interp::Interp;
use crate::parser::parse;

fn cluster(nodes: usize, tpn: usize, mode: ProtocolMode) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .protocol(mode)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(512 * parade_dsm::PAGE_SIZE)
        .build()
        .unwrap()
}

fn run_src(src: &str, nodes: usize, tpn: usize, mode: ProtocolMode) -> (i64, String) {
    let prog = parse(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    let out = Interp::new(prog)
        .run(&cluster(nodes, tpn, mode))
        .unwrap_or_else(|e| panic!("runtime error: {e}"));
    (out.exit, out.stdout)
}

#[test]
fn serial_arithmetic_and_printf() {
    let (exit, out) = run_src(
        r#"
int main() {
    int i;
    double s = 0.0;
    for (i = 1; i <= 4; i++) s += i * 0.5;
    printf("s = %.2f\n", s);
    return 7;
}
"#,
        1,
        1,
        ProtocolMode::Parade,
    );
    assert_eq!(exit, 7);
    assert_eq!(out, "s = 5.00\n");
}

#[test]
fn user_functions_and_builtins() {
    let (exit, out) = run_src(
        r#"
double square(double x) { return x * x; }
int main() {
    double v = square(3.0) + sqrt(16.0) + fabs(-1.0);
    printf("%d\n", v);
    return 0;
}
"#,
        1,
        1,
        ProtocolMode::Parade,
    );
    assert_eq!(exit, 0);
    assert_eq!(out, "14\n");
}

#[test]
fn parallel_for_reduction_sums() {
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let (_, out) = run_src(
            r#"
int main() {
    int i;
    double sum = 0.0;
    double a[100];
    #pragma omp parallel for
    for (i = 0; i < 100; i++) a[i] = i + 1;
    #pragma omp parallel for reduction(+: sum)
    for (i = 0; i < 100; i++) sum += a[i];
    printf("%.1f\n", sum);
    return 0;
}
"#,
            2,
            2,
            mode,
        );
        assert_eq!(out, "5050.0\n", "mode {mode:?}");
    }
}

#[test]
fn atomic_counts_all_threads() {
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let (_, out) = run_src(
            r#"
int main() {
    double hits = 0.0;
    #pragma omp parallel
    {
        #pragma omp atomic
        hits += 1.0;
    }
    printf("%d\n", hits);
    return 0;
}
"#,
            3,
            2,
            mode,
        );
        assert_eq!(out, "6\n", "mode {mode:?}");
    }
}

#[test]
fn critical_analyzable_maps_to_collective() {
    // Every thread contributes its id+1 through an analyzable critical.
    let (_, out) = run_src(
        r#"
int main() {
    double total = 0.0;
    #pragma omp parallel
    {
        double mine;
        mine = omp_get_thread_num() + 1;
        #pragma omp critical
        { total = total + mine; }
    }
    printf("%d\n", total);
    return 0;
}
"#,
        2,
        2,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "10\n");
}

#[test]
fn critical_with_array_write_uses_lock_path() {
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let (_, out) = run_src(
            r#"
int main() {
    double slots[8];
    int n = 4;
    #pragma omp parallel
    {
        #pragma omp critical
        { slots[0] = slots[0] + 1.0; slots[1] = slots[1] + 2.0; }
    }
    printf("%.0f %.0f\n", slots[0], slots[1]);
    return 0;
}
"#,
            2,
            2,
            mode,
        );
        assert_eq!(out, "4 8\n", "mode {mode:?}");
    }
}

#[test]
fn single_executes_once_and_value_propagates() {
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let (_, out) = run_src(
            r#"
int main() {
    double tol = 0.0;
    double seen = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        { tol = 1e-3; }
        #pragma omp atomic
        seen += tol;
    }
    printf("%.3f\n", seen);
    return 0;
}
"#,
            2,
            2,
            mode,
        );
        assert_eq!(out, "0.004\n", "mode {mode:?}");
    }
}

#[test]
fn master_and_barrier_directives() {
    let (_, out) = run_src(
        r#"
int main() {
    double flag = 0.0;
    double total = 0.0;
    #pragma omp parallel
    {
        #pragma omp master
        { flag = 5.0; }
        #pragma omp barrier
        #pragma omp atomic
        total += flag;
    }
    printf("%.0f\n", total);
    return 0;
}
"#,
        2,
        2,
        ProtocolMode::Parade,
    );
    // `flag` is written by a plain store inside the region -> HLRC storage;
    // after the barrier every thread reads 5.
    assert_eq!(out, "20\n");
}

#[test]
fn firstprivate_and_lastprivate() {
    let (_, out) = run_src(
        r#"
int main() {
    int i;
    double base = 10.0;
    double lastval = 0.0;
    double a[40];
    #pragma omp parallel for firstprivate(base) lastprivate(lastval)
    for (i = 0; i < 40; i++) {
        lastval = base + i;
        a[i] = lastval;
    }
    printf("%.0f %.0f\n", lastval, a[39]);
    return 0;
}
"#,
        2,
        2,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "49 49\n");
}

#[test]
fn schedules_produce_identical_results() {
    for sched in ["static", "static, 3", "dynamic, 5", "guided, 2"] {
        let src = format!(
            r#"
int main() {{
    int i;
    double sum = 0.0;
    #pragma omp parallel for reduction(+: sum) schedule({sched})
    for (i = 0; i < 200; i++) sum += i;
    printf("%.0f\n", sum);
    return 0;
}}
"#
        );
        let (_, out) = run_src(&src, 2, 2, ProtocolMode::Parade);
        assert_eq!(out, "19900\n", "schedule({sched})");
    }
}

#[test]
fn mini_jacobi_converges() {
    // A 1-D Jacobi relaxation: the translated program exercises shared
    // arrays (HLRC), reductions (collectives), and serial control between
    // regions — the Helmholtz pattern of §6.2 in miniature.
    let src = r#"
int main() {
    int i, it;
    double unew[64];
    double u[64];
    double err = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i++) u[i] = 0.0;
    u[0] = 1.0;
    u[63] = 1.0;
    for (it = 0; it < 200; it++) {
        err = 0.0;
        #pragma omp parallel for reduction(+: err)
        for (i = 1; i < 63; i++) {
            double r;
            r = 0.5 * (u[i-1] + u[i+1]) - u[i];
            unew[i] = u[i] + r;
            err += r * r;
        }
        #pragma omp parallel for
        for (i = 1; i < 63; i++) u[i] = unew[i];
    }
    printf("mid=%.4f err=%.6f\n", u[32], sqrt(err));
    return 0;
}
"#;
    for mode in [ProtocolMode::Parade, ProtocolMode::SdsmOnly] {
        let (_, out) = run_src(src, 2, 2, mode);
        // Steady state of the discrete Laplace equation with unit boundary
        // conditions is u = 1 everywhere; Jacobi information diffuses about
        // √t points in t sweeps, so after 200 sweeps the midpoint (32 away
        // from the boundary) has only started to rise.
        let mid: f64 = out
            .split("mid=")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mid > 0.01 && mid <= 1.0, "mode {mode:?}: {out}");
    }
}

#[test]
fn modes_agree_bitwise_on_deterministic_program() {
    let src = r#"
int main() {
    int i;
    double sum = 0.0;
    double a[128];
    #pragma omp parallel for
    for (i = 0; i < 128; i++) a[i] = sin(i * 0.1);
    #pragma omp parallel for reduction(+: sum)
    for (i = 0; i < 128; i++) sum += a[i] * a[i];
    printf("%.9f\n", sum);
    return 0;
}
"#;
    let (_, a) = run_src(src, 2, 2, ProtocolMode::Parade);
    let (_, b) = run_src(src, 2, 2, ProtocolMode::SdsmOnly);
    assert_eq!(a, b);
}

#[test]
fn omp_query_functions() {
    let (_, out) = run_src(
        r#"
int main() {
    double maxid = 0.0;
    #pragma omp parallel
    {
        double me;
        me = omp_get_thread_num();
        #pragma omp critical
        { maxid = maxid + me; }
    }
    printf("%d\n", maxid);
    return 0;
}
"#,
        2,
        3,
        ProtocolMode::Parade,
    );
    // Thread ids 0..5 sum to 15.
    assert_eq!(out, "15\n");
}

#[test]
fn runtime_errors_are_reported() {
    let prog = parse(
        r#"
int main() {
    double a[4];
    a[9] = 1.0;
    return 0;
}
"#,
    )
    .unwrap();
    let err = Interp::new(prog)
        .run(&cluster(1, 1, ProtocolMode::Parade))
        .unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}

#[test]
fn int_semantics_division_and_modulo() {
    let (_, out) = run_src(
        r#"
int main() {
    int a = 17, b = 5;
    printf("%d %d %d\n", a / b, a % b, a * b);
    return 0;
}
"#,
        1,
        1,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "3 2 85\n");
}

// ---- tasking constructs -----------------------------------------------------

#[test]
fn task_and_taskwait_execute_undeferred() {
    let (_, out) = run_src(
        r#"
int main() {
    double x = 0.0;
    #pragma omp parallel
    {
        #pragma omp master
        {
            #pragma omp task
            { x = 1.0; }
            #pragma omp task depend(in: x)
            { x = x + 2.0; }
            #pragma omp taskwait
        }
    }
    printf("%.1f\n", x);
    return 0;
}
"#,
        2,
        2,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "3.0\n");
}

#[test]
fn task_dep_chain_at_serial_scope() {
    // task/target are legal outside parallel regions (a team of one).
    let (_, out) = run_src(
        r#"
int main() {
    double v = 1.0;
    #pragma omp task depend(out: v)
    v = v * 3.0;
    #pragma omp task depend(inout: v)
    v = v + 1.0;
    #pragma omp taskwait
    printf("%.1f\n", v);
    return 0;
}
"#,
        1,
        1,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "4.0\n");
}

#[test]
fn target_with_device_and_map_runs() {
    let (_, out) = run_src(
        r#"
int main() {
    double buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = i;
    #pragma omp target device(1) map(tofrom: buf)
    {
        for (i = 0; i < 8; i++) buf[i] = buf[i] * 2.0;
    }
    printf("%.0f %.0f\n", buf[0], buf[7]);
    return 0;
}
"#,
        2,
        1,
        ProtocolMode::Parade,
    );
    assert_eq!(out, "0 14\n");
}

#[test]
fn target_device_out_of_range_is_an_error() {
    let prog = parse(
        r#"
int main() {
    double x = 0.0;
    #pragma omp target device(5)
    x = 1.0;
    return 0;
}
"#,
    )
    .unwrap();
    let err = Interp::new(prog)
        .run(&cluster(2, 1, ProtocolMode::Parade))
        .unwrap_err();
    assert!(err.message.contains("out of range"), "{err}");
}

#[test]
fn barrier_inside_task_body_is_rejected() {
    let prog = parse(
        r#"
int main() {
    #pragma omp parallel
    {
        #pragma omp task
        {
            #pragma omp barrier
        }
    }
    return 0;
}
"#,
    )
    .unwrap();
    let err = Interp::new(prog)
        .run(&cluster(1, 2, ProtocolMode::Parade))
        .unwrap_err();
    assert!(err.message.contains("closely nested"), "{err}");
}

#[test]
fn map_clause_names_must_exist() {
    let prog = parse(
        r#"
int main() {
    double x = 0.0;
    #pragma omp target map(to: nosuch)
    x = 1.0;
    return 0;
}
"#,
    )
    .unwrap();
    let err = Interp::new(prog)
        .run(&cluster(1, 1, ProtocolMode::Parade))
        .unwrap_err();
    assert!(err.message.contains("undefined variable nosuch"), "{err}");
}

#[test]
fn oracle_flags_unguarded_task_writes_and_clears_depend() {
    // Two tasks on different threads writing the same shared scalar: a race
    // without depend, ordered with it.
    let racy = r#"
int main() {
    double acc = 0.0;
    double a[64];
    int i;
    #pragma omp parallel private(i)
    {
        #pragma omp task
        { acc = acc + 1.0; }
    }
    return 0;
}
"#;
    let prog = parse(racy).unwrap();
    let out = Interp::new(prog)
        .with_oracle()
        .run(&cluster(1, 2, ProtocolMode::Parade))
        .unwrap();
    assert!(
        !out.races.is_empty(),
        "expected a race on the unguarded task write"
    );

    let clean = r#"
int main() {
    double acc = 0.0;
    double a[64];
    int i;
    #pragma omp parallel private(i)
    {
        #pragma omp task depend(inout: acc)
        { acc = acc + 1.0; }
    }
    return 0;
}
"#;
    let prog = parse(clean).unwrap();
    let out = Interp::new(prog)
        .with_oracle()
        .run(&cluster(1, 2, ProtocolMode::Parade))
        .unwrap();
    assert!(
        out.races.is_empty(),
        "depend edges order the writes: {:?}",
        out.races
    );
}
