//! `cargo bench` entry point that regenerates every paper figure at CI
//! scale (quick sizes) and prints the tables. For full-size sweeps use the
//! `figures` binary:
//!
//! ```text
//! cargo run --release -p parade-bench --bin figures -- all --class a
//! ```
//!
//! Set `PARADE_BENCH_JSON=1` to also write `BENCH_paper_figures.json`.

use parade_bench::{all_figures, write_tables_json, FigureOpts};

fn main() {
    // Respect `cargo bench -- --test` style filtering minimally: any
    // argument containing "skip" skips the sweep (used by CI smoke runs).
    if std::env::args().any(|a| a.contains("skip")) {
        println!("paper_figures: skipped");
        return;
    }
    let opts = FigureOpts {
        nodes: vec![1, 2, 4, 8],
        ..FigureOpts::quick()
    };
    println!("# ParADE paper figures (quick sizes — shapes, not absolutes)\n");
    let tables = all_figures(&opts);
    for t in &tables {
        println!("{}", t.markdown());
    }
    write_tables_json("paper_figures", &tables);
}
