//! Release-path microbenchmarks: what a barrier/lock release actually costs
//! once diffs are batched per home.
//!
//! Two kinds of results land in `BENCH_dsm.json`:
//!
//! * `release/...` and `barrier/...` — **deterministic simulated metrics**
//!   (virtual time and fabric message counts), recorded via
//!   `Bench::record`. Virtual time is machine-independent, so CI gates on
//!   the `release/` family against a committed baseline
//!   (`scripts/bench_baseline/BENCH_dsm.json`, enforced by the
//!   `bench_gate` binary). Batched and unbatched variants are emitted side
//!   by side so the win is visible in one file.
//! * `tasks/...` — **deterministic simulated metrics** of the distributed
//!   work-stealing task scheduler (spawn-sync latency, per-task steal and
//!   n-body phase costs at 4–64 nodes), driven single-threaded round-robin
//!   so virtual time replays identically everywhere. Gated like `coll/`,
//!   including the doubling shape rule on the `_{N}n` families.
//! * `wall/...` — host wall-clock latency of the same release path,
//!   median-of-N. Informational only: wall time is not gated.
//!
//! `cargo bench -p parade-bench --bench dsm [filter]`; set
//! `PARADE_BENCH_JSON=<dir>` to write the JSON.

use std::sync::Arc;

use parade_dsm::{spawn_comm_thread, Dsm, DsmConfig, HomePolicy, ProtoSelect, PAGE_SIZE};
use parade_mpi::{CollectiveTopology, Communicator, ReduceOp};
use parade_net::{Fabric, NetProfile, VClock};
use parade_tasks::{NodeSched, SchedConfig, StealStrategy, Step, TaskCtx, TaskDesc};
use parade_testkit::bench::{Bench, BenchOpts};

/// Node counts for the `coll/` scaling families. The 256-node rung spawns
/// hundreds of OS threads, so it only runs in release-mode bench builds.
fn coll_sizes() -> &'static [usize] {
    if cfg!(debug_assertions) {
        &[16, 32, 64, 128]
    } else {
        &[16, 32, 64, 128, 256]
    }
}

/// Miniature cluster harness: one application thread plus one communication
/// thread per node (the cluster_tests pattern, usable outside the crate).
fn run_nodes<R: Send + 'static>(
    n: usize,
    cfg: DsmConfig,
    profile: NetProfile,
    f: impl Fn(Arc<Dsm>, &mut VClock) -> R + Send + Sync + 'static,
) -> Vec<R> {
    run_nodes_counted(n, cfg, profile, f).0
}

/// Like [`run_nodes`], but also return the total messages all nodes sent —
/// summed *after* the communication threads joined, so in-flight replies
/// and barrier-departure fan-outs are all accounted for and the count is a
/// pure function of the protocol (no snapshot race).
fn run_nodes_counted<R: Send + 'static>(
    n: usize,
    cfg: DsmConfig,
    profile: NetProfile,
    f: impl Fn(Arc<Dsm>, &mut VClock) -> R + Send + Sync + 'static,
) -> (Vec<R>, u64) {
    let fabric = Fabric::new(n, profile);
    let dsms: Vec<Arc<Dsm>> = (0..n)
        .map(|i| Arc::new(Dsm::new(fabric.endpoint(i), cfg)))
        .collect();
    let comm_handles: Vec<_> = dsms
        .iter()
        .map(|d| spawn_comm_thread(Arc::clone(d)))
        .collect();
    let f = Arc::new(f);
    let app_handles: Vec<_> = dsms
        .iter()
        .map(|d| {
            let d = Arc::clone(d);
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let mut clock = VClock::manual();
                f(d, &mut clock)
            })
        })
        .collect();
    let results = app_handles.into_iter().map(|h| h.join().unwrap()).collect();
    fabric.begin_shutdown();
    for h in comm_handles {
        h.join().unwrap();
    }
    let total_msgs = dsms
        .iter()
        .map(|d| d.endpoint().local_stats().snapshot().sent.msgs)
        .sum();
    (results, total_msgs)
}

fn release_cfg(pages: usize, batched: bool) -> DsmConfig {
    DsmConfig {
        pool_bytes: (pages + 8) * PAGE_SIZE,
        // Fixed homes keep every page on node 0, so node 1's release has a
        // single destination — the pure batching scenario.
        home_policy: HomePolicy::Fixed,
        batch_diffs: batched,
        ..DsmConfig::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ReleaseMetrics {
    /// Virtual nanoseconds node 1 spends inside `flush`.
    flush_vtime_ns: u64,
    /// DSM messages node 1 sent during the flush.
    flush_msgs: u64,
    /// Replies node 1 waited on during the flush.
    flush_acks: u64,
    /// Wire bytes of the shipped diff messages.
    diff_wire_bytes: u64,
    /// Modified bytes carried inside those diffs.
    diff_payload_bytes: u64,
}

/// One 2-node release with `pages` dirty pages homed on the peer; fully
/// deterministic (single blocking request stream, virtual clocks).
fn release_metrics(pages: usize, batched: bool) -> ReleaseMetrics {
    let out = run_nodes(
        2,
        release_cfg(pages, batched),
        NetProfile::clan_via(),
        move |d, clk| {
            let r = d.alloc_region(pages * PAGE_SIZE).unwrap();
            d.barrier(clk);
            let mut m = ReleaseMetrics::default();
            if d.node() == 1 {
                for p in 0..pages {
                    // Touch two words per page (non-zero, so every page
                    // yields a diff): a sparse, realistic release.
                    d.write::<i64>(r, p * PAGE_SIZE, p as i64 + 1, clk);
                    d.write::<i64>(r, p * PAGE_SIZE + 1024, p as i64 + 1, clk);
                }
                let net0 = d.endpoint().local_stats().snapshot();
                let s0 = d.stats.snapshot();
                let t0 = clk.now();
                d.flush(clk);
                let t1 = clk.now();
                let net1 = d.endpoint().local_stats().snapshot();
                let s1 = d.stats.snapshot();
                m = ReleaseMetrics {
                    flush_vtime_ns: t1.saturating_sub(t0).as_nanos(),
                    flush_msgs: net1.sent.msgs - net0.sent.msgs,
                    flush_acks: net1.received.msgs - net0.received.msgs,
                    diff_wire_bytes: s1.diff_bytes - s0.diff_bytes,
                    diff_payload_bytes: s1.diff_payload_bytes - s0.diff_payload_bytes,
                };
            }
            d.barrier(clk);
            m
        },
    );
    out[1]
}

/// Virtual time of one all-writers barrier round at `nodes` nodes (each node
/// dirties its own stripe of pages). Cross-node barriers carry a small
/// arrival-ordering jitter in virtual time, so these are informational.
fn barrier_vtime_ns(nodes: usize, pages_per_node: usize) -> u64 {
    let total = nodes * pages_per_node;
    let cfg = DsmConfig {
        pool_bytes: (total + 8) * PAGE_SIZE,
        home_policy: HomePolicy::Fixed,
        ..DsmConfig::default()
    };
    let out = run_nodes(nodes, cfg, NetProfile::clan_via(), move |d, clk| {
        let r = d.alloc_region(total * PAGE_SIZE).unwrap();
        d.barrier(clk);
        let node = d.node();
        for p in 0..pages_per_node {
            let page = node * pages_per_node + p;
            d.write::<i64>(r, page * PAGE_SIZE, page as i64, clk);
        }
        let t0 = clk.now();
        d.barrier(clk);
        clk.now().saturating_sub(t0).as_nanos()
    });
    // The master's view: it waits for everyone, so it sees the full cost.
    out[0]
}

fn record_release_family(b: &mut Bench) {
    for &pages in &[1usize, 8, 32] {
        for &batched in &[true, false] {
            let tag = if batched { "batched" } else { "unbatched" };
            let m = release_metrics(pages, batched);
            b.record(
                &format!("release/flush_vtime_ns_{pages}p_{tag}"),
                m.flush_vtime_ns as f64,
            );
            b.record(
                &format!("release/flush_vtime_ns_per_page_{pages}p_{tag}"),
                m.flush_vtime_ns as f64 / pages as f64,
            );
            b.record(
                &format!("release/flush_msgs_{pages}p_{tag}"),
                m.flush_msgs as f64,
            );
            b.record(
                &format!("release/flush_acks_{pages}p_{tag}"),
                m.flush_acks as f64,
            );
            b.record(
                &format!("release/diff_wire_bytes_{pages}p_{tag}"),
                m.diff_wire_bytes as f64,
            );
            b.record(
                &format!("release/diff_payload_bytes_{pages}p_{tag}"),
                m.diff_payload_bytes as f64,
            );
        }
    }
}

fn record_barrier_family(b: &mut Bench) {
    for &nodes in &[2usize, 4, 8] {
        b.record(
            &format!("barrier/vtime_ns_{nodes}n_4p"),
            barrier_vtime_ns(nodes, 4) as f64,
        );
    }
}

/// Virtual time of one steady-state DSM barrier (no dirty pages, no
/// protocol traffic in flight) at `nodes` nodes. Fully deterministic: tree
/// contributions are charged in a sorted fold, so real-time service order
/// cannot leak into the metric.
fn dsm_barrier_steady_vtime_ns(nodes: usize, hierarchical: bool) -> u64 {
    let cfg = DsmConfig {
        pool_bytes: 16 * PAGE_SIZE,
        hierarchical_barrier: hierarchical,
        ..DsmConfig::default()
    };
    const ITERS: u64 = 4;
    let out = run_nodes(nodes, cfg, NetProfile::clan_via(), move |d, clk| {
        d.barrier(clk); // warm-up: align all clocks on the first departure
        let t0 = clk.now();
        for _ in 0..ITERS {
            d.barrier(clk);
        }
        clk.now().saturating_sub(t0).as_nanos() / ITERS
    });
    out[0]
}

/// Virtual time per operation of the MPI two-level collectives, measured
/// thread-per-rank over an SMP topology of 4-rank chassis. Deterministic:
/// the intra-chassis combine reconciles clocks like a pthread barrier and
/// the leader phases are tag-matched. Reported as the slowest rank's view.
fn mpi_coll_vtime_ns(ranks: usize, op: &'static str) -> u64 {
    let fabric = Fabric::new(ranks, NetProfile::clan_via());
    let topo = Arc::new(CollectiveTopology::uniform(ranks, 4));
    const ITERS: u64 = 4;
    let handles: Vec<_> = (0..ranks)
        .map(|r| {
            let comm = Communicator::with_topology(fabric.endpoint(r), Arc::clone(&topo));
            std::thread::spawn(move || {
                let mut clk = VClock::manual();
                let mut buf = vec![0.5f64; 256];
                comm.barrier(&mut clk); // warm-up alignment
                let t0 = clk.now();
                for _ in 0..ITERS {
                    match op {
                        "barrier" => comm.barrier(&mut clk),
                        "bcast" => comm.bcast_f64s(0, &mut buf, &mut clk),
                        "allreduce" => {
                            let _ = comm.allreduce_f64(r as f64, ReduceOp::Sum, &mut clk);
                        }
                        _ => unreachable!(),
                    }
                }
                clk.now().saturating_sub(t0).as_nanos() / ITERS
            })
        })
        .collect();
    let worst = handles.into_iter().map(|h| h.join().unwrap()).max();
    fabric.begin_shutdown();
    worst.unwrap()
}

/// The `coll/` scaling families: gated by `bench_gate` against the
/// committed baseline *and* against the ⌈log₂N⌉ shape rule (successive
/// node-count doublings must cost < 1.7x). `flat/` twins are informational
/// — they document what the hierarchy buys.
fn record_coll_family(b: &mut Bench) {
    for &n in coll_sizes() {
        b.record(
            &format!("coll/dsm_barrier_vtime_ns_{n}n"),
            dsm_barrier_steady_vtime_ns(n, true) as f64,
        );
        for op in ["barrier", "bcast", "allreduce"] {
            b.record(
                &format!("coll/{op}_vtime_ns_{n}n"),
                mpi_coll_vtime_ns(n, op) as f64,
            );
        }
    }
    for &n in &[16usize, 64] {
        b.record(
            &format!("flat/dsm_barrier_vtime_ns_{n}n"),
            dsm_barrier_steady_vtime_ns(n, false) as f64,
        );
    }
}

/// Node counts for the `tasks/` scaling families. Single-threaded
/// round-robin driving, so even 64 schedulers are cheap in debug builds.
const TASK_SIZES: &[usize] = &[4, 8, 16, 32, 64];

/// Drive `nnodes` task schedulers round-robin from this thread until every
/// node holds the merged phase result. One deterministic schedule: message
/// delivery order is fixed by the polling order and the seeded victim
/// choice, so the virtual clocks replay identically on every host.
/// Returns (slowest node's virtual time in ns, merged task count).
fn task_phase_vtime_ns(
    nnodes: usize,
    cfg: SchedConfig,
    spawn: impl Fn(&mut NodeSched, &mut VClock),
) -> (u64, usize) {
    let fabric = Fabric::new(nnodes, NetProfile::clan_via());
    let mut scheds: Vec<NodeSched> = (0..nnodes)
        .map(|n| NodeSched::new(Arc::new(Communicator::new(fabric.endpoint(n))), cfg))
        .collect();
    let mut clocks: Vec<VClock> = (0..nnodes).map(|_| VClock::manual()).collect();
    // The task bodies carry no virtual cost: the families below measure
    // pure scheduling overhead (ship/steal/complete/merge protocol).
    let mut ex = |d: &TaskDesc, _t: &mut TaskCtx, _c: &mut VClock| vec![d.id as f64];
    for n in 0..nnodes {
        spawn(&mut scheds[n], &mut clocks[n]);
        scheds[n].body_done();
    }
    type IdResults = Vec<(u64, Vec<f64>)>;
    let mut merged: Vec<Option<IdResults>> = vec![None; nnodes];
    while merged.iter().any(|m| m.is_none()) {
        for n in 0..nnodes {
            if merged[n].is_none() && scheds[n].step(&mut ex, &mut clocks[n]) == Step::Finished {
                merged[n] = scheds[n].take_merged();
            }
        }
    }
    let ntasks = merged[0].as_ref().expect("merged").len();
    let vtime = clocks.iter().map(|c| c.now().as_nanos()).max().unwrap_or(0);
    fabric.begin_shutdown();
    (vtime, ntasks)
}

fn flat_cfg() -> SchedConfig {
    SchedConfig {
        strategy: StealStrategy::Flat,
        ..SchedConfig::default()
    }
}

/// The `tasks/` families: deterministic virtual-time costs of the
/// distributed work-stealing scheduler, gated like `coll/`.
///
/// * `spawn_sync` — fixed latency of a minimal phase (one task, two
///   nodes): spawn, ship, execute, token termination, result merge.
/// * `steal_vtime_ns_per_task_{N}n` — steal throughput: node 0 spawns
///   8·N tasks and every other node acquires work exclusively by random
///   stealing. Per-task cost must stay flat as the cluster doubles — the
///   victim serves steals in batches, so a regression to one-task-per-
///   round-trip shipping breaks the 1.7x shape bound.
/// * `nbody_vtime_ns_per_task_{N}n` — the n-body kernel's phase shape:
///   2·N force blocks spawned round-robin by their owner nodes under flat
///   placement, merged once per step. Per-task cost must stay flat as
///   nodes and blocks double together.
fn record_tasks_family(b: &mut Bench) {
    let (vt, nt) = task_phase_vtime_ns(2, flat_cfg(), |s, c| {
        if s.node() == 0 {
            s.spawn(0, vec![1], c);
        }
    });
    assert_eq!(nt, 1);
    b.record("tasks/spawn_sync_vtime_ns_2n", vt as f64);

    for &n in TASK_SIZES {
        let total = 8 * n;
        let (vt, nt) = task_phase_vtime_ns(n, SchedConfig::default(), move |s, c| {
            if s.node() == 0 {
                for i in 0..total as u64 {
                    s.spawn(0, vec![i], c);
                }
            }
        });
        assert_eq!(nt, total);
        b.record(
            &format!("tasks/steal_vtime_ns_per_task_{n}n"),
            vt as f64 / total as f64,
        );
    }

    for &n in TASK_SIZES {
        let blocks = 2 * n;
        let (vt, nt) = task_phase_vtime_ns(n, flat_cfg(), move |s, c| {
            let nn = s.node();
            for blk in 0..blocks as u64 {
                if blk as usize % n == nn {
                    s.spawn(0, vec![blk, blocks as u64], c);
                }
            }
        });
        assert_eq!(nt, blocks);
        b.record(
            &format!("tasks/nbody_vtime_ns_per_task_{n}n"),
            vt as f64 / blocks as f64,
        );
    }
}

/// Per-page-at-a-time read sweep over `pages` remote pages (all homed on
/// node 0 under `Fixed`): the fault storm a naive stencil sweep pays. With
/// stride prefetch the predictor confirms the unit stride after a few
/// demand misses and turns the remaining faults into ranged speculative
/// fetches plus local hits. Single requester + hierarchical barrier keep
/// the virtual times and message counts deterministic.
#[derive(Debug, Clone, Copy, Default)]
struct SweepMetrics {
    sweep_vtime_ns: u64,
    /// DSM/Ctl messages node 1 sent during the sweep (fetch round trips).
    sweep_msgs: u64,
    range_fetches: u64,
    prefetch_hits: u64,
}

fn sweep_metrics(pages: usize, prefetch: bool) -> SweepMetrics {
    let cfg = DsmConfig {
        pool_bytes: (pages + 8) * PAGE_SIZE,
        home_policy: HomePolicy::Fixed,
        hierarchical_barrier: true,
        stride_prefetch: prefetch,
        ..DsmConfig::default()
    };
    let out = run_nodes(2, cfg, NetProfile::clan_via(), move |d, clk| {
        let r = d.alloc_region(pages * PAGE_SIZE).unwrap();
        d.barrier(clk);
        let mut m = SweepMetrics::default();
        if d.node() == 1 {
            let mut buf = vec![0i64; PAGE_SIZE / 8];
            let net0 = d.endpoint().local_stats().snapshot();
            let s0 = d.stats.snapshot();
            let t0 = clk.now();
            for p in 0..pages {
                // One call per page: the access stream the predictor sees.
                d.read_slice::<i64>(r, p * (PAGE_SIZE / 8), &mut buf, clk);
            }
            let t1 = clk.now();
            let net1 = d.endpoint().local_stats().snapshot();
            let s1 = d.stats.snapshot();
            m = SweepMetrics {
                sweep_vtime_ns: t1.saturating_sub(t0).as_nanos(),
                sweep_msgs: net1.sent.msgs - net0.sent.msgs,
                range_fetches: s1.range_fetches - s0.range_fetches,
                prefetch_hits: s1.prefetch_hits - s0.prefetch_hits,
            };
        }
        d.barrier(clk);
        m
    });
    out[1]
}

fn record_fault_storm_family(b: &mut Bench) {
    const PAGES: usize = 64;
    let demand = sweep_metrics(PAGES, false);
    let pf = sweep_metrics(PAGES, true);
    b.record(
        "fault_storm/sweep_vtime_ns_64p_demand",
        demand.sweep_vtime_ns as f64,
    );
    b.record(
        "fault_storm/sweep_vtime_ns_64p_prefetch",
        pf.sweep_vtime_ns as f64,
    );
    b.record(
        "fault_storm/sweep_msgs_64p_demand",
        demand.sweep_msgs as f64,
    );
    b.record("fault_storm/sweep_msgs_64p_prefetch", pf.sweep_msgs as f64);
    b.record("fault_storm/range_fetch_trips_64p", pf.range_fetches as f64);
    b.record("fault_storm/prefetch_hits_64p", pf.prefetch_hits as f64);
    assert!(
        pf.prefetch_hits > 0,
        "unit-stride sweep must produce prefetch hits"
    );
    // The gated margin: prefetch must beat the demand-paged sweep. Lower is
    // better, so a lost win raises the ratio past the baseline band.
    let ratio = pf.sweep_vtime_ns as f64 / demand.sweep_vtime_ns as f64 * 100.0;
    assert!(ratio < 100.0, "prefetch sweep slower than demand paging");
    b.record("fault_storm/vtime_ratio_pct", ratio);
}

#[derive(Debug, Clone, Copy, Default)]
struct AdaptMetrics {
    /// Slowest node's virtual time over the measured intervals.
    vtime_ns: u64,
    /// Messages all nodes sent over the measured intervals.
    msgs: u64,
}

/// Drive `intervals` write/read rounds under one [`ProtoSelect`] mode and
/// return the steady-state cost. Reader turns are staggered by barriers so
/// every request stream has a single concurrent client — virtual times and
/// message counts replay exactly.
///
/// * `migratory: false` — write-broadcast: node 0 (the fixed home) writes
///   every page, nodes 1 and 2 re-read them each interval. Update pushes
///   replace both readers' refetch round trips.
/// * `migratory: true` — producer/consumer pair: after one all-nodes read
///   interval poisons the sharer history, only nodes 1 and 2 touch the
///   pages (alternating writer/reader). `AllUpdate` keeps pushing to the
///   stale sharers 3..6 forever (its sharer set never clears); adaptive
///   re-measures readership at probation and pushes to the live pair only.
fn adapt_run(select: ProtoSelect, migratory: bool, intervals: usize) -> (u64, u64) {
    let nodes = if migratory { 6 } else { 4 };
    const PAGES: usize = 4;
    let cfg = DsmConfig {
        pool_bytes: (PAGES + 8) * PAGE_SIZE,
        home_policy: HomePolicy::Fixed,
        hierarchical_barrier: true,
        stride_prefetch: false,
        proto_select: select,
        ..DsmConfig::default()
    };
    let (out, total_msgs) = run_nodes_counted(nodes, cfg, NetProfile::clan_via(), move |d, clk| {
        let r = d.alloc_region(PAGES * PAGE_SIZE).unwrap();
        d.barrier(clk);
        let node = d.node();
        let mut buf = vec![0i64; PAGE_SIZE / 8];
        for i in 0..intervals {
            let (writer, readers): (usize, &[usize]) = if migratory {
                if i == 0 {
                    // Poison interval: everyone reads once.
                    (0, &[1, 2, 3, 4, 5])
                } else if i % 2 == 1 {
                    (1, &[2])
                } else {
                    (2, &[1])
                }
            } else {
                (0, &[1, 2])
            };
            if node == writer {
                for p in 0..PAGES {
                    d.write::<i64>(r, p * PAGE_SIZE, (i * PAGES + p) as i64 + 1, clk);
                }
            }
            d.barrier(clk); // the write notices drive this barrier's decision
            for &rd in readers {
                if node == rd {
                    for p in 0..PAGES {
                        d.read_slice::<i64>(r, p * (PAGE_SIZE / 8), &mut buf, clk);
                    }
                }
                d.barrier(clk);
            }
        }
        clk.now().as_nanos()
    });
    (out.into_iter().max().unwrap_or(0), total_msgs)
}

fn adapt_metrics(select: ProtoSelect, migratory: bool) -> AdaptMetrics {
    const WARM: usize = 2;
    const MEASURED: usize = 8;
    // Message counts are summed after full quiesce, so the measured-phase
    // cost is the difference of two complete runs — no mid-run snapshot
    // can race the root's departure fan-out.
    let (vt_full, msgs_full) = adapt_run(select, migratory, WARM + MEASURED);
    let (vt_warm, msgs_warm) = adapt_run(select, migratory, WARM);
    AdaptMetrics {
        vtime_ns: vt_full.saturating_sub(vt_warm),
        msgs: msgs_full - msgs_warm,
    }
}

fn record_adapt_family(b: &mut Bench) {
    // Write-broadcast: adaptive must beat all-invalidate.
    let ad = adapt_metrics(ProtoSelect::Adaptive, false);
    let inv = adapt_metrics(ProtoSelect::AllInvalidate, false);
    b.record("adapt/bcast_msgs_adaptive", ad.msgs as f64);
    b.record("adapt/bcast_msgs_invalidate", inv.msgs as f64);
    // Virtual times of concurrent push/fetch traffic carry sub-percent
    // service-order jitter, so they live in the ungated `adapt_info/`
    // family; the gated margins are the exact message counts and ratios.
    b.record("adapt_info/bcast_vtime_ns_adaptive", ad.vtime_ns as f64);
    b.record("adapt_info/bcast_vtime_ns_invalidate", inv.vtime_ns as f64);
    let ratio = ad.msgs as f64 / inv.msgs as f64 * 100.0;
    assert!(
        ratio < 100.0,
        "adaptive sent {} msgs vs all-invalidate {} on the broadcast workload",
        ad.msgs,
        inv.msgs
    );
    b.record("adapt/bcast_msg_ratio_pct", ratio);

    // Producer/consumer with stale sharers: adaptive must beat all-update.
    let ad = adapt_metrics(ProtoSelect::Adaptive, true);
    let upd = adapt_metrics(ProtoSelect::AllUpdate, true);
    b.record("adapt/migratory_msgs_adaptive", ad.msgs as f64);
    b.record("adapt/migratory_msgs_update", upd.msgs as f64);
    b.record("adapt_info/migratory_vtime_ns_adaptive", ad.vtime_ns as f64);
    b.record("adapt_info/migratory_vtime_ns_update", upd.vtime_ns as f64);
    let ratio = ad.msgs as f64 / upd.msgs as f64 * 100.0;
    assert!(
        ratio < 100.0,
        "adaptive sent {} msgs vs all-update {} on the migratory workload",
        ad.msgs,
        upd.msgs
    );
    b.record("adapt/migratory_msg_ratio_pct", ratio);
}

fn bench_wall_flush(b: &mut Bench) {
    for &batched in &[true, false] {
        let tag = if batched { "batched" } else { "unbatched" };
        b.bench(&format!("wall/release_32p_{tag}"), move || {
            std::hint::black_box(release_metrics(32, batched));
        });
    }
}

fn main() {
    let mut b = Bench::from_args("dsm").with_opts(BenchOpts {
        samples: 7,
        warmup_batches: 1,
        target_batch_ns: 50_000_000,
        max_iters_per_batch: 16,
    });
    record_release_family(&mut b);
    record_barrier_family(&mut b);
    record_coll_family(&mut b);
    record_tasks_family(&mut b);
    record_fault_storm_family(&mut b);
    record_adapt_family(&mut b);
    bench_wall_flush(&mut b);
    b.finish();
}
