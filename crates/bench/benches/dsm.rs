//! Release-path microbenchmarks: what a barrier/lock release actually costs
//! once diffs are batched per home.
//!
//! Two kinds of results land in `BENCH_dsm.json`:
//!
//! * `release/...` and `barrier/...` — **deterministic simulated metrics**
//!   (virtual time and fabric message counts), recorded via
//!   `Bench::record`. Virtual time is machine-independent, so CI gates on
//!   the `release/` family against a committed baseline
//!   (`scripts/bench_baseline/BENCH_dsm.json`, enforced by the
//!   `bench_gate` binary). Batched and unbatched variants are emitted side
//!   by side so the win is visible in one file.
//! * `tasks/...` — **deterministic simulated metrics** of the distributed
//!   work-stealing task scheduler (spawn-sync latency, per-task steal and
//!   n-body phase costs at 4–64 nodes), driven single-threaded round-robin
//!   so virtual time replays identically everywhere. Gated like `coll/`,
//!   including the doubling shape rule on the `_{N}n` families.
//! * `wall/...` — host wall-clock latency of the same release path,
//!   median-of-N. Informational only: wall time is not gated.
//!
//! `cargo bench -p parade-bench --bench dsm [filter]`; set
//! `PARADE_BENCH_JSON=<dir>` to write the JSON.

use std::sync::Arc;

use parade_dsm::{spawn_comm_thread, Dsm, DsmConfig, HomePolicy, PAGE_SIZE};
use parade_mpi::{CollectiveTopology, Communicator, ReduceOp};
use parade_net::{Fabric, NetProfile, VClock};
use parade_tasks::{NodeSched, SchedConfig, StealStrategy, Step, TaskCtx, TaskDesc};
use parade_testkit::bench::{Bench, BenchOpts};

/// Node counts for the `coll/` scaling families. The 256-node rung spawns
/// hundreds of OS threads, so it only runs in release-mode bench builds.
fn coll_sizes() -> &'static [usize] {
    if cfg!(debug_assertions) {
        &[16, 32, 64, 128]
    } else {
        &[16, 32, 64, 128, 256]
    }
}

/// Miniature cluster harness: one application thread plus one communication
/// thread per node (the cluster_tests pattern, usable outside the crate).
fn run_nodes<R: Send + 'static>(
    n: usize,
    cfg: DsmConfig,
    profile: NetProfile,
    f: impl Fn(Arc<Dsm>, &mut VClock) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let fabric = Fabric::new(n, profile);
    let dsms: Vec<Arc<Dsm>> = (0..n)
        .map(|i| Arc::new(Dsm::new(fabric.endpoint(i), cfg)))
        .collect();
    let comm_handles: Vec<_> = dsms
        .iter()
        .map(|d| spawn_comm_thread(Arc::clone(d)))
        .collect();
    let f = Arc::new(f);
    let app_handles: Vec<_> = dsms
        .iter()
        .map(|d| {
            let d = Arc::clone(d);
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let mut clock = VClock::manual();
                f(d, &mut clock)
            })
        })
        .collect();
    let results = app_handles.into_iter().map(|h| h.join().unwrap()).collect();
    fabric.begin_shutdown();
    for h in comm_handles {
        h.join().unwrap();
    }
    results
}

fn release_cfg(pages: usize, batched: bool) -> DsmConfig {
    DsmConfig {
        pool_bytes: (pages + 8) * PAGE_SIZE,
        // Fixed homes keep every page on node 0, so node 1's release has a
        // single destination — the pure batching scenario.
        home_policy: HomePolicy::Fixed,
        batch_diffs: batched,
        ..DsmConfig::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ReleaseMetrics {
    /// Virtual nanoseconds node 1 spends inside `flush`.
    flush_vtime_ns: u64,
    /// DSM messages node 1 sent during the flush.
    flush_msgs: u64,
    /// Replies node 1 waited on during the flush.
    flush_acks: u64,
    /// Wire bytes of the shipped diff messages.
    diff_wire_bytes: u64,
    /// Modified bytes carried inside those diffs.
    diff_payload_bytes: u64,
}

/// One 2-node release with `pages` dirty pages homed on the peer; fully
/// deterministic (single blocking request stream, virtual clocks).
fn release_metrics(pages: usize, batched: bool) -> ReleaseMetrics {
    let out = run_nodes(
        2,
        release_cfg(pages, batched),
        NetProfile::clan_via(),
        move |d, clk| {
            let r = d.alloc_region(pages * PAGE_SIZE).unwrap();
            d.barrier(clk);
            let mut m = ReleaseMetrics::default();
            if d.node() == 1 {
                for p in 0..pages {
                    // Touch two words per page (non-zero, so every page
                    // yields a diff): a sparse, realistic release.
                    d.write::<i64>(r, p * PAGE_SIZE, p as i64 + 1, clk);
                    d.write::<i64>(r, p * PAGE_SIZE + 1024, p as i64 + 1, clk);
                }
                let net0 = d.endpoint().local_stats().snapshot();
                let s0 = d.stats.snapshot();
                let t0 = clk.now();
                d.flush(clk);
                let t1 = clk.now();
                let net1 = d.endpoint().local_stats().snapshot();
                let s1 = d.stats.snapshot();
                m = ReleaseMetrics {
                    flush_vtime_ns: t1.saturating_sub(t0).as_nanos(),
                    flush_msgs: net1.sent.msgs - net0.sent.msgs,
                    flush_acks: net1.received.msgs - net0.received.msgs,
                    diff_wire_bytes: s1.diff_bytes - s0.diff_bytes,
                    diff_payload_bytes: s1.diff_payload_bytes - s0.diff_payload_bytes,
                };
            }
            d.barrier(clk);
            m
        },
    );
    out[1]
}

/// Virtual time of one all-writers barrier round at `nodes` nodes (each node
/// dirties its own stripe of pages). Cross-node barriers carry a small
/// arrival-ordering jitter in virtual time, so these are informational.
fn barrier_vtime_ns(nodes: usize, pages_per_node: usize) -> u64 {
    let total = nodes * pages_per_node;
    let cfg = DsmConfig {
        pool_bytes: (total + 8) * PAGE_SIZE,
        home_policy: HomePolicy::Fixed,
        ..DsmConfig::default()
    };
    let out = run_nodes(nodes, cfg, NetProfile::clan_via(), move |d, clk| {
        let r = d.alloc_region(total * PAGE_SIZE).unwrap();
        d.barrier(clk);
        let node = d.node();
        for p in 0..pages_per_node {
            let page = node * pages_per_node + p;
            d.write::<i64>(r, page * PAGE_SIZE, page as i64, clk);
        }
        let t0 = clk.now();
        d.barrier(clk);
        clk.now().saturating_sub(t0).as_nanos()
    });
    // The master's view: it waits for everyone, so it sees the full cost.
    out[0]
}

fn record_release_family(b: &mut Bench) {
    for &pages in &[1usize, 8, 32] {
        for &batched in &[true, false] {
            let tag = if batched { "batched" } else { "unbatched" };
            let m = release_metrics(pages, batched);
            b.record(
                &format!("release/flush_vtime_ns_{pages}p_{tag}"),
                m.flush_vtime_ns as f64,
            );
            b.record(
                &format!("release/flush_vtime_ns_per_page_{pages}p_{tag}"),
                m.flush_vtime_ns as f64 / pages as f64,
            );
            b.record(
                &format!("release/flush_msgs_{pages}p_{tag}"),
                m.flush_msgs as f64,
            );
            b.record(
                &format!("release/flush_acks_{pages}p_{tag}"),
                m.flush_acks as f64,
            );
            b.record(
                &format!("release/diff_wire_bytes_{pages}p_{tag}"),
                m.diff_wire_bytes as f64,
            );
            b.record(
                &format!("release/diff_payload_bytes_{pages}p_{tag}"),
                m.diff_payload_bytes as f64,
            );
        }
    }
}

fn record_barrier_family(b: &mut Bench) {
    for &nodes in &[2usize, 4, 8] {
        b.record(
            &format!("barrier/vtime_ns_{nodes}n_4p"),
            barrier_vtime_ns(nodes, 4) as f64,
        );
    }
}

/// Virtual time of one steady-state DSM barrier (no dirty pages, no
/// protocol traffic in flight) at `nodes` nodes. Fully deterministic: tree
/// contributions are charged in a sorted fold, so real-time service order
/// cannot leak into the metric.
fn dsm_barrier_steady_vtime_ns(nodes: usize, hierarchical: bool) -> u64 {
    let cfg = DsmConfig {
        pool_bytes: 16 * PAGE_SIZE,
        hierarchical_barrier: hierarchical,
        ..DsmConfig::default()
    };
    const ITERS: u64 = 4;
    let out = run_nodes(nodes, cfg, NetProfile::clan_via(), move |d, clk| {
        d.barrier(clk); // warm-up: align all clocks on the first departure
        let t0 = clk.now();
        for _ in 0..ITERS {
            d.barrier(clk);
        }
        clk.now().saturating_sub(t0).as_nanos() / ITERS
    });
    out[0]
}

/// Virtual time per operation of the MPI two-level collectives, measured
/// thread-per-rank over an SMP topology of 4-rank chassis. Deterministic:
/// the intra-chassis combine reconciles clocks like a pthread barrier and
/// the leader phases are tag-matched. Reported as the slowest rank's view.
fn mpi_coll_vtime_ns(ranks: usize, op: &'static str) -> u64 {
    let fabric = Fabric::new(ranks, NetProfile::clan_via());
    let topo = Arc::new(CollectiveTopology::uniform(ranks, 4));
    const ITERS: u64 = 4;
    let handles: Vec<_> = (0..ranks)
        .map(|r| {
            let comm = Communicator::with_topology(fabric.endpoint(r), Arc::clone(&topo));
            std::thread::spawn(move || {
                let mut clk = VClock::manual();
                let mut buf = vec![0.5f64; 256];
                comm.barrier(&mut clk); // warm-up alignment
                let t0 = clk.now();
                for _ in 0..ITERS {
                    match op {
                        "barrier" => comm.barrier(&mut clk),
                        "bcast" => comm.bcast_f64s(0, &mut buf, &mut clk),
                        "allreduce" => {
                            let _ = comm.allreduce_f64(r as f64, ReduceOp::Sum, &mut clk);
                        }
                        _ => unreachable!(),
                    }
                }
                clk.now().saturating_sub(t0).as_nanos() / ITERS
            })
        })
        .collect();
    let worst = handles.into_iter().map(|h| h.join().unwrap()).max();
    fabric.begin_shutdown();
    worst.unwrap()
}

/// The `coll/` scaling families: gated by `bench_gate` against the
/// committed baseline *and* against the ⌈log₂N⌉ shape rule (successive
/// node-count doublings must cost < 1.7x). `flat/` twins are informational
/// — they document what the hierarchy buys.
fn record_coll_family(b: &mut Bench) {
    for &n in coll_sizes() {
        b.record(
            &format!("coll/dsm_barrier_vtime_ns_{n}n"),
            dsm_barrier_steady_vtime_ns(n, true) as f64,
        );
        for op in ["barrier", "bcast", "allreduce"] {
            b.record(
                &format!("coll/{op}_vtime_ns_{n}n"),
                mpi_coll_vtime_ns(n, op) as f64,
            );
        }
    }
    for &n in &[16usize, 64] {
        b.record(
            &format!("flat/dsm_barrier_vtime_ns_{n}n"),
            dsm_barrier_steady_vtime_ns(n, false) as f64,
        );
    }
}

/// Node counts for the `tasks/` scaling families. Single-threaded
/// round-robin driving, so even 64 schedulers are cheap in debug builds.
const TASK_SIZES: &[usize] = &[4, 8, 16, 32, 64];

/// Drive `nnodes` task schedulers round-robin from this thread until every
/// node holds the merged phase result. One deterministic schedule: message
/// delivery order is fixed by the polling order and the seeded victim
/// choice, so the virtual clocks replay identically on every host.
/// Returns (slowest node's virtual time in ns, merged task count).
fn task_phase_vtime_ns(
    nnodes: usize,
    cfg: SchedConfig,
    spawn: impl Fn(&mut NodeSched, &mut VClock),
) -> (u64, usize) {
    let fabric = Fabric::new(nnodes, NetProfile::clan_via());
    let mut scheds: Vec<NodeSched> = (0..nnodes)
        .map(|n| NodeSched::new(Arc::new(Communicator::new(fabric.endpoint(n))), cfg))
        .collect();
    let mut clocks: Vec<VClock> = (0..nnodes).map(|_| VClock::manual()).collect();
    // The task bodies carry no virtual cost: the families below measure
    // pure scheduling overhead (ship/steal/complete/merge protocol).
    let mut ex = |d: &TaskDesc, _t: &mut TaskCtx, _c: &mut VClock| vec![d.id as f64];
    for n in 0..nnodes {
        spawn(&mut scheds[n], &mut clocks[n]);
        scheds[n].body_done();
    }
    type IdResults = Vec<(u64, Vec<f64>)>;
    let mut merged: Vec<Option<IdResults>> = vec![None; nnodes];
    while merged.iter().any(|m| m.is_none()) {
        for n in 0..nnodes {
            if merged[n].is_none() && scheds[n].step(&mut ex, &mut clocks[n]) == Step::Finished {
                merged[n] = scheds[n].take_merged();
            }
        }
    }
    let ntasks = merged[0].as_ref().expect("merged").len();
    let vtime = clocks.iter().map(|c| c.now().as_nanos()).max().unwrap_or(0);
    fabric.begin_shutdown();
    (vtime, ntasks)
}

fn flat_cfg() -> SchedConfig {
    SchedConfig {
        strategy: StealStrategy::Flat,
        ..SchedConfig::default()
    }
}

/// The `tasks/` families: deterministic virtual-time costs of the
/// distributed work-stealing scheduler, gated like `coll/`.
///
/// * `spawn_sync` — fixed latency of a minimal phase (one task, two
///   nodes): spawn, ship, execute, token termination, result merge.
/// * `steal_vtime_ns_per_task_{N}n` — steal throughput: node 0 spawns
///   8·N tasks and every other node acquires work exclusively by random
///   stealing. Per-task cost must stay flat as the cluster doubles — the
///   victim serves steals in batches, so a regression to one-task-per-
///   round-trip shipping breaks the 1.7x shape bound.
/// * `nbody_vtime_ns_per_task_{N}n` — the n-body kernel's phase shape:
///   2·N force blocks spawned round-robin by their owner nodes under flat
///   placement, merged once per step. Per-task cost must stay flat as
///   nodes and blocks double together.
fn record_tasks_family(b: &mut Bench) {
    let (vt, nt) = task_phase_vtime_ns(2, flat_cfg(), |s, c| {
        if s.node() == 0 {
            s.spawn(0, vec![1], c);
        }
    });
    assert_eq!(nt, 1);
    b.record("tasks/spawn_sync_vtime_ns_2n", vt as f64);

    for &n in TASK_SIZES {
        let total = 8 * n;
        let (vt, nt) = task_phase_vtime_ns(n, SchedConfig::default(), move |s, c| {
            if s.node() == 0 {
                for i in 0..total as u64 {
                    s.spawn(0, vec![i], c);
                }
            }
        });
        assert_eq!(nt, total);
        b.record(
            &format!("tasks/steal_vtime_ns_per_task_{n}n"),
            vt as f64 / total as f64,
        );
    }

    for &n in TASK_SIZES {
        let blocks = 2 * n;
        let (vt, nt) = task_phase_vtime_ns(n, flat_cfg(), move |s, c| {
            let nn = s.node();
            for blk in 0..blocks as u64 {
                if blk as usize % n == nn {
                    s.spawn(0, vec![blk, blocks as u64], c);
                }
            }
        });
        assert_eq!(nt, blocks);
        b.record(
            &format!("tasks/nbody_vtime_ns_per_task_{n}n"),
            vt as f64 / blocks as f64,
        );
    }
}

fn bench_wall_flush(b: &mut Bench) {
    for &batched in &[true, false] {
        let tag = if batched { "batched" } else { "unbatched" };
        b.bench(&format!("wall/release_32p_{tag}"), move || {
            std::hint::black_box(release_metrics(32, batched));
        });
    }
}

fn main() {
    let mut b = Bench::from_args("dsm").with_opts(BenchOpts {
        samples: 7,
        warmup_batches: 1,
        target_batch_ns: 50_000_000,
        max_iters_per_batch: 16,
    });
    record_release_family(&mut b);
    record_barrier_family(&mut b);
    record_coll_family(&mut b);
    record_tasks_family(&mut b);
    bench_wall_flush(&mut b);
    b.finish();
}
