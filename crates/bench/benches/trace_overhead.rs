//! Per-event cost of `parade-trace` instrumentation, enabled vs disabled.
//!
//! The disabled fast path is a single branch on one `Relaxed` atomic load
//! (`trace::enabled()`), so the `disabled/*` rows must sit within noise of
//! the `baseline/no_instrumentation` row — that is the property the runtime
//! relies on to leave instrumentation compiled into every hot path.
//!
//! `cargo bench -p parade-bench --bench trace_overhead`; set
//! `PARADE_BENCH_JSON=1` to also write `BENCH_trace_overhead.json`.

use parade_net::VTime;
use parade_testkit::bench::Bench;
use parade_trace::{self as trace, EventKind, TraceConfig};

fn main() {
    let mut b = Bench::from_args("trace_overhead");

    // Reference: the loop body with no instrumentation call at all.
    let mut x = 0u64;
    b.bench("baseline/no_instrumentation", move || {
        x = x.wrapping_add(1);
        std::hint::black_box(x);
    });

    // Disabled recording: the enabled() branch rejects immediately.
    assert!(!trace::enabled(), "no session may be active here");
    let mut x = 0u64;
    b.bench("disabled/instant", move || {
        x = x.wrapping_add(1);
        trace::instant(EventKind::DsmReadFault, x, VTime(x));
        std::hint::black_box(x);
    });
    let mut x = 0u64;
    b.bench("disabled/span_begin_end", move || {
        x = x.wrapping_add(1);
        trace::begin(EventKind::OmpBarrier, VTime(x));
        trace::end(EventKind::OmpBarrier, VTime(x + 1));
        std::hint::black_box(x);
    });

    // Enabled recording: the full path — thread-local ring lookup, wall
    // clock stamp, ring push (wrapping once the ring fills).
    let session = trace::start(TraceConfig { capacity: 1 << 12 }).expect("no other session active");
    let mut x = 0u64;
    b.bench("enabled/instant", move || {
        x = x.wrapping_add(1);
        trace::instant(EventKind::DsmReadFault, x, VTime(x));
        std::hint::black_box(x);
    });
    let mut x = 0u64;
    b.bench("enabled/span_begin_end", move || {
        x = x.wrapping_add(1);
        trace::begin(EventKind::OmpBarrier, VTime(x));
        trace::end(EventKind::OmpBarrier, VTime(x + 1));
        std::hint::black_box(x);
    });
    let data = session.finish();
    println!(
        "# enabled rows recorded {} events ({} dropped by ring wrap, as designed)",
        data.event_count(),
        data.dropped()
    );

    b.finish();
}
