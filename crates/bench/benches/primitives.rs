//! Microbenchmarks of the implementation's hot primitives (real wall-clock
//! performance of this library, not simulated time): diff
//! creation/application, the NAS RNG, the shared-access fast path, the
//! collective algorithms at zero network cost, and the loop partitioner.
//!
//! Runs on the `parade-testkit` bench harness (no external crates): calibrated
//! batches, warmup, median-of-N. `cargo bench -p parade-bench --bench
//! primitives [filter]`; set `PARADE_BENCH_JSON=1` to also write
//! `BENCH_primitives.json`.

use parade_core::partition;
use parade_dsm::{Diff, PAGE_SIZE};
use parade_kernels::nasrng::NasRng;
use parade_testkit::bench::Bench;

fn bench_diff(b: &mut Bench) {
    let twin = vec![0u8; PAGE_SIZE];
    let mut cur = twin.clone();
    // Sparse modification: 16 scattered words.
    for i in 0..16 {
        cur[i * 256] = 1;
    }
    b.bench("diff/create_sparse_page", || {
        std::hint::black_box(Diff::create(
            std::hint::black_box(&twin),
            std::hint::black_box(&cur),
        ));
    });
    let mut dense = twin.clone();
    for v in dense.iter_mut() {
        *v = 7;
    }
    b.bench("diff/create_dense_page", || {
        std::hint::black_box(Diff::create(
            std::hint::black_box(&twin),
            std::hint::black_box(&dense),
        ));
    });
    let d = Diff::create(&twin, &cur);
    b.bench_batched(
        "diff/apply_sparse_page",
        || twin.clone(),
        |mut t| d.apply(std::hint::black_box(&mut t)),
    );
}

fn bench_rng(b: &mut Bench) {
    let mut r = NasRng::nas(314159265);
    b.bench("nasrng/next_f64", move || {
        std::hint::black_box(r.next_f64());
    });
    let r = NasRng::nas(314159265);
    b.bench("nasrng/skip_2^40", move || {
        std::hint::black_box(r.at_offset(1 << 40));
    });
}

fn bench_partition(b: &mut Bench) {
    b.bench("scheduler/partition", || {
        let mut acc = 0usize;
        for i in 0..16 {
            let r = partition(std::hint::black_box(0..1_000_000), 16, i);
            acc += r.len();
        }
        std::hint::black_box(acc);
    });
}

fn bench_shared_access(b: &mut Bench) {
    use parade_core::{Cluster, NetProfile, TimeSource};
    // One-node cluster: measures the software fault-check fast path.
    let cluster = Cluster::builder()
        .nodes(1)
        .threads_per_node(1)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(4 << 20)
        .build()
        .unwrap();
    b.bench("dsm/fast_path_read_1M", move || {
        cluster.run(|g| {
            let v = g.alloc_f64(4096);
            g.parallel(move |tc| {
                let bv = tc.bind_f64(&v);
                for i in 0..4096 {
                    bv.set(i, i as f64);
                }
                let mut acc = 0.0;
                for _ in 0..256 {
                    for i in 0..4096 {
                        acc += bv.get(i);
                    }
                }
                std::hint::black_box(acc);
            });
        });
    });
}

fn bench_collectives(b: &mut Bench) {
    use parade_mpi::{Communicator, ReduceOp};
    use parade_net::{Fabric, NetProfile, VClock};
    use std::sync::Arc;
    // Real wall-time cost of an 8-way allreduce through the fabric.
    b.bench("mpi/allreduce_8ranks_wallclock", || {
        let fabric = Fabric::new(8, NetProfile::zero());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let comm = Communicator::new(fabric.endpoint(i));
                std::thread::spawn(move || {
                    let mut clk = VClock::manual();
                    let mut acc = 0.0;
                    for k in 0..16 {
                        acc += comm.allreduce_f64(k as f64, ReduceOp::Sum, &mut clk);
                    }
                    acc
                })
            })
            .collect();
        let out: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        std::hint::black_box(out);
        std::hint::black_box(Arc::strong_count(&fabric));
    });
}

fn main() {
    let mut b = Bench::from_args("primitives");
    bench_diff(&mut b);
    bench_rng(&mut b);
    bench_partition(&mut b);
    bench_shared_access(&mut b);
    bench_collectives(&mut b);
    b.finish();
}
