//! Criterion microbenchmarks of the implementation's hot primitives (real
//! wall-clock performance of this library, not simulated time): diff
//! creation/application, page copies, the shared-access fast path, the
//! collective algorithms at zero network cost, and the loop partitioner.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use parade_core::partition;
use parade_dsm::{Diff, PAGE_SIZE};
use parade_kernels::nasrng::NasRng;

fn bench_diff(c: &mut Criterion) {
    let twin = vec![0u8; PAGE_SIZE];
    let mut cur = twin.clone();
    // Sparse modification: 16 scattered words.
    for i in 0..16 {
        cur[i * 256] = 1;
    }
    c.bench_function("diff/create_sparse_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&twin), std::hint::black_box(&cur)))
    });
    let mut dense = twin.clone();
    for v in dense.iter_mut() {
        *v = 7;
    }
    c.bench_function("diff/create_dense_page", |b| {
        b.iter(|| Diff::create(std::hint::black_box(&twin), std::hint::black_box(&dense)))
    });
    let d = Diff::create(&twin, &cur);
    c.bench_function("diff/apply_sparse_page", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut t| d.apply(std::hint::black_box(&mut t)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("nasrng/next_f64", |b| {
        let mut r = NasRng::nas(314159265);
        b.iter(|| std::hint::black_box(r.next_f64()))
    });
    c.bench_function("nasrng/skip_2^40", |b| {
        let r = NasRng::nas(314159265);
        b.iter(|| std::hint::black_box(r.at_offset(1 << 40)))
    });
}

fn bench_partition(c: &mut Criterion) {
    c.bench_function("scheduler/partition", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..16 {
                let r = partition(std::hint::black_box(0..1_000_000), 16, i);
                acc += r.len();
            }
            acc
        })
    });
}

fn bench_shared_access(c: &mut Criterion) {
    use parade_core::{Cluster, NetProfile, TimeSource};
    // One-node cluster: measures the software fault-check fast path.
    let cluster = Cluster::builder()
        .nodes(1)
        .threads_per_node(1)
        .net(NetProfile::zero())
        .time(TimeSource::Manual)
        .pool_bytes(4 << 20)
        .build()
        .unwrap();
    c.bench_function("dsm/fast_path_read_1M", |b| {
        b.iter(|| {
            cluster.run(|g| {
                let v = g.alloc_f64(4096);
                g.parallel(move |tc| {
                    let bv = tc.bind_f64(&v);
                    for i in 0..4096 {
                        bv.set(i, i as f64);
                    }
                    let mut acc = 0.0;
                    for _ in 0..256 {
                        for i in 0..4096 {
                            acc += bv.get(i);
                        }
                    }
                    std::hint::black_box(acc);
                });
            })
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    use parade_mpi::{Communicator, ReduceOp};
    use parade_net::{Fabric, NetProfile, VClock};
    use std::sync::Arc;
    // Real wall-time cost of an 8-way allreduce through the fabric.
    c.bench_function("mpi/allreduce_8ranks_wallclock", |b| {
        b.iter(|| {
            let fabric = Fabric::new(8, NetProfile::zero());
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let comm = Communicator::new(fabric.endpoint(i));
                    std::thread::spawn(move || {
                        let mut clk = VClock::manual();
                        let mut acc = 0.0;
                        for k in 0..16 {
                            acc += comm.allreduce_f64(k as f64, ReduceOp::Sum, &mut clk);
                        }
                        acc
                    })
                })
                .collect();
            let out: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            std::hint::black_box(out);
            Arc::strong_count(&fabric)
        })
    });
}

criterion_group!(
    benches,
    bench_diff,
    bench_rng,
    bench_partition,
    bench_shared_access,
    bench_collectives
);
criterion_main!(benches);
