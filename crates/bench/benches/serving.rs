//! Serving-layer benchmarks: what gang scheduling, backfill, and
//! checkpoint/re-home failure survival cost at batch scale.
//!
//! Three kinds of results land in `BENCH_serving.json`:
//!
//! * `serve/...` — **simulated metrics** of the canonical 100-job soak
//!   (virtual makespan, mean latency/wait, completion count). Jobs run
//!   on virtual clocks over the simulated fabric, so completions are
//!   exact and the virtual times are machine-independent up to the
//!   sub-percent arrival-ordering jitter cross-node barriers carry — far
//!   inside the gate's tolerance band. Gated by `bench_gate` against
//!   `scripts/bench_baseline/BENCH_serving.json`.
//! * `serve_info/...` — re-home and power-cycle counts. A scheduled
//!   death fires only if its link carries `after_seq` messages before
//!   the job finishes, and per-link message counts vary with OS thread
//!   interleaving inside the DSM protocol, so these drift by a job or
//!   two run-to-run (~±15% of a ~13-event schedule) — real information,
//!   too noisy for a 20% gate. Recorded, not gated.
//! * `serve/lossy_...` — the same soak under the pinned lossy chaos
//!   schedule: the ARQ's seeded retransmissions stretch virtual time
//!   deterministically, so the chaos premium is itself a gated metric.
//! * `wall/...` — host wall-clock of one full soak, median-of-N.
//!   Informational only.
//!
//! Metric names deliberately avoid the `_{N}n` suffix: the soak is one
//! fixed-size batch, not a node-count scaling family, so the log₂N shape
//! rule must not apply to it.
//!
//! `cargo bench -p parade-bench --bench serving`; set
//! `PARADE_BENCH_JSON=<dir>` to write the JSON.

use parade_net::ChaosProfile;
use parade_serve::{soak, SoakConfig, SoakSummary};
use parade_testkit::bench::{Bench, BenchOpts};

/// The canonical soak the gate pins: 100 jobs, 12 machine nodes, one in
/// seven jobs scheduled to lose a node. Kept identical to
/// `SoakConfig::default()` on purpose — tests, the CI smoke, and this
/// bench all exercise one schedule.
fn canonical(chaos: ChaosProfile) -> SoakConfig {
    SoakConfig {
        chaos,
        ..SoakConfig::default()
    }
}

fn check(s: &SoakSummary, label: &str) {
    assert!(
        s.ok(),
        "{label}: soak must stay exactly-once and bit-identical: {s:?}"
    );
    assert!(
        s.rehomed_jobs > 0,
        "{label}: the death schedule never fired — nothing was survived: {s:?}"
    );
}

fn record_soak(b: &mut Bench, prefix: &str, s: &SoakSummary) {
    b.record(
        &format!("serve/{prefix}makespan_vtime_ns"),
        s.makespan.as_nanos() as f64,
    );
    b.record(
        &format!("serve/{prefix}mean_latency_vtime_ns"),
        s.mean_latency_ns as f64,
    );
    b.record(
        &format!("serve/{prefix}mean_wait_vtime_ns"),
        s.mean_wait_ns as f64,
    );
    // Schedule-dependent counts (see module docs): recorded, not gated.
    b.record(
        &format!("serve_info/{prefix}rehome_events"),
        s.rehomes as f64,
    );
    b.record(
        &format!("serve_info/{prefix}rehomed_jobs"),
        s.rehomed_jobs as f64,
    );
    b.record(
        &format!("serve_info/{prefix}dead_nodes_power_cycled"),
        s.dead_nodes as f64,
    );
    b.record(
        &format!("serve/{prefix}completed_once"),
        s.completed_once as f64,
    );
}

fn main() {
    let mut b = Bench::from_args("serving").with_opts(BenchOpts {
        samples: 5,
        warmup_batches: 0,
        target_batch_ns: 50_000_000,
        max_iters_per_batch: 4,
    });

    // Clean wire: the scheduling + survival cost in isolation.
    let clean = soak(&canonical(ChaosProfile::off()));
    check(&clean, "clean");
    record_soak(&mut b, "", &clean);

    // Pinned lossy wire: same job mix, same deaths, plus seeded ARQ
    // retransmissions on every sub-fabric. Virtual time stretches
    // deterministically; results stay bit-identical (checked).
    let lossy = soak(&canonical(ChaosProfile::lossy(0x5E17_E5EED)));
    check(&lossy, "lossy");
    record_soak(&mut b, "lossy_", &lossy);

    // The chaos premium as a gated ratio: a silent loss of the ARQ's
    // batching (or a retry-storm regression) shows up here even when each
    // absolute metric drifts within its own band.
    b.record(
        "serve/lossy_makespan_premium_pct",
        lossy.makespan.as_nanos() as f64 / clean.makespan.as_nanos().max(1) as f64 * 100.0,
    );

    // Wall clock of one full clean soak (informational).
    b.bench("wall/soak_100j", || {
        let s = soak(&canonical(ChaosProfile::off()));
        std::hint::black_box(s.completed_once);
    });

    b.finish();
}
