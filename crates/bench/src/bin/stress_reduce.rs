//! Stress test: repeated reductions under the conventional-SDSM lowering
//! (distributed lock + DSM scratch + barrier) must stay exact across many
//! trials — a regression canary for the release/acquire races the test
//! suite pins down deterministically.
use parade_core::*;
fn main() {
    for trial in 0..20 {
        let c = Cluster::builder()
            .nodes(3)
            .threads_per_node(2)
            .protocol(ProtocolMode::SdsmOnly)
            .net(NetProfile::zero())
            .time(TimeSource::Manual)
            .pool_bytes(16 << 20)
            .build()
            .unwrap();
        let bad = c.run(move |g| {
            g.parallel(move |tc| {
                let mut bad = 0usize;
                for round in 0..200 {
                    let v = (tc.thread_num() + 1) as f64 * (round + 1) as f64;
                    let total = tc.reduce_f64_sum(v);
                    let expect = 21.0 * (round + 1) as f64; // sum tid+1 = 21 for 6 threads
                    if (total - expect).abs() > 1e-9 {
                        bad += 1;
                    }
                }
                tc.reduce_i64(ReduceOp::Sum, bad as i64)
            })
        });
        println!("trial {trial}: bad={bad}");
        if bad > 0 {
            std::process::exit(1);
        }
    }
    println!("all good");
}
