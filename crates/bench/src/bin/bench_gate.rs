//! Perf-regression gate over `BENCH_*.json` files.
//!
//! Usage: `bench_gate <current.json> <baseline.json> [tolerance_pct]`
//!
//! Compares the **deterministic** metric families (names starting with
//! `release/`, `coll/`, `tasks/`, `fault_storm/`, or `adapt/`) of a fresh
//! benchmark run against a committed baseline. Those
//! metrics are simulated virtual time and fabric message counts — identical
//! on every machine — so a conservative tolerance band (default 20%)
//! guards only against protocol regressions, not host noise. Wall-clock
//! results (`wall/...`) and jittery families (`barrier/...`) are reported
//! but never gated.
//!
//! Gated metrics whose names end in `_{N}n` form **scaling families**: the
//! same measurement at growing node counts. Besides the per-metric
//! tolerance band, the gate checks their *shape* — every doubling of the
//! node count must cost less than [`SHAPE_RATIO`]x the previous rung in
//! the current run. A hierarchical (⌈log₂N⌉-hop) collective passes easily;
//! a silent fallback to a flat O(N) algorithm fails even if each
//! individual point drifted less than the tolerance.
//!
//! Exit status: 0 when every gated metric is within tolerance of its
//! baseline, 1 on any regression or when a baselined gated metric vanished
//! from the current run (a disappearing metric usually means the bench
//! silently stopped covering it).

use std::process::ExitCode;

/// Metric families the gate enforces.
const GATED_PREFIXES: &[&str] = &[
    "release/",
    "coll/",
    "tasks/",
    "fault_storm/",
    "adapt/",
    "serve/",
];

/// Max allowed cost ratio between successive node-count doublings of a
/// gated `_{N}n` scaling family (log₂N scaling sits near 1.2; flat linear
/// scaling sits near 2.0).
const SHAPE_RATIO: f64 = 1.7;

fn gated(name: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// A baseline the gate cannot compare against. A 0-valued gated baseline
/// used to slip through as `limit = 1e-9` — every healthy current value
/// "regressed" by +0.0%, an unreadable verdict pointing at the wrong
/// culprit. The real problem is always the baseline file itself (a bench
/// that crashed mid-emit, or a placeholder committed by hand), so fail
/// closed *before* any comparison and name the family that needs a
/// regenerated baseline.
#[derive(Debug, Clone, PartialEq)]
struct BadBaseline {
    /// Gated metric family whose baseline value is unusable.
    name: String,
    /// The offending value as parsed.
    value: f64,
}

impl std::fmt::Display for BadBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gated baseline metric '{}' has non-positive value {} — a ratio gate cannot \
             compare against it; re-generate the baseline file",
            self.name, self.value
        )
    }
}

/// Validate that every gated baseline metric is positive. Returns every
/// offender so one bad file is diagnosed in a single run.
fn validate_baseline(baseline: &[(String, f64)]) -> Result<(), Vec<BadBaseline>> {
    let bad: Vec<BadBaseline> = baseline
        .iter()
        .filter(|(name, v)| gated(name) && *v <= 0.0)
        .map(|(name, v)| BadBaseline {
            name: name.clone(),
            value: *v,
        })
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

/// Split a scaling-family metric name `<family>_<N>n` into its family stem
/// and node count; `None` for names not of that shape.
fn split_scaled(name: &str) -> Option<(&str, u64)> {
    let stem_digits = name.strip_suffix('n')?;
    let digit_start = stem_digits
        .rfind(|c: char| !c.is_ascii_digit())
        .map(|i| i + 1)?;
    let (stem, digits) = stem_digits.split_at(digit_start);
    let stem = stem.strip_suffix('_')?;
    if digits.is_empty() {
        return None;
    }
    Some((stem, digits.parse().ok()?))
}

/// Check the log₂N scaling shape of every gated `_{N}n` family in the
/// current run: each present (N, 2N) pair must satisfy
/// `cur(2N) < cur(N) * SHAPE_RATIO`. Returns the number of violations.
fn check_scaling_shape(current: &[(String, f64)]) -> u32 {
    let mut failures = 0;
    let mut families: Vec<&str> = Vec::new();
    for (name, _) in current {
        if let Some((stem, _)) = split_scaled(name) {
            if gated(name) && !families.contains(&stem) {
                families.push(stem);
            }
        }
    }
    for stem in families {
        let mut points: Vec<(u64, f64)> = current
            .iter()
            .filter_map(|(name, v)| {
                let (s, n) = split_scaled(name)?;
                (s == stem).then_some((n, *v))
            })
            .collect();
        points.sort_unstable_by_key(|&(n, _)| n);
        for w in points.windows(2) {
            let ((n_lo, lo), (n_hi, hi)) = (w[0], w[1]);
            if n_hi != n_lo * 2 || lo <= 0.0 {
                continue;
            }
            let ratio = hi / lo;
            let ok = ratio < SHAPE_RATIO;
            println!(
                "{:<48} {n_lo:>5}n -> {n_hi}n ratio {ratio:>5.2}  {}",
                format!("{stem} (shape)"),
                if ok { "ok" } else { "NOT log2-SHAPED" }
            );
            if !ok {
                failures += 1;
            }
        }
    }
    failures
}

/// Extract `(name, median)` pairs from a testkit bench JSON document.
/// The format is fixed (emitted by `Bench::to_json`), so a line-oriented
/// scan is exact — no general JSON parser needed.
fn parse_results(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(mpos) = line.find("\"median\": ") else {
            continue;
        };
        let mrest = &line[mpos + 10..];
        let mend = mrest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(mrest.len());
        if let Ok(v) = mrest[..mend].parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <current.json> <baseline.json> [tolerance_pct]");
        return ExitCode::FAILURE;
    }
    let tolerance_pct: f64 = args
        .get(2)
        .map(|s| s.parse().expect("tolerance must be a number"))
        .unwrap_or(20.0);
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let current = parse_results(&read(&args[0]));
    let baseline = parse_results(&read(&args[1]));
    if current.is_empty() || baseline.is_empty() {
        eprintln!("bench_gate: no parsable results in input files");
        return ExitCode::FAILURE;
    }
    if let Err(bad) = validate_baseline(&baseline) {
        for b in &bad {
            eprintln!("bench_gate: {b}");
        }
        return ExitCode::FAILURE;
    }

    let mut failures = 0u32;
    let mut checked = 0u32;
    println!("bench_gate: tolerance {tolerance_pct}% on {GATED_PREFIXES:?}");
    println!(
        "{:<48} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (name, base) in &baseline {
        if !gated(name) {
            continue;
        }
        checked += 1;
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            println!("{name:<48} {base:>14.2} {:>14} {:>9}  MISSING", "-", "-");
            failures += 1;
            continue;
        };
        // Regression = current exceeds baseline by more than the band.
        // An absolute floor keeps near-zero baselines (e.g. "1 message")
        // from rejecting integer counts that legitimately stay put.
        let limit = base * (1.0 + tolerance_pct / 100.0) + 1e-9;
        let delta_pct = if *base > 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        let ok = *cur <= limit;
        println!(
            "{name:<48} {base:>14.2} {cur:>14.2} {delta_pct:>+8.1}%  {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures += 1;
        }
    }
    // Improvements worth surfacing: current metrics the baseline lacks.
    for (name, _) in &current {
        if gated(name) && !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<48} (new metric, not in baseline)");
        }
    }
    let shape_failures = check_scaling_shape(&current);
    if checked == 0 {
        eprintln!("bench_gate: baseline contains no gated metrics");
        return ExitCode::FAILURE;
    }
    if failures > 0 || shape_failures > 0 {
        if failures > 0 {
            eprintln!("bench_gate: {failures} gated metric(s) regressed beyond {tolerance_pct}%");
        }
        if shape_failures > 0 {
            eprintln!(
                "bench_gate: {shape_failures} scaling pair(s) exceed the {SHAPE_RATIO}x \
                 doubling bound (flat-algorithm fallback?)"
            );
        }
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {checked} gated metrics within tolerance, scaling shape ok");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, v: f64) -> (String, f64) {
        (name.to_string(), v)
    }

    #[test]
    fn zero_valued_gated_baseline_is_a_structured_error_naming_the_family() {
        let baseline = vec![
            m("release/cg_total_vtime", 120.0),
            m("serve/soak_makespan_vtime", 0.0),
            m("wall/anything", 0.0), // ungated: zero is fine
        ];
        let err = validate_baseline(&baseline).expect_err("zero gated baseline must fail");
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].name, "serve/soak_makespan_vtime");
        assert_eq!(err[0].value, 0.0);
        let msg = err[0].to_string();
        assert!(
            msg.contains("serve/soak_makespan_vtime"),
            "error must name the family: {msg}"
        );
        assert!(msg.contains("re-generate"), "error must say the fix: {msg}");
    }

    #[test]
    fn negative_gated_baseline_is_also_rejected() {
        let baseline = vec![m("tasks/steal_count", -3.0)];
        let err = validate_baseline(&baseline).expect_err("negative baseline must fail");
        assert_eq!(err[0].value, -3.0);
    }

    #[test]
    fn positive_gated_baselines_validate() {
        let baseline = vec![m("coll/bcast_vtime", 1.0), m("serve/soak_jobs", 1000.0)];
        assert!(validate_baseline(&baseline).is_ok());
    }

    #[test]
    fn serve_family_is_gated() {
        assert!(gated("serve/soak_makespan_vtime"));
        assert!(gated("release/x"));
        assert!(!gated("wall/soak_secs"));
        assert!(!gated("barrier/jitter"));
    }

    #[test]
    fn split_scaled_parses_node_suffixes_only() {
        assert_eq!(split_scaled("coll/bcast_8n"), Some(("coll/bcast", 8)));
        assert_eq!(split_scaled("coll/bcast_16n"), Some(("coll/bcast", 16)));
        assert_eq!(split_scaled("serve/soak_makespan_vtime"), None);
        assert_eq!(split_scaled("coll/bcastn"), None);
    }

    #[test]
    fn parse_results_reads_bench_json_lines() {
        let doc = r#"{
  "results": [
    { "name": "serve/soak_makespan_vtime", "median": 123.5, "iters": 3 },
    { "name": "wall/soak_secs", "median": 0.7, "iters": 3 }
  ]
}"#;
        let got = parse_results(doc);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], m("serve/soak_makespan_vtime", 123.5));
    }
}
