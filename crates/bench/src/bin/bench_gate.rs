//! Perf-regression gate over `BENCH_*.json` files.
//!
//! Usage: `bench_gate <current.json> <baseline.json> [tolerance_pct]`
//!
//! Compares the **deterministic** metric families (names starting with
//! `release/`, `coll/`, `tasks/`, `fault_storm/`, or `adapt/`) of a fresh
//! benchmark run against a committed baseline. Those
//! metrics are simulated virtual time and fabric message counts — identical
//! on every machine — so a conservative tolerance band (default 20%)
//! guards only against protocol regressions, not host noise. Wall-clock
//! results (`wall/...`) and jittery families (`barrier/...`) are reported
//! but never gated.
//!
//! Gated metrics whose names end in `_{N}n` form **scaling families**: the
//! same measurement at growing node counts. Besides the per-metric
//! tolerance band, the gate checks their *shape* — every doubling of the
//! node count must cost less than [`SHAPE_RATIO`]x the previous rung in
//! the current run. A hierarchical (⌈log₂N⌉-hop) collective passes easily;
//! a silent fallback to a flat O(N) algorithm fails even if each
//! individual point drifted less than the tolerance.
//!
//! Exit status: 0 when every gated metric is within tolerance of its
//! baseline, 1 on any regression or when a baselined gated metric vanished
//! from the current run (a disappearing metric usually means the bench
//! silently stopped covering it).

use std::process::ExitCode;

/// Metric families the gate enforces.
const GATED_PREFIXES: &[&str] = &["release/", "coll/", "tasks/", "fault_storm/", "adapt/"];

/// Max allowed cost ratio between successive node-count doublings of a
/// gated `_{N}n` scaling family (log₂N scaling sits near 1.2; flat linear
/// scaling sits near 2.0).
const SHAPE_RATIO: f64 = 1.7;

fn gated(name: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Split a scaling-family metric name `<family>_<N>n` into its family stem
/// and node count; `None` for names not of that shape.
fn split_scaled(name: &str) -> Option<(&str, u64)> {
    let stem_digits = name.strip_suffix('n')?;
    let digit_start = stem_digits
        .rfind(|c: char| !c.is_ascii_digit())
        .map(|i| i + 1)?;
    let (stem, digits) = stem_digits.split_at(digit_start);
    let stem = stem.strip_suffix('_')?;
    if digits.is_empty() {
        return None;
    }
    Some((stem, digits.parse().ok()?))
}

/// Check the log₂N scaling shape of every gated `_{N}n` family in the
/// current run: each present (N, 2N) pair must satisfy
/// `cur(2N) < cur(N) * SHAPE_RATIO`. Returns the number of violations.
fn check_scaling_shape(current: &[(String, f64)]) -> u32 {
    let mut failures = 0;
    let mut families: Vec<&str> = Vec::new();
    for (name, _) in current {
        if let Some((stem, _)) = split_scaled(name) {
            if gated(name) && !families.contains(&stem) {
                families.push(stem);
            }
        }
    }
    for stem in families {
        let mut points: Vec<(u64, f64)> = current
            .iter()
            .filter_map(|(name, v)| {
                let (s, n) = split_scaled(name)?;
                (s == stem).then_some((n, *v))
            })
            .collect();
        points.sort_unstable_by_key(|&(n, _)| n);
        for w in points.windows(2) {
            let ((n_lo, lo), (n_hi, hi)) = (w[0], w[1]);
            if n_hi != n_lo * 2 || lo <= 0.0 {
                continue;
            }
            let ratio = hi / lo;
            let ok = ratio < SHAPE_RATIO;
            println!(
                "{:<48} {n_lo:>5}n -> {n_hi}n ratio {ratio:>5.2}  {}",
                format!("{stem} (shape)"),
                if ok { "ok" } else { "NOT log2-SHAPED" }
            );
            if !ok {
                failures += 1;
            }
        }
    }
    failures
}

/// Extract `(name, median)` pairs from a testkit bench JSON document.
/// The format is fixed (emitted by `Bench::to_json`), so a line-oriented
/// scan is exact — no general JSON parser needed.
fn parse_results(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(mpos) = line.find("\"median\": ") else {
            continue;
        };
        let mrest = &line[mpos + 10..];
        let mend = mrest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(mrest.len());
        if let Ok(v) = mrest[..mend].parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <current.json> <baseline.json> [tolerance_pct]");
        return ExitCode::FAILURE;
    }
    let tolerance_pct: f64 = args
        .get(2)
        .map(|s| s.parse().expect("tolerance must be a number"))
        .unwrap_or(20.0);
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let current = parse_results(&read(&args[0]));
    let baseline = parse_results(&read(&args[1]));
    if current.is_empty() || baseline.is_empty() {
        eprintln!("bench_gate: no parsable results in input files");
        return ExitCode::FAILURE;
    }

    let mut failures = 0u32;
    let mut checked = 0u32;
    println!("bench_gate: tolerance {tolerance_pct}% on {GATED_PREFIXES:?}");
    println!(
        "{:<48} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (name, base) in &baseline {
        if !gated(name) {
            continue;
        }
        checked += 1;
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            println!("{name:<48} {base:>14.2} {:>14} {:>9}  MISSING", "-", "-");
            failures += 1;
            continue;
        };
        // Regression = current exceeds baseline by more than the band.
        // An absolute floor keeps near-zero baselines (e.g. "1 message")
        // from rejecting integer counts that legitimately stay put.
        let limit = base * (1.0 + tolerance_pct / 100.0) + 1e-9;
        let delta_pct = if *base > 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        let ok = *cur <= limit;
        println!(
            "{name:<48} {base:>14.2} {cur:>14.2} {delta_pct:>+8.1}%  {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            failures += 1;
        }
    }
    // Improvements worth surfacing: current metrics the baseline lacks.
    for (name, _) in &current {
        if gated(name) && !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<48} (new metric, not in baseline)");
        }
    }
    let shape_failures = check_scaling_shape(&current);
    if checked == 0 {
        eprintln!("bench_gate: baseline contains no gated metrics");
        return ExitCode::FAILURE;
    }
    if failures > 0 || shape_failures > 0 {
        if failures > 0 {
            eprintln!("bench_gate: {failures} gated metric(s) regressed beyond {tolerance_pct}%");
        }
        if shape_failures > 0 {
            eprintln!(
                "bench_gate: {shape_failures} scaling pair(s) exceed the {SHAPE_RATIO}x \
                 doubling bound (flat-algorithm fallback?)"
            );
        }
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {checked} gated metrics within tolerance, scaling shape ok");
    ExitCode::SUCCESS
}
