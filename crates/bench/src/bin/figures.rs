//! CLI harness regenerating the paper's figures.
//!
//! ```text
//! figures <fig6|fig7|fig8|fig9|fig10|fig11|update_methods|home|fabric|schedules|all>
//!         [--class s|w|a] [--nodes 1,2,4,8] [--scale F] [--with-mpi]
//!         [--quick] [--csv DIR]
//! ```
//!
//! Prints markdown tables whose series correspond one-to-one to the
//! paper's plots; `--csv DIR` additionally writes CSV files.

use parade_bench::{
    ablation_fabric, ablation_home, ablation_schedules, adapt_smoke, all_figures, chaos_smoke,
    fig10, fig11, fig6, fig7, fig8, fig9, serve_soak, steal_soak, task_smoke, trace_breakdown,
    update_methods, write_tables_json, FigureOpts, Table,
};

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig6|fig7|fig8|fig9|fig10|fig11|update_methods|home|fabric|schedules|trace|chaos-smoke|task-smoke|steal-soak|adapt-smoke|serve-soak|all> \
         [--class s|w|a] [--nodes 1,2,4,8] [--scale F] [--with-mpi] [--quick] [--csv DIR]\n\
         trace: traced smoke run — writes a Chrome trace (PARADE_TRACE, default \
         parade_trace.json), validates it, prints the breakdown\n\
         chaos-smoke: seeded fault-injection soak — CG class S under a lossy \
         wire (PARADE_CHAOS or the pinned lossy schedule) must stay \
         bit-identical to a clean run with >=1 retransmission\n\
         task-smoke: task-based n-body on 4 nodes — flat placement and two \
         steal seeds must merge bit-identically to the sequential reference\n\
         steal-soak: the same task phase under stealing on a lossy wire \
         (PARADE_CHAOS or the pinned schedule) — exactly-once, bit-identical, \
         >=1 retransmission\n\
         adapt-smoke: CG class S under all-invalidate / all-update / adaptive \
         protocol selection and stride prefetch — every mode must stay \
         bit-identical and bulk reads must coalesce into range fetches\n\
         serve-soak: the multi-job serving layer under scheduled node deaths \
         and a lossy wire (PARADE_CHAOS or the pinned schedule) — 1000 jobs \
         (120 with --quick) must complete exactly once, bit-identical to their \
         sequential references, with at least one checkpoint re-home"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let what = args[0].clone();
    let mut opts = FigureOpts::default();
    let mut csv_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--class" => {
                i += 1;
                opts.class = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .chars()
                    .next()
                    .unwrap();
            }
            "--nodes" => {
                i += 1;
                opts.nodes = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.parse().expect("bad node count"))
                    .collect();
            }
            "--scale" => {
                i += 1;
                opts.cpu_scale = args
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("bad scale");
            }
            "--with-mpi" => opts.with_mpi = true,
            "--quick" => {
                let keep_class = opts.class;
                opts = FigureOpts {
                    nodes: opts.nodes.clone(),
                    with_mpi: opts.with_mpi,
                    cpu_scale: opts.cpu_scale,
                    ..FigureOpts::quick()
                };
                if keep_class != 'w' {
                    opts.class = keep_class;
                }
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            _ => usage(),
        }
        i += 1;
    }

    let tables: Vec<Table> = match what.as_str() {
        "fig6" => vec![fig6(&opts)],
        "fig7" => vec![fig7(&opts)],
        "fig8" => vec![fig8(&opts)],
        "fig9" => vec![fig9(&opts)],
        "fig10" => vec![fig10(&opts)],
        "fig11" => vec![fig11(&opts)],
        "update_methods" => vec![update_methods(&opts)],
        "home" => vec![ablation_home(&opts)],
        "fabric" => vec![ablation_fabric(&opts)],
        "schedules" => vec![ablation_schedules(&opts)],
        "trace" => match trace_breakdown(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures trace: {e}");
                std::process::exit(1);
            }
        },
        "chaos-smoke" | "chaos_smoke" => match chaos_smoke(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures chaos-smoke: {e}");
                std::process::exit(1);
            }
        },
        "task-smoke" | "task_smoke" => match task_smoke(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures task-smoke: {e}");
                std::process::exit(1);
            }
        },
        "steal-soak" | "steal_soak" => match steal_soak(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures steal-soak: {e}");
                std::process::exit(1);
            }
        },
        "serve-soak" | "serve_soak" => match serve_soak(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures serve-soak: {e}");
                std::process::exit(1);
            }
        },
        "adapt-smoke" | "adapt_smoke" => match adapt_smoke(&opts) {
            Ok(ts) => ts,
            Err(e) => {
                eprintln!("figures adapt-smoke: {e}");
                std::process::exit(1);
            }
        },
        "all" => all_figures(&opts),
        _ => usage(),
    };

    for t in &tables {
        println!("{}", t.markdown());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let slug: String = t
                .title
                .chars()
                .take(40)
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            std::fs::write(format!("{dir}/{slug}.csv"), t.csv()).expect("write csv");
        }
    }
    write_tables_json(&format!("figures_{what}"), &tables);
}
