//! Diagnostic: run the Helmholtz kernel on a few cluster shapes and dump
//! the protocol counters plus the master's compute/communication virtual
//! time split — useful when calibrating the cost model.
use parade_cluster::{ClusterConfig, ExecConfig};
use parade_core::Cluster;
use parade_kernels::helmholtz::{helmholtz_parade, HelmholtzParams};

fn main() {
    let p = HelmholtzParams::sized(1200, 1200, 20);
    for (nodes, exec) in [
        (2, ExecConfig::OneThreadOneCpu),
        (4, ExecConfig::OneThreadOneCpu),
        (4, ExecConfig::TwoThreadTwoCpu),
    ] {
        let cfg = ClusterConfig {
            nodes,
            exec,
            time: parade_net::TimeSource::ThreadCpu { scale: 1.0 },
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (_, report) = helmholtz_parade(&cluster, p);
        let d = report.cluster.dsm_totals();
        println!(
            "{nodes} nodes {}: vtime {} (compute {} comm {}) fetches {} diffs {} inval {} migr {} svc {} msgs {} ({} MB)",
            exec.label(),
            report.exec_time,
            report.node_compute[0], report.node_comm[0],
            d.page_fetches, d.diffs_sent, d.invalidations,
            d.home_migrations, d.serviced_requests,
            report.cluster.traffic.msgs, report.cluster.traffic.bytes / (1<<20)
        );
    }
}
