//! Diagnostic: run the Helmholtz kernel on a few cluster shapes and print
//! the unified [`StatsReport`] — virtual-time split, protocol counters,
//! per-node traffic, and (with `PARADE_TRACE=<path>`) the per-construct
//! virtual-time breakdown. Set `PARADE_STATS_JSON=1` to also write
//! `STATS_<label>.json` files for offline comparison.
use parade_cluster::{ClusterConfig, ExecConfig};
use parade_core::{Cluster, StatsReport};
use parade_kernels::helmholtz::{helmholtz_parade, HelmholtzParams};

fn main() {
    let p = HelmholtzParams::sized(1200, 1200, 20);
    for (nodes, exec) in [
        (2, ExecConfig::OneThreadOneCpu),
        (4, ExecConfig::OneThreadOneCpu),
        (4, ExecConfig::TwoThreadTwoCpu),
    ] {
        let cfg = ClusterConfig {
            nodes,
            exec,
            time: parade_net::TimeSource::ThreadCpu { scale: 1.0 },
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (_, report) = helmholtz_parade(&cluster, p);
        let stats = StatsReport::from_run(format!("helmholtz-{nodes}n-{}", exec.label()), &report);
        println!("{}", stats.render());
        stats.emit_json();
    }
}
