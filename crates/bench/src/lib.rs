//! Shared harness for regenerating the paper's figures.
//!
//! Every public `figN` function sweeps the same parameter grid as the
//! corresponding figure in §6 of the paper and returns a [`Table`] whose
//! rows mirror the plotted series. Absolute values depend on the simulated
//! cost model; the *shape* (who wins, how gaps scale with node count) is
//! the reproduction target — see EXPERIMENTS.md.

use parade_cluster::{ClusterConfig, ExecConfig, ProtocolMode};
use parade_core::{Cluster, NetProfile, TimeSource};
use parade_dsm::UpdateStrategy;
use parade_kernels::cg::{cg_mpi, cg_parade, CgClass};
use parade_kernels::ep::{ep_parade, EpClass};
use parade_kernels::helmholtz::{helmholtz_parade, HelmholtzParams};
use parade_kernels::md::{md_parade, MdParams, MdResult};
use parade_kernels::syncbench::{measure, Directive};

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut cols = vec![0usize; self.headers.len()];
        for (i, h) in self.headers.iter().enumerate() {
            cols[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                cols[i] = cols[i].max(c.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let line = |cells: &[String], cols: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(cols) {
                s.push_str(&format!(" {c:<w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &cols));
        out.push('|');
        for w in &cols {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r, &cols));
        }
        out
    }

    pub fn csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object (`title`, `headers`, `rows`).
    pub fn json(&self) -> String {
        use parade_testkit::bench::json_string;
        let list = |xs: &[String]| -> String {
            let cells: Vec<String> = xs.iter().map(|c| json_string(c)).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("      {}", list(r)))
            .collect();
        format!(
            "{{\n    \"title\": {},\n    \"headers\": {},\n    \"rows\": [\n{}\n    ]\n  }}",
            json_string(&self.title),
            list(&self.headers),
            rows.join(",\n"),
        )
    }
}

/// Write `tables` as `BENCH_<suite>.json` if `PARADE_BENCH_JSON` is set
/// (`1`/empty → current directory, otherwise the named directory). Returns
/// the path written.
pub fn write_tables_json(suite: &str, tables: &[Table]) -> Option<String> {
    let dir = std::env::var("PARADE_BENCH_JSON").ok()?;
    let dir = if dir.is_empty() || dir == "1" {
        ".".to_string()
    } else {
        dir
    };
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/BENCH_{suite}.json");
    let body: Vec<String> = tables.iter().map(|t| format!("  {}", t.json())).collect();
    let doc = format!(
        "{{\n  \"suite\": {},\n  \"tables\": [\n{}\n  ]\n}}\n",
        parade_testkit::bench::json_string(suite),
        body.join(",\n"),
    );
    match std::fs::write(&path, doc) {
        Ok(()) => {
            println!("wrote {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {path}: {e}");
            None
        }
    }
}

/// Sweep options shared by all figures.
#[derive(Debug, Clone)]
pub struct FigureOpts {
    /// Node counts to sweep (paper: up to 8 dual-CPU nodes).
    pub nodes: Vec<usize>,
    /// NAS class for CG/EP ('s' | 'w' | 'a').
    pub class: char,
    /// CPU scale factor mapping host CPU time onto the 550 MHz testbed.
    pub cpu_scale: f64,
    /// Include the pure-MPI CG baseline column (related-work context [8]).
    pub with_mpi: bool,
    /// Shrink workloads for CI-speed runs.
    pub quick: bool,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            nodes: vec![1, 2, 4, 8],
            class: 'w',
            cpu_scale: 60.0,
            with_mpi: false,
            quick: false,
        }
    }
}

impl FigureOpts {
    pub fn quick() -> Self {
        FigureOpts {
            class: 's',
            quick: true,
            ..FigureOpts::default()
        }
    }

    fn cg_class(&self) -> CgClass {
        match self.class {
            'a' => CgClass::A,
            's' => CgClass::S,
            _ => CgClass::W,
        }
    }

    fn ep_class(&self) -> EpClass {
        if self.quick {
            return EpClass::Custom(20);
        }
        match self.class {
            'a' => EpClass::A,
            's' => EpClass::S,
            _ => EpClass::W,
        }
    }

    fn base_cfg(&self, nodes: usize, exec: ExecConfig, mode: ProtocolMode) -> ClusterConfig {
        ClusterConfig {
            nodes,
            exec,
            protocol: mode,
            net: NetProfile::clan_via(),
            time: TimeSource::ThreadCpu {
                scale: self.cpu_scale,
            },
            ..ClusterConfig::default()
        }
    }

    /// Deterministic, latency-dominated configuration for the
    /// microbenchmarks (Figures 6/7).
    fn sync_cfg(&self, nodes: usize, mode: ProtocolMode) -> ClusterConfig {
        ClusterConfig {
            nodes,
            exec: ExecConfig::OneThreadTwoCpu,
            protocol: mode,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            pool_bytes: 4 << 20,
            ..ClusterConfig::default()
        }
    }
}

fn sync_figure(opts: &FigureOpts, directive: Directive, title: &str) -> Table {
    let reps = if opts.quick { 30 } else { 100 };
    let mut t = Table::new(
        format!("{title} — overhead (µs/op), ParADE vs conventional SDSM (KDSM-style)"),
        &["nodes", "ParADE (us)", "SDSM (us)", "SDSM/ParADE"],
    );
    for &n in &opts.nodes {
        let p = measure(&opts.sync_cfg(n, ProtocolMode::Parade), directive, reps);
        let s = measure(&opts.sync_cfg(n, ProtocolMode::SdsmOnly), directive, reps);
        let ratio = if p.per_op_us > 0.0 {
            s.per_op_us / p.per_op_us
        } else {
            f64::INFINITY
        };
        t.row(vec![
            n.to_string(),
            format!("{:.2}", p.per_op_us),
            format!("{:.2}", s.per_op_us),
            format!("{:.2}x", ratio),
        ]);
    }
    t
}

/// Figure 6: `critical` directive overhead, ParADE vs KDSM.
pub fn fig6(opts: &FigureOpts) -> Table {
    sync_figure(opts, Directive::Critical, "Figure 6: critical directive")
}

/// Figure 7: `single` directive overhead, ParADE vs KDSM.
pub fn fig7(opts: &FigureOpts) -> Table {
    sync_figure(opts, Directive::Single, "Figure 7: single directive")
}

fn exec_grid<F>(opts: &FigureOpts, title: &str, mut run: F) -> Table
where
    F: FnMut(&Cluster) -> f64,
{
    let mut headers = vec!["nodes".to_string()];
    for e in ExecConfig::PAPER_CONFIGS {
        headers.push(format!("{} (s)", e.label()));
    }
    let mut t = Table {
        title: title.to_string(),
        headers,
        rows: Vec::new(),
    };
    for &n in &opts.nodes {
        let mut row = vec![n.to_string()];
        for e in ExecConfig::PAPER_CONFIGS {
            let cfg = opts.base_cfg(n, e, ProtocolMode::Parade);
            let secs = run(&Cluster::from_config(cfg));
            row.push(format!("{secs:.3}"));
        }
        t.row(row);
    }
    t
}

/// Figure 8: NAS CG execution time across the three configurations.
pub fn fig8(opts: &FigureOpts) -> Table {
    let class = self::FigureOpts::cg_class(opts);
    let mut t = exec_grid(
        opts,
        &format!(
            "Figure 8: NAS CG class {} execution time on cLAN (virtual seconds)",
            class.label()
        ),
        |cluster| {
            let (res, report) = cg_parade(cluster, class);
            assert!(res.verify(class), "CG failed verification");
            report.exec_time.as_secs_f64()
        },
    );
    if opts.with_mpi {
        t.headers.push("pure MPI (s)".into());
        for (i, &n) in opts.nodes.iter().enumerate() {
            let cfg = opts.base_cfg(n, ExecConfig::OneThreadTwoCpu, ProtocolMode::Parade);
            let (res, vt) = cg_mpi(cfg, class);
            assert!(res.verify(class));
            t.rows[i].push(format!("{:.3}", vt.as_secs_f64()));
        }
    }
    t
}

/// Figure 9: NAS EP execution time across the three configurations.
pub fn fig9(opts: &FigureOpts) -> Table {
    let class = opts.ep_class();
    exec_grid(
        opts,
        &format!(
            "Figure 9: NAS EP class {} execution time on cLAN (virtual seconds)",
            class.label()
        ),
        |cluster| {
            let (res, report) = ep_parade(cluster, class);
            if let Some(ok) = res.verify(class) {
                assert!(ok, "EP failed verification");
            }
            report.exec_time.as_secs_f64()
        },
    )
}

/// Figure 10: Helmholtz execution time across the three configurations.
pub fn fig10(opts: &FigureOpts) -> Table {
    let mut p = if opts.quick {
        HelmholtzParams::sized(100, 100, 50)
    } else {
        // Big enough that per-iteration compute dominates the barrier +
        // reduction cost, as in the paper's testbed (they report ~1000
        // iterations on an unstated grid; 200 iterations suffice for the
        // scaling shape).
        HelmholtzParams::sized(800, 800, 200)
    };
    // Fixed iteration count for comparable runs (the tolerance would stop
    // large grids almost immediately because the residual is normalized by
    // the point count).
    p.tol = 1e-30;
    exec_grid(
        opts,
        &format!(
            "Figure 10: Helmholtz ({}x{}, {} iters) execution time on cLAN (virtual seconds)",
            p.n, p.m, p.max_iters
        ),
        |cluster| {
            let (_, report) = helmholtz_parade(cluster, p);
            report.exec_time.as_secs_f64()
        },
    )
}

/// Figure 11: MD execution time across the three configurations.
pub fn fig11(opts: &FigureOpts) -> Table {
    let p = if opts.quick {
        MdParams::sized(128, 3)
    } else {
        MdParams::sized(512, 10)
    };
    exec_grid(
        opts,
        &format!(
            "Figure 11: MD ({} particles, {} steps) execution time on cLAN (virtual seconds)",
            p.np, p.steps
        ),
        |cluster| {
            let (_, report) = md_parade(cluster, p);
            report.exec_time.as_secs_f64()
        },
    )
}

/// §5.1: the four atomic-page-update strategies on a fetch-heavy workload.
pub fn update_methods(opts: &FigureOpts) -> Table {
    let pages = if opts.quick { 64 } else { 256 };
    let mut t = Table::new(
        "Section 5.1: atomic page update methods (fetch-heavy microworkload)",
        &["strategy", "exec (ms)", "per-update overhead (us)"],
    );
    for strat in UpdateStrategy::ALL_SAFE {
        let cfg = ClusterConfig {
            nodes: 2,
            exec: ExecConfig::OneThreadTwoCpu,
            update_strategy: strat,
            net: NetProfile::clan_via(),
            time: TimeSource::Manual,
            pool_bytes: (pages + 64) * parade_dsm::PAGE_SIZE,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::from_config(cfg);
        let (_, report) = cluster.run_with_report(move |g| {
            let words = pages * parade_dsm::PAGE_SIZE / 8;
            let v = g.alloc_f64(words);
            // Touch one word per page so node 1 must fetch every page.
            g.parallel(move |tc| {
                if tc.thread_num() == 0 {
                    for p in 0..pages {
                        tc.set(&v, p * 512, 1.0);
                    }
                }
                tc.barrier();
                let mut acc = 0.0;
                if tc.node() == tc.num_nodes() - 1 {
                    for p in 0..pages {
                        acc += tc.get(&v, p * 512);
                    }
                }
                std::hint::black_box(acc);
            });
        });
        t.row(vec![
            format!("{strat:?}"),
            format!("{:.3}", report.exec_time.as_millis_f64()),
            format!("{:.2}", strat.per_update_overhead().as_micros_f64()),
        ]);
    }
    t
}

/// Ablation: migratory vs fixed home on CG (the §5.2.2 design choice).
pub fn ablation_home(opts: &FigureOpts) -> Table {
    let class = if opts.quick {
        CgClass::S
    } else {
        opts.cg_class()
    };
    let mut t = Table::new(
        format!(
            "Ablation: migratory vs fixed home, NAS CG class {}",
            class.label()
        ),
        &[
            "nodes",
            "migratory (s)",
            "fixed (s)",
            "migr fetches",
            "fixed fetches",
        ],
    );
    for &n in opts.nodes.iter().filter(|&&n| n > 1) {
        let mut cfg = opts.base_cfg(n, ExecConfig::OneThreadTwoCpu, ProtocolMode::Parade);
        cfg.home_policy = Some(parade_dsm::HomePolicy::Migratory);
        let (r1, rep1) = cg_parade(&Cluster::from_config(cfg.clone()), class);
        assert!(r1.verify(class));
        cfg.home_policy = Some(parade_dsm::HomePolicy::Fixed);
        let (r2, rep2) = cg_parade(&Cluster::from_config(cfg), class);
        assert!(r2.verify(class));
        t.row(vec![
            n.to_string(),
            format!("{:.3}", rep1.exec_time.as_secs_f64()),
            format!("{:.3}", rep2.exec_time.as_secs_f64()),
            rep1.cluster.dsm_totals().page_fetches.to_string(),
            rep2.cluster.dsm_totals().page_fetches.to_string(),
        ]);
    }
    t
}

/// Ablation: VIA vs Fast-Ethernet/TCP fabric on the critical directive.
pub fn ablation_fabric(opts: &FigureOpts) -> Table {
    let reps = if opts.quick { 30 } else { 100 };
    let mut t = Table::new(
        "Ablation: cLAN VIA vs Fast Ethernet TCP (critical directive, ParADE)",
        &["nodes", "VIA (us)", "TCP (us)"],
    );
    for &n in &opts.nodes {
        let via = measure(
            &opts.sync_cfg(n, ProtocolMode::Parade),
            Directive::Critical,
            reps,
        );
        let mut cfg = opts.sync_cfg(n, ProtocolMode::Parade);
        cfg.net = NetProfile::fast_ethernet_tcp();
        let tcp = measure(&cfg, Directive::Critical, reps);
        t.row(vec![
            n.to_string(),
            format!("{:.2}", via.per_op_us),
            format!("{:.2}", tcp.per_op_us),
        ]);
    }
    t
}

/// Ablation: loop scheduling policies (the paper's §8 future work) on an
/// imbalanced loop.
///
/// Uses real, paced computation (measured thread-CPU time): dynamic
/// self-scheduling only balances correctly when grabbing a chunk costs the
/// grabber actual time, which is also true on real hardware. Note the
/// dynamic/guided queues are node-local (remote chunk stealing would cost
/// a round trip per chunk), so only *intra-node* imbalance is repaired —
/// exactly the limitation the paper's §8 leaves as future work.
pub fn ablation_schedules(opts: &FigureOpts) -> Table {
    let n_iters = if opts.quick { 2_000 } else { 20_000 };
    let mut t = Table::new(
        "Ablation: loop scheduling on an imbalanced loop (virtual ms)",
        &["nodes", "static (ms)", "dynamic (ms)", "guided (ms)"],
    );
    for &n in &opts.nodes {
        let mut row = vec![n.to_string()];
        for sched in ["static", "dynamic", "guided"] {
            let cfg = ClusterConfig {
                nodes: n,
                exec: ExecConfig::TwoThreadTwoCpu,
                net: NetProfile::clan_via(),
                time: TimeSource::ThreadCpu { scale: 1.0 },
                pool_bytes: 4 << 20,
                ..ClusterConfig::default()
            };
            let sched = sched.to_string();
            let (_, report) = Cluster::from_config(cfg).run_with_report(move |g| {
                g.parallel(move |tc| {
                    // Triangular work: iteration i costs ~i units of real
                    // spinning.
                    let body = |i: usize| {
                        let mut acc = 0u64;
                        for k in 0..(i as u64) {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                    };
                    match sched.as_str() {
                        "static" => {
                            for i in tc.for_static(0..n_iters) {
                                body(i);
                            }
                            tc.barrier();
                        }
                        "dynamic" => tc.for_dynamic(0..n_iters, 64, |r| r.for_each(&body)),
                        _ => tc.for_guided(0..n_iters, 16, |r| r.for_each(&body)),
                    }
                });
            });
            row.push(format!("{:.3}", report.exec_time.as_millis_f64()));
        }
        t.row(row);
    }
    t
}

/// `figures -- trace`: run a small traced Helmholtz, validate the written
/// Chrome trace file with the in-repo JSON checker, and return the
/// per-construct virtual-time breakdown as tables.
///
/// Errors (malformed trace file, empty aggregation report, attributed time
/// exceeding the node's virtual clock) are returned so the CLI can exit
/// nonzero — `scripts/ci.sh` uses this as its traced smoke run.
pub fn trace_breakdown(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    let path = match std::env::var("PARADE_TRACE") {
        Ok(p) if !p.is_empty() => p,
        _ => {
            let p = "parade_trace.json".to_string();
            std::env::set_var("PARADE_TRACE", &p);
            p
        }
    };
    let nodes = opts.nodes.iter().copied().find(|&n| n > 1).unwrap_or(2);
    let cfg = opts.base_cfg(nodes, ExecConfig::TwoThreadTwoCpu, ProtocolMode::Parade);
    let mut p = HelmholtzParams::sized(100, 100, 20);
    p.tol = 1e-30;
    let (_, report) = helmholtz_parade(&Cluster::from_config(cfg), p);

    let body = std::fs::read_to_string(&path)
        .map_err(|e| format!("trace file {path} not written: {e}"))?;
    parade_trace::validate_json(&body).map_err(|e| format!("trace file {path} malformed: {e}"))?;
    let tr = report
        .trace
        .ok_or_else(|| "run produced no trace report".to_string())?;
    if tr.is_empty() {
        return Err("trace aggregation report is empty".to_string());
    }
    let max_node = report
        .node_times
        .iter()
        .copied()
        .max()
        .unwrap_or(parade_core::VTime::ZERO);
    let mut per_node = Table::new(
        format!("Trace: attributed virtual time per node (Helmholtz {nodes} nodes, {path})"),
        &["node", "attributed", "main vtime", "share"],
    );
    for &(node, attr_ns) in &tr.node_attributed {
        let nt = report
            .node_times
            .get(node as usize)
            .copied()
            .unwrap_or(max_node);
        if attr_ns > max_node.as_nanos() {
            return Err(format!(
                "node {node} attributed {attr_ns} ns exceeds max node vclock {} ns",
                max_node.as_nanos()
            ));
        }
        per_node.row(vec![
            node.to_string(),
            parade_core::VTime::from_nanos(attr_ns).to_string(),
            nt.to_string(),
            format!(
                "{:.1}%",
                100.0 * attr_ns as f64 / nt.as_nanos().max(1) as f64
            ),
        ]);
    }
    let mut spans = Table::new(
        "Trace: per-construct virtual-time breakdown (self = excluding nested spans)",
        &["node", "construct", "count", "self", "total"],
    );
    for r in &tr.spans {
        spans.row(vec![
            r.node.to_string(),
            r.kind.name().to_string(),
            r.count.to_string(),
            parade_core::VTime::from_nanos(r.self_ns).to_string(),
            parade_core::VTime::from_nanos(r.total_ns).to_string(),
        ]);
    }
    println!(
        "trace: {} events across {} threads ({} dropped, {} unbalanced) -> {path}",
        tr.events, tr.threads, tr.dropped, tr.unbalanced
    );
    Ok(vec![per_node, spans])
}

/// Seeded chaos soak (`figures -- chaos-smoke`): run NPB CG class S under
/// a lossy fault schedule and a chaos-free control, and fail unless the
/// reliable channel made the run both *correct* — NPB-verified and
/// bit-identical to the control — and *non-trivial* — at least one
/// retransmission happened and no link died.
///
/// Honors `PARADE_CHAOS` (same mini-language as everywhere else); when the
/// variable is unset or names no active fault, falls back to the pinned
/// [`ChaosProfile::lossy`] schedule the soak tests use, so CI always
/// exercises a hostile wire.
pub fn chaos_smoke(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    use parade_net::ChaosProfile;
    let chaos = {
        let env = ChaosProfile::from_env();
        if env.is_active() {
            env
        } else {
            ChaosProfile::lossy(0xC6A0_5EED)
        }
    };
    let nodes = opts.nodes.iter().copied().find(|&n| n >= 4).unwrap_or(4);
    let cfg = |chaos: ChaosProfile| ClusterConfig {
        nodes,
        net: NetProfile::clan_via(),
        time: TimeSource::Manual,
        chaos,
        ..ClusterConfig::default()
    };
    let (clean, _) = cg_parade(&Cluster::from_config(cfg(ChaosProfile::off())), CgClass::S);
    let (chaotic, report) = cg_parade(&Cluster::from_config(cfg(chaos.clone())), CgClass::S);

    if let Some(err) = &report.cluster.fabric_error {
        return Err(format!("chaos-smoke: link died during soak: {err}"));
    }
    if !chaotic.verify(CgClass::S) {
        return Err(format!(
            "chaos-smoke: CG class S failed NPB verification under chaos: zeta={}",
            chaotic.zeta
        ));
    }
    if chaotic.zeta.to_bits() != clean.zeta.to_bits()
        || chaotic.rnorm.to_bits() != clean.rnorm.to_bits()
    {
        return Err(format!(
            "chaos-smoke: chaos perturbed the arithmetic: zeta {} vs {}, rnorm {} vs {}",
            chaotic.zeta, clean.zeta, chaotic.rnorm, clean.rnorm
        ));
    }
    let h = report.cluster.link_health_totals();
    if h.retransmits == 0 {
        return Err(format!(
            "chaos-smoke: fault schedule injected no retransmission — soak proves nothing: {h:?}"
        ));
    }

    let mut t = Table::new(
        format!(
            "Chaos smoke — CG class S on {nodes} nodes, seed {:#x} \
             (drop {:.1}%, dup {:.1}%, reorder {:.1}%, delay {:.1}%)",
            chaos.seed,
            chaos.base.drop * 100.0,
            chaos.base.duplicate * 100.0,
            chaos.base.reorder * 100.0,
            chaos.base.delay * 100.0,
        ),
        &["check", "value"],
    );
    t.row(vec![
        "zeta (bit-identical to clean run)".into(),
        format!("{}", chaotic.zeta),
    ]);
    for (k, v) in h.fields() {
        t.row(vec![k.into(), v.to_string()]);
    }
    Ok(vec![t])
}

/// Adaptive-DSM smoke (`figures -- adapt-smoke`): NPB CG class S under the
/// three per-page protocol-selection modes, plus adaptive with stride
/// prefetch enabled. Fails unless every mode is NPB-verified and
/// bit-identical to the all-invalidate reference — the protocol-equivalence
/// contract: invalidate + refetch and a home push install the same merged
/// bytes, and prefetch only moves fetches earlier — and the bulk fetch
/// path stayed live (CG's whole-vector reads must coalesce into
/// `ReqPageRange` trips). CG reads each vector in one bulk call per
/// iteration, so the *stride* predictor has no inter-fault stride to
/// learn — its non-triviality is pinned by the `fault_storm/` bench
/// family and the predictor unit corpus instead.
pub fn adapt_smoke(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    use parade_dsm::ProtoSelect;
    let nodes = opts
        .nodes
        .iter()
        .copied()
        .filter(|&n| n >= 4)
        .max()
        .unwrap_or(8);
    let cfg = |select: ProtoSelect, prefetch: bool| ClusterConfig {
        nodes,
        net: NetProfile::clan_via(),
        time: TimeSource::Manual,
        proto_select: select,
        stride_prefetch: prefetch,
        ..ClusterConfig::default()
    };
    let runs = [
        ("all-invalidate", ProtoSelect::AllInvalidate, false),
        ("all-update", ProtoSelect::AllUpdate, false),
        ("adaptive", ProtoSelect::Adaptive, false),
        ("adaptive + prefetch", ProtoSelect::Adaptive, true),
    ];
    let mut t = Table::new(
        format!("Adaptive-DSM smoke — CG class S on {nodes} nodes, all modes bit-identical"),
        &[
            "mode",
            "zeta",
            "fetches",
            "range fetches",
            "prefetch hits",
            "update pushes",
            "invalidations",
        ],
    );
    let mut reference: Option<(u64, u64)> = None;
    // Page-protocol messages (demand fetches + update pushes) per mode,
    // to prove the adaptive policy never costs more than either static
    // extreme on this workload.
    let mut proto_msgs: Vec<(&str, u64)> = Vec::new();
    for (label, select, prefetch) in runs {
        let (res, report) = cg_parade(&Cluster::from_config(cfg(select, prefetch)), CgClass::S);
        if let Some(err) = &report.cluster.fabric_error {
            return Err(format!("adapt-smoke: link died under {label}: {err}"));
        }
        if !res.verify(CgClass::S) {
            return Err(format!(
                "adapt-smoke: CG failed NPB verification under {label}: zeta={}",
                res.zeta
            ));
        }
        let bits = (res.zeta.to_bits(), res.rnorm.to_bits());
        match reference {
            None => reference = Some(bits),
            Some(r) if r != bits => {
                return Err(format!(
                    "adapt-smoke: {label} diverged from all-invalidate: zeta={}",
                    res.zeta
                ));
            }
            Some(_) => {}
        }
        let d = report.cluster.dsm_totals();
        if prefetch && d.range_fetches == 0 {
            return Err(format!(
                "adapt-smoke: {label} never coalesced a bulk read into a \
                 range fetch — bulk fetch path dead"
            ));
        }
        proto_msgs.push((label, d.page_fetches + d.update_pushes));
        t.row(vec![
            label.into(),
            format!("{}", res.zeta),
            d.page_fetches.to_string(),
            d.range_fetches.to_string(),
            d.prefetch_hits.to_string(),
            d.update_pushes.to_string(),
            d.invalidations.to_string(),
        ]);
    }
    // CG-S is multi-writer on the shared vectors, so the adaptive policy
    // should settle on invalidate (matching all-invalidate's cost) while
    // all-update pays pushes on top of the fetches it does save — a
    // silent fallback to always-update shows up as adaptive >= update.
    let msgs = |want: &str| {
        proto_msgs
            .iter()
            .find(|(l, _)| *l == want)
            .map(|&(_, m)| m)
            .expect("all runs recorded")
    };
    let (adapt, inval, update) = (msgs("adaptive"), msgs("all-invalidate"), msgs("all-update"));
    if adapt > inval || adapt >= update {
        return Err(format!(
            "adapt-smoke: adaptive spent {adapt} page-protocol messages vs \
             all-invalidate {inval} / all-update {update} — the adaptive \
             policy must never cost more than either static extreme"
        ));
    }
    Ok(vec![t])
}

fn energy_bits(r: &MdResult) -> [u64; 4] {
    [
        r.first.potential.to_bits(),
        r.first.kinetic.to_bits(),
        r.last.potential.to_bits(),
        r.last.kinetic.to_bits(),
    ]
}

/// Task-kernel smoke (`figures -- task-smoke`): the task-based n-body
/// kernel must produce bit-identical energies under flat task placement,
/// randomized work stealing (two different seeds), and the blockwise
/// sequential reference — the determinism contract of the distributed
/// task scheduler (results are merged in task-id order, and ids depend
/// only on the spawn structure, never on who stole what).
pub fn task_smoke(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    use parade_kernels::nbody_task::{nbody_task_parade, nbody_task_sequential};
    use parade_tasks::{SchedConfig, StealStrategy};

    let nodes = opts.nodes.iter().copied().find(|&n| n >= 4).unwrap_or(4);
    let p = MdParams::sized(48, 3);
    let blocks = 2 * nodes;
    let cfg = |sched: SchedConfig| ClusterConfig {
        nodes,
        exec: ExecConfig::TwoThreadTwoCpu,
        net: NetProfile::zero(),
        time: TimeSource::Manual,
        pool_bytes: 4 << 20,
        task_scheduler: sched,
        ..ClusterConfig::default()
    };
    let mut runs: Vec<(&str, MdResult)> =
        vec![("sequential reference", nbody_task_sequential(p, blocks))];
    let schedules = [
        (
            "flat placement",
            SchedConfig {
                strategy: StealStrategy::Flat,
                ..SchedConfig::default()
            },
        ),
        (
            "stealing, seed 0x5EED",
            SchedConfig {
                seed: 0x5EED,
                ..SchedConfig::default()
            },
        ),
        (
            "stealing, seed 0xA11CE",
            SchedConfig {
                seed: 0xA11CE,
                ..SchedConfig::default()
            },
        ),
    ];
    for (label, sched) in schedules {
        let (res, report) = nbody_task_parade(&Cluster::from_config(cfg(sched)), p, blocks);
        if let Some(err) = &report.cluster.fabric_error {
            return Err(format!("task-smoke: link died under {label}: {err}"));
        }
        runs.push((label, res));
    }
    let reference = energy_bits(&runs[0].1);
    let mut t = Table::new(
        format!(
            "Task smoke — n-body {} particles, {blocks} blocks, {} steps on {nodes} nodes",
            p.np, p.steps
        ),
        &[
            "schedule",
            "final potential",
            "final kinetic",
            "bit-identical",
        ],
    );
    for (label, r) in &runs {
        let same = energy_bits(r) == reference;
        t.row(vec![
            (*label).into(),
            format!("{}", r.last.potential),
            format!("{}", r.last.kinetic),
            same.to_string(),
        ]);
        if !same {
            return Err(format!(
                "task-smoke: {label} diverged from the sequential reference"
            ));
        }
    }
    Ok(vec![t])
}

/// Chaos steal-soak (`figures -- steal-soak`): the n-body task phase under
/// randomized work stealing on a lossy wire (`PARADE_CHAOS` or the pinned
/// schedule). The reliable channel must make task scheduling exactly-once
/// under drop/dup/reorder: the energies stay bit-identical to the
/// sequential reference, at least one retransmission fired, and no link
/// died. (The scheduler's merge additionally audits that every spawned
/// task executed exactly once and fails the run otherwise.)
pub fn steal_soak(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    use parade_kernels::nbody_task::{nbody_task_parade, nbody_task_sequential};
    use parade_net::ChaosProfile;

    let chaos = {
        let env = ChaosProfile::from_env();
        if env.is_active() {
            env
        } else {
            ChaosProfile::lossy(0x7A5C_5EED)
        }
    };
    let nodes = opts.nodes.iter().copied().find(|&n| n >= 4).unwrap_or(4);
    let p = MdParams::sized(48, 2);
    let blocks = 2 * nodes;
    let cfg = ClusterConfig {
        nodes,
        exec: ExecConfig::TwoThreadTwoCpu,
        net: NetProfile::clan_via(),
        time: TimeSource::Manual,
        pool_bytes: 4 << 20,
        chaos: chaos.clone(),
        ..ClusterConfig::default()
    };
    let seq = nbody_task_sequential(p, blocks);
    let (res, report) = nbody_task_parade(&Cluster::from_config(cfg), p, blocks);
    if let Some(err) = &report.cluster.fabric_error {
        return Err(format!("steal-soak: link died during soak: {err}"));
    }
    if energy_bits(&res) != energy_bits(&seq) {
        return Err(format!(
            "steal-soak: chaos perturbed the task schedule's arithmetic: \
             potential {} vs {}, kinetic {} vs {}",
            res.last.potential, seq.last.potential, res.last.kinetic, seq.last.kinetic
        ));
    }
    let h = report.cluster.link_health_totals();
    if h.retransmits == 0 {
        return Err(format!(
            "steal-soak: fault schedule injected no retransmission — soak proves nothing: {h:?}"
        ));
    }
    let mut t = Table::new(
        format!(
            "Steal soak — n-body tasks under stealing on {nodes} nodes, seed {:#x} \
             (drop {:.1}%, dup {:.1}%, reorder {:.1}%, delay {:.1}%)",
            chaos.seed,
            chaos.base.drop * 100.0,
            chaos.base.duplicate * 100.0,
            chaos.base.reorder * 100.0,
            chaos.base.delay * 100.0,
        ),
        &["check", "value"],
    );
    t.row(vec![
        "final potential (bit-identical to sequential)".into(),
        format!("{}", res.last.potential),
    ]);
    t.row(vec![
        "tasks per step (merged exactly once)".into(),
        blocks.to_string(),
    ]);
    for (k, v) in h.fields() {
        t.row(vec![k.into(), v.to_string()]);
    }
    Ok(vec![t])
}

/// Serving soak (`figures -- serve-soak`): a large deterministic stream of
/// small jobs through the multi-job serving layer, one in seven scheduled
/// to lose a node mid-run. Honors `PARADE_CHAOS` as residual wire chaos on
/// every job's sub-fabric (falls back to the pinned lossy schedule, so CI
/// always soaks a hostile wire). Fails closed unless:
///
/// * every job completed **exactly once** and **bit-identical** to its
///   sequential reference (node death and chaos reshuffle virtual time,
///   never payloads), and
/// * at least one job actually lost a node and was re-homed from its
///   barrier-time checkpoint (a death schedule that never fires proves
///   nothing).
///
/// `--quick` serves 120 jobs; the full run serves 1000 (the CI soak).
pub fn serve_soak(opts: &FigureOpts) -> Result<Vec<Table>, String> {
    use parade_net::ChaosProfile;
    use parade_serve::{soak, SoakConfig};
    let chaos = {
        let env = ChaosProfile::from_env();
        if env.is_active() {
            env
        } else {
            ChaosProfile::lossy(0x5E17_E5EED)
        }
    };
    let cfg = SoakConfig {
        jobs: if opts.quick { 120 } else { 1000 },
        machine_nodes: 12,
        death_every: 7,
        chaos: chaos.clone(),
        ..SoakConfig::default()
    };
    let s = soak(&cfg);
    if !s.ok() {
        return Err(format!(
            "serve-soak: {} of {} jobs completed exactly once, {} digest mismatches — \
             the serving layer lost or corrupted work",
            s.completed_once, s.jobs, s.digest_mismatches
        ));
    }
    if s.rehomed_jobs == 0 {
        return Err(
            "serve-soak: no job was ever re-homed — the death schedule never fired, \
             the soak proves nothing about failure survival"
                .to_string(),
        );
    }
    let mut t = Table::new(
        format!(
            "Serve soak — {} jobs on {} nodes, 1-in-{} scheduled node deaths, \
             chaos seed {:#x} (drop {:.1}%, dup {:.1}%, reorder {:.1}%)",
            cfg.jobs,
            cfg.machine_nodes,
            cfg.death_every,
            chaos.seed,
            chaos.base.drop * 100.0,
            chaos.base.duplicate * 100.0,
            chaos.base.reorder * 100.0,
        ),
        &["check", "value"],
    );
    t.row(vec![
        "jobs completed exactly once".into(),
        format!("{}/{}", s.completed_once, s.jobs),
    ]);
    t.row(vec![
        "digest mismatches vs sequential reference".into(),
        s.digest_mismatches.to_string(),
    ]);
    t.row(vec![
        "jobs that survived a node death".into(),
        s.rehomed_jobs.to_string(),
    ]);
    t.row(vec!["re-home events".into(), s.rehomes.to_string()]);
    t.row(vec![
        "machine nodes power-cycled".into(),
        s.dead_nodes.to_string(),
    ]);
    t.row(vec![
        "batch makespan (virtual)".into(),
        parade_core::VTime::from_nanos(s.makespan.as_nanos()).to_string(),
    ]);
    t.row(vec![
        "mean job latency (virtual ns)".into(),
        s.mean_latency_ns.to_string(),
    ]);
    t.row(vec![
        "mean queue wait (virtual ns)".into(),
        s.mean_wait_ns.to_string(),
    ]);
    Ok(vec![t])
}

/// All figures, in paper order.
pub fn all_figures(opts: &FigureOpts) -> Vec<Table> {
    vec![
        fig6(opts),
        fig7(opts),
        fig8(opts),
        fig9(opts),
        fig10(opts),
        fig11(opts),
        update_methods(opts),
        ablation_home(opts),
        ablation_fabric(opts),
        ablation_schedules(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_and_csv() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| 1 "));
        assert_eq!(t.csv(), "a,bb\n1,2\n");
    }

    #[test]
    fn chaos_smoke_passes_and_reports_retransmissions() {
        let tables = chaos_smoke(&FigureOpts::quick()).expect("soak must pass");
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.title.contains("Chaos smoke"));
        let retx = t
            .rows
            .iter()
            .find(|r| r[0] == "retransmits")
            .expect("retransmit row");
        assert!(retx[1].parse::<u64>().unwrap() >= 1);
    }

    #[test]
    fn adapt_smoke_is_bit_identical_across_protocol_modes() {
        let tables = adapt_smoke(&FigureOpts::quick()).expect("adapt smoke must pass");
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.title.contains("Adaptive-DSM smoke"));
        assert_eq!(t.rows.len(), 4);
        let zeta = &t.rows[0][1];
        assert!(t.rows.iter().all(|r| &r[1] == zeta), "{:?}", t.rows);
    }

    #[test]
    fn task_smoke_is_bit_identical_across_schedules() {
        let tables = task_smoke(&FigureOpts::quick()).expect("task smoke must pass");
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.title.contains("Task smoke"));
        assert_eq!(t.rows.len(), 4); // sequential + flat + 2 steal seeds
        assert!(t.rows.iter().all(|r| r[3] == "true"), "{:?}", t.rows);
    }

    #[test]
    fn steal_soak_survives_chaos_with_retransmissions() {
        let tables = steal_soak(&FigureOpts::quick()).expect("steal soak must pass");
        let t = &tables[0];
        assert!(t.title.contains("Steal soak"));
        let retx = t
            .rows
            .iter()
            .find(|r| r[0] == "retransmits")
            .expect("retransmit row");
        assert!(retx[1].parse::<u64>().unwrap() >= 1);
    }

    #[test]
    fn serve_soak_survives_scheduled_deaths_exactly_once() {
        let tables = serve_soak(&FigureOpts::quick()).expect("serve soak must pass");
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.title.contains("Serve soak"));
        let row = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0].starts_with(k))
                .unwrap_or_else(|| panic!("missing row {k}"))[1]
                .clone()
        };
        assert_eq!(row("jobs completed exactly once"), "120/120");
        assert_eq!(row("digest mismatches"), "0");
        assert!(
            row("jobs that survived a node death")
                .parse::<u64>()
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn quick_fig6_shape_holds() {
        // Smoke-test the smallest sweep: ParADE must beat the SDSM path by
        // 4 nodes (the Figure 6 claim).
        let opts = FigureOpts {
            nodes: vec![2, 4],
            ..FigureOpts::quick()
        };
        let t = fig6(&opts);
        assert_eq!(t.rows.len(), 2);
        let last = &t.rows[1];
        let parade: f64 = last[1].parse().unwrap();
        let sdsm: f64 = last[2].parse().unwrap();
        assert!(parade < sdsm, "parade {parade} sdsm {sdsm}");
    }
}
