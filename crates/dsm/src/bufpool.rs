//! Thread-local pool of page-sized scratch buffers.
//!
//! The release path needs a page-sized buffer per dirty page (the working
//! snapshot the diff is computed from) and another per first-write (the
//! twin). Allocating a fresh `vec![0u8; PAGE_SIZE]` for each is exactly
//! the per-page overhead HLRC batching is meant to amortize, so buffers
//! are recycled through a small per-thread free list instead: `take` pops
//! one (or allocates on a cold pool) and dropping a [`PageBuf`] pushes it
//! back. Buffers cross threads freely — a twin made by one application
//! thread and flushed by another simply retires to the flusher's pool.
//!
//! Contents of a taken buffer are unspecified: every user overwrites the
//! full page (`copy_page_out` snapshots, twin copies) before reading it.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use crate::page::PAGE_SIZE;

/// Per-thread free-list cap; beyond this, dropped buffers are freed.
const POOL_CAP: usize = 32;

thread_local! {
    static POOL: RefCell<Vec<Box<[u8]>>> = const { RefCell::new(Vec::new()) };
}

/// A pooled `PAGE_SIZE`-byte buffer; derefs to `[u8]`.
pub struct PageBuf {
    buf: Option<Box<[u8]>>,
}

impl PageBuf {
    /// Grab a buffer from the calling thread's pool (unspecified contents).
    pub fn take() -> PageBuf {
        let buf = POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_else(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        PageBuf { buf: Some(buf) }
    }
}

impl Drop for PageBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < POOL_CAP {
                    pool.push(buf);
                }
            });
        }
    }
}

impl Deref for PageBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.buf.as_deref().expect("live buffer")
    }
}

impl DerefMut for PageBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.buf.as_deref_mut().expect("live buffer")
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_drop_recycles() {
        let mut a = PageBuf::take();
        a[0] = 0xAB;
        a[PAGE_SIZE - 1] = 0xCD;
        drop(a);
        // The recycled buffer comes back with its old contents — callers
        // must overwrite, and this asserts the recycling actually happens.
        let b = PageBuf::take();
        assert_eq!(b[0], 0xAB);
        assert_eq!(b[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn pool_is_bounded() {
        let many: Vec<PageBuf> = (0..2 * POOL_CAP).map(|_| PageBuf::take()).collect();
        drop(many);
        POOL.with(|p| assert!(p.borrow().len() <= POOL_CAP));
    }
}
