//! Twins and diffs (HLRC §5.2).
//!
//! On the first write to a clean page a *twin* (pristine copy) is made. At
//! a release point the runtime compares the working page against its twin
//! and encodes the modified words as a *diff*, which is shipped to the
//! page's home and merged there. Homes never need twins — all diffs merge
//! into the home copy (one of the paper's arguments for home-based LRC).

use parade_mpi::datatype::{Reader, Writer};

use crate::page::PAGE_SIZE;

const WORD: usize = 8;

/// One run of modified bytes within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page (word aligned).
    pub offset: u32,
    /// Modified bytes.
    pub data: Vec<u8>,
}

/// A page diff: the set of word runs that differ from the twin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compare `current` against `twin` and collect modified word runs.
    pub fn create(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), PAGE_SIZE);
        assert_eq!(current.len(), PAGE_SIZE);
        let mut runs = Vec::new();
        let words = PAGE_SIZE / WORD;
        let mut w = 0;
        while w < words {
            let a = &twin[w * WORD..(w + 1) * WORD];
            let b = &current[w * WORD..(w + 1) * WORD];
            if a != b {
                let start = w;
                while w < words
                    && twin[w * WORD..(w + 1) * WORD] != current[w * WORD..(w + 1) * WORD]
                {
                    w += 1;
                }
                runs.push(DiffRun {
                    offset: (start * WORD) as u32,
                    data: current[start * WORD..w * WORD].to_vec(),
                });
            } else {
                w += 1;
            }
        }
        Diff { runs }
    }

    /// Apply this diff to `target` (the home's copy of the page).
    pub fn apply(&self, target: &mut [u8]) {
        assert_eq!(target.len(), PAGE_SIZE);
        for run in &self.runs {
            let off = run.offset as usize;
            target[off..off + run.data.len()].copy_from_slice(&run.data);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Encoded wire size.
    pub fn encoded_len(&self) -> usize {
        4 + self.runs.iter().map(|r| 8 + r.data.len()).sum::<usize>()
    }

    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.runs.len() as u32);
        for run in &self.runs {
            w.u32(run.offset);
            w.lp_bytes(&run.data);
        }
    }

    pub fn decode(r: &mut Reader<'_>) -> Diff {
        let n = r.u32() as usize;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            let offset = r.u32();
            let data = r.lp_bytes().to_vec();
            runs.push(DiffRun { offset, data });
        }
        Diff { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    #[test]
    fn empty_diff_for_identical_pages() {
        let twin = page_with(&[(3, 7)]);
        let cur = twin.clone();
        let d = Diff::create(&twin, &cur);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = page_with(&[]);
        let cur = page_with(&[(17, 9)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 16); // word containing byte 17
        assert_eq!(d.runs[0].data.len(), WORD);
        assert_eq!(d.payload_bytes(), 8);
    }

    #[test]
    fn adjacent_words_coalesce_into_one_run() {
        let twin = page_with(&[]);
        let cur = page_with(&[(8, 1), (16, 2), (24, 3)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 24);
    }

    #[test]
    fn separated_changes_make_separate_runs() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (100, 2), (4000, 3)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 3);
    }

    #[test]
    fn apply_reproduces_modified_page() {
        let twin = page_with(&[(5, 5), (2000, 20)]);
        let cur = page_with(&[(5, 6), (900, 9), (2000, 20), (4095, 255)]);
        let d = Diff::create(&twin, &cur);
        let mut other = twin.clone();
        d.apply(&mut other);
        assert_eq!(other, cur);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (64, 2), (72, 3), (4088, 9)]);
        let d = Diff::create(&twin, &cur);
        let mut w = Writer::new();
        d.encode(&mut w);
        let b = w.finish();
        assert_eq!(b.len(), d.encoded_len());
        let d2 = Diff::decode(&mut Reader::new(&b));
        assert_eq!(d, d2);
    }

    #[test]
    fn diff_merging_from_two_writers_disjoint_words() {
        // Two nodes write disjoint words of the same page; applying both
        // diffs at the home must merge cleanly (the multiple-writer
        // property LRC depends on).
        let base = page_with(&[]);
        let a = page_with(&[(8, 1)]);
        let b = page_with(&[(4000, 2)]);
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut home = base.clone();
        da.apply(&mut home);
        db.apply(&mut home);
        assert_eq!(home[8], 1);
        assert_eq!(home[4000], 2);
    }
}
