//! Twins and diffs (HLRC §5.2).
//!
//! On the first write to a clean page a *twin* (pristine copy) is made. At
//! a release point the runtime compares the working page against its twin
//! and encodes the modified words as a *diff*, which is shipped to the
//! page's home and merged there. Homes never need twins — all diffs merge
//! into the home copy (one of the paper's arguments for home-based LRC).
//!
//! Decoding treats the wire as untrusted: a corrupted run table yields a
//! structured [`DecodeError`], never an out-of-bounds panic at the home,
//! and every run of a successfully decoded diff is guaranteed in-bounds
//! and word-aligned, so [`Diff::apply`] cannot index outside the page.

use parade_mpi::datatype::{Reader, Writer};

use crate::page::PAGE_SIZE;

const WORD: usize = 8;

/// A malformed protocol payload (fail-stop instead of an indexing panic,
/// in the style of `parade_net::FabricError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the announced field.
    Truncated {
        what: &'static str,
        need: usize,
        have: usize,
    },
    /// The run count cannot fit in the remaining bytes (OOM guard: the
    /// count sizes a `Vec` allocation and must be backed by real bytes).
    RunCount { count: u32, have: usize },
    /// A run lands outside the page.
    RunOutOfBounds { offset: u32, len: u32 },
    /// A run is not aligned to the diff word granularity.
    Misaligned { offset: u32, len: u32 },
    /// Unknown message kind byte.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { what, need, have } => {
                write!(
                    f,
                    "truncated payload: {what} needs {need} bytes, {have} left"
                )
            }
            DecodeError::RunCount { count, have } => {
                write!(
                    f,
                    "diff run count {count} exceeds payload ({have} bytes left)"
                )
            }
            DecodeError::RunOutOfBounds { offset, len } => write!(
                f,
                "diff run [{offset}, {offset}+{len}) outside page of {PAGE_SIZE} bytes"
            ),
            DecodeError::Misaligned { offset, len } => write!(
                f,
                "diff run offset {offset} len {len} not aligned to {WORD}-byte words"
            ),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

pub(crate) fn need(r: &Reader<'_>, n: usize, what: &'static str) -> Result<(), DecodeError> {
    if r.remaining() < n {
        return Err(DecodeError::Truncated {
            what,
            need: n,
            have: r.remaining(),
        });
    }
    Ok(())
}

/// One run of modified bytes within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page (word aligned).
    pub offset: u32,
    /// Modified bytes.
    pub data: Vec<u8>,
}

/// A page diff: the set of word runs that differ from the twin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compare `current` against `twin` and collect modified word runs.
    ///
    /// The comparison walks both pages one 64-bit word at a time (the diff
    /// granularity), not byte-by-byte slice compares — the release path
    /// diffs every dirty page, so this is hot. A trailing partial word
    /// (page sizes that are not a multiple of 8) is compared byte-wise:
    /// the word loop must never read past `len`, and the tail bytes still
    /// have to make it into the diff.
    pub fn create(twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), current.len());
        let len = twin.len();
        #[inline(always)]
        fn word(p: &[u8], w: usize) -> u64 {
            // Equality is endianness-agnostic; `from_ne_bytes` compiles to
            // a single unaligned load.
            u64::from_ne_bytes(p[w * WORD..(w + 1) * WORD].try_into().expect("word"))
        }
        let mut runs = Vec::new();
        let words = len / WORD;
        let mut w = 0;
        while w < words {
            if word(twin, w) != word(current, w) {
                let start = w;
                while w < words && word(twin, w) != word(current, w) {
                    w += 1;
                }
                runs.push(DiffRun {
                    offset: (start * WORD) as u32,
                    data: current[start * WORD..w * WORD].to_vec(),
                });
            } else {
                w += 1;
            }
        }
        let tail = words * WORD;
        if tail < len && twin[tail..] != current[tail..] {
            // Ship the whole partial word as one run; merge with a run
            // that already ends at the tail boundary.
            match runs.last_mut() {
                Some(last) if last.offset as usize + last.data.len() == tail => {
                    last.data.extend_from_slice(&current[tail..]);
                }
                _ => runs.push(DiffRun {
                    offset: tail as u32,
                    data: current[tail..].to_vec(),
                }),
            }
        }
        Diff { runs }
    }

    /// Apply this diff to `target` (the home's copy of the page).
    ///
    /// Runs of a decoded diff are validated in-bounds by [`Diff::decode`];
    /// locally created diffs are in-bounds for the page they were created
    /// from by construction.
    pub fn apply(&self, target: &mut [u8]) {
        for run in &self.runs {
            let off = run.offset as usize;
            target[off..off + run.data.len()].copy_from_slice(&run.data);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Encoded wire size.
    pub fn encoded_len(&self) -> usize {
        4 + self.runs.iter().map(|r| 8 + r.data.len()).sum::<usize>()
    }

    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.runs.len() as u32);
        for run in &self.runs {
            w.u32(run.offset);
            w.lp_bytes(&run.data);
        }
    }

    /// Decode a diff, validating every run against the page bounds and the
    /// word granularity. The run count is checked against the bytes
    /// actually present before it sizes an allocation, so a corrupted
    /// count can neither OOM nor panic.
    pub fn decode(r: &mut Reader<'_>) -> Result<Diff, DecodeError> {
        need(r, 4, "diff run count")?;
        let n = r.u32();
        // Every run occupies at least 8 header bytes on the wire.
        if (n as usize).saturating_mul(8) > r.remaining() {
            return Err(DecodeError::RunCount {
                count: n,
                have: r.remaining(),
            });
        }
        let mut runs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            need(r, 8, "diff run header")?;
            let offset = r.u32();
            let len = r.u32();
            need(r, len as usize, "diff run data")?;
            let end = (offset as u64).saturating_add(len as u64);
            if end > PAGE_SIZE as u64 {
                return Err(DecodeError::RunOutOfBounds { offset, len });
            }
            if !(offset as usize).is_multiple_of(WORD) || !(len as usize).is_multiple_of(WORD) {
                return Err(DecodeError::Misaligned { offset, len });
            }
            let data = r.bytes(len as usize).to_vec();
            runs.push(DiffRun { offset, data });
        }
        Ok(Diff { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u8)]) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        for &(i, v) in vals {
            p[i] = v;
        }
        p
    }

    fn decode_bytes(b: &[u8]) -> Result<Diff, DecodeError> {
        Diff::decode(&mut Reader::new(b))
    }

    #[test]
    fn empty_diff_for_identical_pages() {
        let twin = page_with(&[(3, 7)]);
        let cur = twin.clone();
        let d = Diff::create(&twin, &cur);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = page_with(&[]);
        let cur = page_with(&[(17, 9)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 16); // word containing byte 17
        assert_eq!(d.runs[0].data.len(), WORD);
        assert_eq!(d.payload_bytes(), 8);
    }

    #[test]
    fn adjacent_words_coalesce_into_one_run() {
        let twin = page_with(&[]);
        let cur = page_with(&[(8, 1), (16, 2), (24, 3)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 24);
    }

    #[test]
    fn separated_changes_make_separate_runs() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (100, 2), (4000, 3)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 3);
    }

    #[test]
    fn apply_reproduces_modified_page() {
        let twin = page_with(&[(5, 5), (2000, 20)]);
        let cur = page_with(&[(5, 6), (900, 9), (2000, 20), (4095, 255)]);
        let d = Diff::create(&twin, &cur);
        let mut other = twin.clone();
        d.apply(&mut other);
        assert_eq!(other, cur);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (64, 2), (72, 3), (4088, 9)]);
        let d = Diff::create(&twin, &cur);
        let mut w = Writer::new();
        d.encode(&mut w);
        let b = w.finish();
        assert_eq!(b.len(), d.encoded_len());
        let d2 = Diff::decode(&mut Reader::new(&b)).expect("valid wire diff");
        assert_eq!(d, d2);
    }

    #[test]
    fn decode_rejects_out_of_bounds_run() {
        // One run: offset 4088, len 16 — offset + len > PAGE_SIZE. The old
        // decoder accepted this and `apply` panicked at the home.
        let mut w = Writer::new();
        w.u32(1).u32(4088).lp_bytes(&[0u8; 16]);
        let b = w.finish();
        assert_eq!(
            decode_bytes(&b),
            Err(DecodeError::RunOutOfBounds {
                offset: 4088,
                len: 16
            })
        );
    }

    #[test]
    fn decode_rejects_offset_overflowing_u32() {
        let mut w = Writer::new();
        w.u32(1).u32(u32::MAX - 4).lp_bytes(&[0u8; 8]);
        let b = w.finish();
        assert!(matches!(
            decode_bytes(&b),
            Err(DecodeError::RunOutOfBounds { .. })
        ));
    }

    #[test]
    fn decode_rejects_unbacked_run_count() {
        // Count claims 2^28 runs in a 12-byte payload: must error before
        // any allocation sized by the count.
        let mut w = Writer::new();
        w.u32(1 << 28).u32(0).u32(0);
        let b = w.finish();
        assert!(matches!(
            decode_bytes(&b),
            Err(DecodeError::RunCount { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let twin = page_with(&[]);
        let cur = page_with(&[(0, 1), (64, 2), (4088, 9)]);
        let d = Diff::create(&twin, &cur);
        let mut w = Writer::new();
        d.encode(&mut w);
        let b = w.finish();
        for cut in 0..b.len() {
            // Either a shorter valid prefix decodes (possible when a whole
            // run boundary is cut) or a structured error comes back; a
            // panic is the only failure.
            let _ = decode_bytes(&b[..cut]);
        }
    }

    #[test]
    fn decode_rejects_misaligned_run() {
        let mut w = Writer::new();
        w.u32(1).u32(13).lp_bytes(&[0u8; 8]);
        let b = w.finish();
        assert_eq!(
            decode_bytes(&b),
            Err(DecodeError::Misaligned { offset: 13, len: 8 })
        );
    }

    #[test]
    fn odd_page_size_tail_is_diffed_not_read_past() {
        // 4097 bytes: 512 whole words plus one tail byte. The word loop
        // must stop at byte 4096 and the tail byte still diff.
        let mut twin = vec![0u8; PAGE_SIZE + 1];
        twin[100] = 7;
        let mut cur = twin.clone();
        cur[PAGE_SIZE] = 0xEE; // only the partial word changed
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset as usize, PAGE_SIZE);
        assert_eq!(d.runs[0].data, vec![0xEE]);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn odd_page_size_tail_merges_with_adjacent_run() {
        // Last whole word and the tail both change: one contiguous run.
        let len = 19; // 2 words + 3 tail bytes
        let twin = vec![0u8; len];
        let mut cur = twin.clone();
        for b in &mut cur[8..] {
            *b = 5;
        }
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 11);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn diff_merging_from_two_writers_disjoint_words() {
        // Two nodes write disjoint words of the same page; applying both
        // diffs at the home must merge cleanly (the multiple-writer
        // property LRC depends on).
        let base = page_with(&[]);
        let a = page_with(&[(8, 1)]);
        let b = page_with(&[(4000, 2)]);
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut home = base.clone();
        da.apply(&mut home);
        db.apply(&mut home);
        assert_eq!(home[8], 1);
        assert_eq!(home[4000], 2);
    }
}
