//! Per-node DSM protocol counters.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live counters (lock-free, updated by protocol code).
        #[derive(Debug, Default)]
        pub struct DsmStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`DsmStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct DsmStatsSnapshot {
            $(pub $name: u64,)+
        }

        impl DsmStats {
            pub fn snapshot(&self) -> DsmStatsSnapshot {
                DsmStatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl DsmStatsSnapshot {
            /// Elementwise sum (for cluster-wide aggregation).
            pub fn merge(&mut self, other: &DsmStatsSnapshot) {
                $(self.$name += other.$name;)+
            }

            /// `(name, value)` pairs in declaration order, for generic
            /// rendering and JSON emission.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }
    };
}

counters! {
    /// Read faults taken (page not locally readable).
    read_faults,
    /// Write faults taken (page not locally writable).
    write_faults,
    /// Pages fetched from a remote home.
    page_fetches,
    /// Bytes of page data fetched.
    fetch_bytes,
    /// Twins created on first write to a non-home page.
    twins_created,
    /// Diffs shipped to homes (one per dirty page, batched or not).
    diffs_sent,
    /// Wire bytes of diff messages shipped (encoded message payloads —
    /// what the fabric actually carries, for overhead attribution).
    diff_bytes,
    /// Modified bytes carried inside those diffs (run data only; the
    /// wire-vs-payload gap is the protocol's framing overhead).
    diff_payload_bytes,
    /// DiffBatch messages sent (one per destination home per release).
    diff_batches,
    /// Pages whose diffs rode inside a DiffBatch.
    batched_pages,
    /// ReqPageRange round trips (coalesced contiguous-page fetches).
    range_fetches,
    /// Pages fetched via ReqPageRange (also counted in `page_fetches`).
    range_fetch_pages,
    /// Pages invalidated by write notices.
    invalidations,
    /// Home migrations applied (counted at the node gaining home-ship).
    home_migrations,
    /// Global barriers completed.
    barriers,
    /// Distributed lock acquisitions.
    lock_acquires,
    /// Poll rounds spent busy-waiting for locks (Polling variant).
    lock_polls,
    /// Requests serviced by this node's communication thread.
    serviced_requests,
    /// Full pages pushed to migrated homes.
    pushes_sent,
    /// Threads that blocked on an in-flight page update
    /// (TRANSIENT/BLOCKED waits — the §5.1 machinery at work).
    update_waits,
    /// Speculative stride-prefetch requests issued (each covers one or
    /// more predicted pages).
    prefetch_issued,
    /// Pages fetched speculatively by the stride predictor (also counted
    /// in `page_fetches`).
    prefetch_pages,
    /// Prefetched pages later consumed by the predicted access stream
    /// without faulting.
    prefetch_hits,
    /// Confirmed-stride predictions broken by the next fault; reaching
    /// `prefetch_mispredict_budget` disables that thread's predictor.
    prefetch_mispredicts,
    /// Merged pages pushed to sharers under the update protocol (also
    /// counted in `pushes_sent`).
    update_pushes,
    /// Barrier-time protocol flips decided for pages (invalidate↔update;
    /// counted at the root making the decision).
    proto_flips,
    /// Diff merges applied by this node's home shards (sum over shards;
    /// the per-shard split lives in [`ShardStats`]).
    shard_merges,
    /// Region checkpoints taken (barrier-time snapshots for re-homing).
    checkpoints,
    /// Bytes captured into checkpoints.
    checkpoint_bytes,
    /// Region restores applied from a checkpoint after a re-home.
    restores,
    /// Bytes written back by restores.
    restore_bytes,
}

impl DsmStats {
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-shard event counters (one slot per lock shard of the page store).
///
/// Kept separate from the flat [`DsmStats`] counters because the shard
/// count is a runtime knob (`DsmConfig::page_shards`), not a compile-time
/// field list. The sum over slots equals the matching flat counter
/// (`shard_merges`).
#[derive(Debug)]
pub struct ShardStats {
    counts: Box<[AtomicU64]>,
}

impl ShardStats {
    pub fn new(shards: usize) -> ShardStats {
        ShardStats {
            counts: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn bump(&self, shard: usize) {
        self.counts[shard].fetch_add(1, Ordering::Relaxed);
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Point-in-time copy, one count per shard.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let s = DsmStats::default();
        s.read_faults.fetch_add(3, Ordering::Relaxed);
        s.diff_bytes.fetch_add(100, Ordering::Relaxed);
        let mut a = s.snapshot();
        assert_eq!(a.read_faults, 3);
        let b = s.snapshot();
        a.merge(&b);
        assert_eq!(a.read_faults, 6);
        assert_eq!(a.diff_bytes, 200);
        assert_eq!(a.barriers, 0);
    }
}
