//! Pages, page states, and the state machine of paper Figure 5.

/// Size of a shared-memory page. The paper's testbed uses IA-32 4 KiB pages.
pub const PAGE_SIZE: usize = 4096;

/// Index of a page within the shared pool.
pub type PageId = usize;

/// Page state (paper §5.2.3, Figure 5).
///
/// `TRANSIENT` and `BLOCKED` exist because ParADE is *multi-threaded*: they
/// solve the atomic page update problem (§5.1) by making threads that touch
/// a page mid-update wait until the updating thread finishes, instead of
/// reading a half-copied page through the prematurely-writable mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageState {
    /// Not present in local memory; access faults and fetches from home.
    Invalid = 0,
    /// A thread is fetching/updating this page; the update is not complete.
    Transient = 1,
    /// Like `Transient`, but other threads are queued waiting for the
    /// update to complete and must be woken afterwards.
    Blocked = 2,
    /// Valid and clean: reads hit locally, writes fault (to create a twin
    /// and a write notice).
    ReadOnly = 3,
    /// Valid and locally modified during the current interval.
    Dirty = 4,
}

impl PageState {
    pub fn from_u8(v: u8) -> PageState {
        match v {
            0 => PageState::Invalid,
            1 => PageState::Transient,
            2 => PageState::Blocked,
            3 => PageState::ReadOnly,
            4 => PageState::Dirty,
            _ => unreachable!("invalid page state {v}"),
        }
    }

    /// Reads are locally satisfiable in these states.
    pub fn readable(self) -> bool {
        matches!(self, PageState::ReadOnly | PageState::Dirty)
    }

    /// Writes are locally satisfiable only when already dirty.
    pub fn writable(self) -> bool {
        matches!(self, PageState::Dirty)
    }

    /// Whether `self -> next` is a legal transition of the Figure 5 state
    /// machine (used by debug assertions and property tests).
    pub fn can_transition(self, next: PageState) -> bool {
        use PageState::*;
        match (self, next) {
            // Fault on an absent page begins an update.
            (Invalid, Transient) => true,
            // More threads pile up on an in-flight update.
            (Transient, Blocked) => true,
            // Update completes (no waiters / with waiters to wake).
            (Transient, ReadOnly) | (Blocked, ReadOnly) => true,
            // A write fault upgrades a clean page (twin creation).
            (ReadOnly, Dirty) => true,
            // Flush at a release point downgrades to clean.
            (Dirty, ReadOnly) => true,
            // Write notices invalidate clean or merged copies.
            (ReadOnly, Invalid) | (Dirty, Invalid) => true,
            // A freshly fetched page may be dirtied immediately (write
            // fault that triggered the fetch).
            (Transient, Dirty) | (Blocked, Dirty) => true,
            // A new home awaiting a migration push parks the page — from
            // Invalid, or from ReadOnly when the new home was itself one
            // of the writers (its copy misses the other writers' diffs
            // until the old home pushes the merged page).
            (Invalid, Blocked) | (ReadOnly, Blocked) => true,
            _ => false,
        }
    }
}

/// Map a byte offset in the pool to its page.
pub fn page_of(offset: usize) -> PageId {
    offset / PAGE_SIZE
}

/// First byte offset of `page`.
pub fn page_start(page: PageId) -> usize {
    page * PAGE_SIZE
}

/// The inclusive page range covering `offset .. offset + len`.
pub fn pages_covering(offset: usize, len: usize) -> std::ops::RangeInclusive<PageId> {
    if len == 0 {
        let p = page_of(offset);
        return p..=p;
    }
    page_of(offset)..=page_of(offset + len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        for s in [
            PageState::Invalid,
            PageState::Transient,
            PageState::Blocked,
            PageState::ReadOnly,
            PageState::Dirty,
        ] {
            assert_eq!(PageState::from_u8(s as u8), s);
        }
    }

    #[test]
    fn readable_writable() {
        assert!(PageState::ReadOnly.readable());
        assert!(PageState::Dirty.readable());
        assert!(!PageState::Invalid.readable());
        assert!(!PageState::Transient.readable());
        assert!(PageState::Dirty.writable());
        assert!(!PageState::ReadOnly.writable());
    }

    #[test]
    fn figure5_transitions() {
        use PageState::*;
        assert!(Invalid.can_transition(Transient));
        assert!(Transient.can_transition(Blocked));
        assert!(Blocked.can_transition(ReadOnly));
        assert!(ReadOnly.can_transition(Dirty));
        assert!(Dirty.can_transition(ReadOnly));
        assert!(ReadOnly.can_transition(Invalid));
        // Illegal examples.
        assert!(!Invalid.can_transition(Dirty));
        assert!(!Invalid.can_transition(ReadOnly));
        assert!(!Dirty.can_transition(Transient));
        assert!(!ReadOnly.can_transition(Transient));
    }

    #[test]
    fn page_math() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(PAGE_SIZE - 1), 0);
        assert_eq!(page_of(PAGE_SIZE), 1);
        assert_eq!(page_start(3), 3 * PAGE_SIZE);
        assert_eq!(pages_covering(0, PAGE_SIZE), 0..=0);
        assert_eq!(pages_covering(0, PAGE_SIZE + 1), 0..=1);
        assert_eq!(pages_covering(PAGE_SIZE - 1, 2), 0..=1);
        assert_eq!(pages_covering(100, 0), 0..=0);
    }
}
