//! Wire format of the SDSM protocol messages.
//!
//! Requests travel on `MsgClass::Dsm` and are serviced by the destination
//! node's communication thread; replies travel on `MsgClass::Ctl` tagged
//! with a requester-chosen reply tag (tags ≥ [`REPLY_TAG_BASE`] so they
//! never collide with cluster control tags).
//!
//! Release-path traffic is batched: a flush groups the diffs of all dirty
//! pages homed on one node into a single [`DsmMsg::DiffBatch`] answered by
//! one [`DsmReply::DiffBatchAck`] — the HLRC amortization argument (§5.2)
//! applied to the wire. [`DsmMsg::ReqPageRange`] likewise coalesces fetches
//! of contiguous pages with a common home into one round trip.

use parade_net::Bytes;

use parade_mpi::datatype::{Reader, Writer};

use crate::diff::{need, DecodeError, Diff};
use crate::page::{PageId, PAGE_SIZE};

/// Reply tags live above this base; cluster control uses tags below it.
pub const REPLY_TAG_BASE: u64 = 1 << 32;

const K_REQ_PAGE: u8 = 1;
const K_DIFF: u8 = 2;
const K_PAGE_PUSH: u8 = 3;
const K_BARRIER_ARRIVE: u8 = 4;
const K_LOCK_ACQ: u8 = 5;
const K_LOCK_REL: u8 = 6;
const K_NUDGE: u8 = 7;
const K_DIFF_BATCH: u8 = 8;
const K_REQ_PAGE_RANGE: u8 = 9;
const K_BARRIER_UP: u8 = 10;
const K_PUSH_REQ: u8 = 11;

/// A request handled by a communication thread.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmMsg {
    /// Fetch the up-to-date copy of `page` from its home.
    ReqPage {
        page: PageId,
        requester: usize,
        reply_tag: u64,
    },
    /// Fetch `count` contiguous pages starting at `first`, all homed on the
    /// destination (fault-storm coalescing; one round trip per run).
    ReqPageRange {
        first: PageId,
        count: u32,
        requester: usize,
        reply_tag: u64,
    },
    /// Merge a diff into the home copy of `page`.
    Diff {
        page: PageId,
        requester: usize,
        reply_tag: u64,
        diff: Diff,
    },
    /// Merge diffs for several pages homed here, acknowledged as one unit
    /// (`pages[i]` pairs with `diffs[i]`; one ack per batch, not per page).
    DiffBatch {
        requester: usize,
        reply_tag: u64,
        pages: Vec<PageId>,
        diffs: Vec<Diff>,
    },
    /// Full-page content pushed to a migrated home (multi-writer case).
    PagePush {
        page: PageId,
        barrier_seq: u64,
        data: Bytes,
    },
    /// A migrated-to home discovered its own copy was invalid at the
    /// departure (a lock-grant write notice can invalidate even the single
    /// writer's copy under false sharing) and asks the old home — which
    /// still holds the merged bytes — to [`DsmMsg::PagePush`] them over.
    PushReq {
        page: PageId,
        barrier_seq: u64,
        requester: usize,
    },
    /// Barrier arrival at the master, write notices piggybacked (§5.2.2).
    /// `reads` carries the pages this node fetched since its previous
    /// arrival — the sharer observations feeding the root's per-page
    /// protocol table (adaptive update/invalidate selection).
    BarrierArrive {
        seq: u64,
        node: usize,
        reply_tag: u64,
        notices: Vec<PageId>,
        reads: Vec<PageId>,
    },
    /// Hierarchical barrier: a subtree's aggregated arrivals, sent by a
    /// communication thread to its parent in the binomial tree. `members`
    /// lists every (node, reply tag) in the subtree awaiting the departure;
    /// `writers` carries the merged write notices as (page, writer nodes)
    /// and `readers` the merged read observations in the same shape.
    BarrierUp {
        seq: u64,
        members: Vec<(usize, u64)>,
        writers: Vec<(PageId, Vec<usize>)>,
        readers: Vec<(PageId, Vec<usize>)>,
    },
    /// Acquire a distributed lock (baseline SDSM path). `polling` requests
    /// an immediate grant-or-busy answer instead of queueing.
    LockAcq {
        lock: u64,
        node: usize,
        reply_tag: u64,
        last_seen: u64,
        polling: bool,
    },
    /// Release a distributed lock, carrying write notices for the pages
    /// modified in the critical section.
    LockRel {
        lock: u64,
        node: usize,
        notices: Vec<PageId>,
    },
    /// Local self-message: retry deferred requests after a barrier depart.
    Nudge,
}

fn decode_notices(r: &mut Reader<'_>) -> Result<Vec<PageId>, DecodeError> {
    need(r, 4, "notice count")?;
    let n = r.u32() as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(DecodeError::RunCount {
            count: n as u32,
            have: r.remaining(),
        });
    }
    Ok((0..n).map(|_| r.u64() as PageId).collect())
}

/// Encode a `(page, nodes)` list — the shared shape of `BarrierUp`
/// writers and readers.
fn encode_page_nodes(w: &mut Writer, list: &[(PageId, Vec<usize>)]) {
    w.u32(list.len() as u32);
    for (page, nodes) in list {
        w.u64(*page as u64).u32(nodes.len() as u32);
        for n in nodes {
            w.u32(*n as u32);
        }
    }
}

fn decode_page_nodes(r: &mut Reader<'_>) -> Result<Vec<(PageId, Vec<usize>)>, DecodeError> {
    need(r, 4, "page-nodes count")?;
    let n = r.u32() as usize;
    if n.saturating_mul(12) > r.remaining() {
        return Err(DecodeError::RunCount {
            count: n as u32,
            have: r.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        need(r, 12, "page-nodes entry")?;
        let page = r.u64() as PageId;
        let count = r.u32() as usize;
        if count.saturating_mul(4) > r.remaining() {
            return Err(DecodeError::RunCount {
                count: count as u32,
                have: r.remaining(),
            });
        }
        out.push((page, (0..count).map(|_| r.u32() as usize).collect()));
    }
    Ok(out)
}

impl DsmMsg {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            DsmMsg::ReqPage {
                page,
                requester,
                reply_tag,
            } => {
                w.u8(K_REQ_PAGE)
                    .u64(*page as u64)
                    .u32(*requester as u32)
                    .u64(*reply_tag);
            }
            DsmMsg::ReqPageRange {
                first,
                count,
                requester,
                reply_tag,
            } => {
                w.u8(K_REQ_PAGE_RANGE)
                    .u64(*first as u64)
                    .u32(*count)
                    .u32(*requester as u32)
                    .u64(*reply_tag);
            }
            DsmMsg::Diff {
                page,
                requester,
                reply_tag,
                diff,
            } => {
                w.u8(K_DIFF)
                    .u64(*page as u64)
                    .u32(*requester as u32)
                    .u64(*reply_tag);
                diff.encode(&mut w);
            }
            DsmMsg::DiffBatch {
                requester,
                reply_tag,
                pages,
                diffs,
            } => {
                debug_assert_eq!(pages.len(), diffs.len());
                w.u8(K_DIFF_BATCH)
                    .u32(*requester as u32)
                    .u64(*reply_tag)
                    .u32(pages.len() as u32);
                for (page, diff) in pages.iter().zip(diffs) {
                    w.u64(*page as u64);
                    diff.encode(&mut w);
                }
            }
            DsmMsg::PagePush {
                page,
                barrier_seq,
                data,
            } => {
                w.u8(K_PAGE_PUSH)
                    .u64(*page as u64)
                    .u64(*barrier_seq)
                    .lp_bytes(data);
            }
            DsmMsg::PushReq {
                page,
                barrier_seq,
                requester,
            } => {
                w.u8(K_PUSH_REQ)
                    .u64(*page as u64)
                    .u64(*barrier_seq)
                    .u32(*requester as u32);
            }
            DsmMsg::BarrierArrive {
                seq,
                node,
                reply_tag,
                notices,
                reads,
            } => {
                w.u8(K_BARRIER_ARRIVE)
                    .u64(*seq)
                    .u32(*node as u32)
                    .u64(*reply_tag);
                w.u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
                w.u32(reads.len() as u32);
                for p in reads {
                    w.u64(*p as u64);
                }
            }
            DsmMsg::BarrierUp {
                seq,
                members,
                writers,
                readers,
            } => {
                w.u8(K_BARRIER_UP).u64(*seq).u32(members.len() as u32);
                for (node, tag) in members {
                    w.u32(*node as u32).u64(*tag);
                }
                encode_page_nodes(&mut w, writers);
                encode_page_nodes(&mut w, readers);
            }
            DsmMsg::LockAcq {
                lock,
                node,
                reply_tag,
                last_seen,
                polling,
            } => {
                w.u8(K_LOCK_ACQ)
                    .u64(*lock)
                    .u32(*node as u32)
                    .u64(*reply_tag)
                    .u64(*last_seen)
                    .u8(*polling as u8);
            }
            DsmMsg::LockRel {
                lock,
                node,
                notices,
            } => {
                w.u8(K_LOCK_REL).u64(*lock).u32(*node as u32);
                w.u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
            }
            DsmMsg::Nudge => {
                w.u8(K_NUDGE);
            }
        }
        w.finish()
    }

    /// Decode a trusted (in-process) payload; panics with the structured
    /// error on corruption — the fabric delivers messages intact, so this
    /// indicates a local protocol bug, not a remote peer's bytes.
    pub fn decode(b: &[u8]) -> DsmMsg {
        match DsmMsg::try_decode(b) {
            Ok(m) => m,
            Err(e) => panic!("bad dsm message: {e}"),
        }
    }

    /// Decode an untrusted payload. Every length, count, and run is
    /// validated; malformed bytes yield a [`DecodeError`], never a panic
    /// or an unbounded allocation.
    pub fn try_decode(b: &[u8]) -> Result<DsmMsg, DecodeError> {
        let mut r = Reader::new(b);
        need(&r, 1, "message kind")?;
        match r.u8() {
            K_REQ_PAGE => {
                need(&r, 20, "ReqPage body")?;
                Ok(DsmMsg::ReqPage {
                    page: r.u64() as PageId,
                    requester: r.u32() as usize,
                    reply_tag: r.u64(),
                })
            }
            K_REQ_PAGE_RANGE => {
                need(&r, 24, "ReqPageRange body")?;
                Ok(DsmMsg::ReqPageRange {
                    first: r.u64() as PageId,
                    count: r.u32(),
                    requester: r.u32() as usize,
                    reply_tag: r.u64(),
                })
            }
            K_DIFF => {
                need(&r, 20, "Diff header")?;
                Ok(DsmMsg::Diff {
                    page: r.u64() as PageId,
                    requester: r.u32() as usize,
                    reply_tag: r.u64(),
                    diff: Diff::decode(&mut r)?,
                })
            }
            K_DIFF_BATCH => {
                need(&r, 16, "DiffBatch header")?;
                let requester = r.u32() as usize;
                let reply_tag = r.u64();
                let n = r.u32() as usize;
                // Each entry is at least a page id plus an empty diff.
                if n.saturating_mul(12) > r.remaining() {
                    return Err(DecodeError::RunCount {
                        count: n as u32,
                        have: r.remaining(),
                    });
                }
                let mut pages = Vec::with_capacity(n);
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    need(&r, 8, "DiffBatch page id")?;
                    pages.push(r.u64() as PageId);
                    diffs.push(Diff::decode(&mut r)?);
                }
                Ok(DsmMsg::DiffBatch {
                    requester,
                    reply_tag,
                    pages,
                    diffs,
                })
            }
            K_PAGE_PUSH => {
                need(&r, 20, "PagePush header")?;
                let page = r.u64() as PageId;
                let barrier_seq = r.u64();
                let len = r.u32() as usize;
                need(&r, len, "PagePush data")?;
                Ok(DsmMsg::PagePush {
                    page,
                    barrier_seq,
                    data: Bytes::copy_from_slice(r.bytes(len)),
                })
            }
            K_BARRIER_ARRIVE => {
                need(&r, 20, "BarrierArrive header")?;
                let seq = r.u64();
                let node = r.u32() as usize;
                let reply_tag = r.u64();
                let notices = decode_notices(&mut r)?;
                let reads = decode_notices(&mut r)?;
                Ok(DsmMsg::BarrierArrive {
                    seq,
                    node,
                    reply_tag,
                    notices,
                    reads,
                })
            }
            K_BARRIER_UP => {
                need(&r, 12, "BarrierUp header")?;
                let seq = r.u64();
                let nm = r.u32() as usize;
                if nm.saturating_mul(12) > r.remaining() {
                    return Err(DecodeError::RunCount {
                        count: nm as u32,
                        have: r.remaining(),
                    });
                }
                let members = (0..nm)
                    .map(|_| need(&r, 12, "BarrierUp member").map(|_| (r.u32() as usize, r.u64())))
                    .collect::<Result<Vec<_>, _>>()?;
                let writers = decode_page_nodes(&mut r)?;
                let readers = decode_page_nodes(&mut r)?;
                Ok(DsmMsg::BarrierUp {
                    seq,
                    members,
                    writers,
                    readers,
                })
            }
            K_LOCK_ACQ => {
                need(&r, 29, "LockAcq body")?;
                Ok(DsmMsg::LockAcq {
                    lock: r.u64(),
                    node: r.u32() as usize,
                    reply_tag: r.u64(),
                    last_seen: r.u64(),
                    polling: r.u8() != 0,
                })
            }
            K_LOCK_REL => {
                need(&r, 12, "LockRel header")?;
                let lock = r.u64();
                let node = r.u32() as usize;
                let notices = decode_notices(&mut r)?;
                Ok(DsmMsg::LockRel {
                    lock,
                    node,
                    notices,
                })
            }
            K_PUSH_REQ => {
                need(&r, 20, "PushReq body")?;
                Ok(DsmMsg::PushReq {
                    page: r.u64() as PageId,
                    barrier_seq: r.u64(),
                    requester: r.u32() as usize,
                })
            }
            K_NUDGE => Ok(DsmMsg::Nudge),
            k => Err(DecodeError::BadKind(k)),
        }
    }
}

const R_PAGE_DATA: u8 = 1;
const R_DIFF_ACK: u8 = 2;
const R_BARRIER_DEPART: u8 = 3;
const R_LOCK_GRANT: u8 = 4;
const R_LOCK_BUSY: u8 = 5;
const R_DIFF_BATCH_ACK: u8 = 6;
const R_PAGE_RANGE_DATA: u8 = 7;

/// One per-page record in a barrier departure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepartEntry {
    pub page: PageId,
    pub old_home: usize,
    pub new_home: usize,
    /// More than one node wrote the page this interval.
    pub multi_writer: bool,
    /// Update protocol: the home pushes the merged page to `sharers`
    /// (which park on `BLOCKED` awaiting it); every other cached copy
    /// invalidates as usual. `false` → classic invalidate write notice.
    pub update: bool,
    /// Sorted push set for `update` entries (never contains the home).
    pub sharers: Vec<usize>,
}

impl DepartEntry {
    /// An invalidate-protocol entry (the pre-adaptive shape).
    pub fn invalidate(
        page: PageId,
        old_home: usize,
        new_home: usize,
        multi_writer: bool,
    ) -> DepartEntry {
        DepartEntry {
            page,
            old_home,
            new_home,
            multi_writer,
            update: false,
            sharers: Vec::new(),
        }
    }
}

/// A reply sent back to a waiting application thread.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmReply {
    PageData {
        page: PageId,
        data: Bytes,
    },
    /// `count` contiguous pages starting at `first`, concatenated.
    PageRangeData {
        first: PageId,
        data: Bytes,
    },
    DiffAck {
        page: PageId,
    },
    /// Acknowledges a whole [`DsmMsg::DiffBatch`] — the one-ack-per-home
    /// invariant of the batched release path.
    DiffBatchAck {
        pages: u32,
    },
    /// Global write-notice/migration summary; every node derives its own
    /// invalidations, home updates, and push duties from it (§5.2.2).
    BarrierDepart {
        seq: u64,
        entries: Vec<DepartEntry>,
    },
    LockGrant {
        cur_seq: u64,
        notices: Vec<PageId>,
    },
    LockBusy,
}

impl DsmReply {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            DsmReply::PageData { page, data } => {
                w.u8(R_PAGE_DATA).u64(*page as u64).lp_bytes(data);
            }
            DsmReply::PageRangeData { first, data } => {
                debug_assert_eq!(data.len() % PAGE_SIZE, 0);
                w.u8(R_PAGE_RANGE_DATA).u64(*first as u64).lp_bytes(data);
            }
            DsmReply::DiffAck { page } => {
                w.u8(R_DIFF_ACK).u64(*page as u64);
            }
            DsmReply::DiffBatchAck { pages } => {
                w.u8(R_DIFF_BATCH_ACK).u32(*pages);
            }
            DsmReply::BarrierDepart { seq, entries } => {
                w.u8(R_BARRIER_DEPART).u64(*seq).u32(entries.len() as u32);
                for e in entries {
                    let flags = e.multi_writer as u8 | (e.update as u8) << 1;
                    w.u64(e.page as u64)
                        .u32(e.old_home as u32)
                        .u32(e.new_home as u32)
                        .u8(flags)
                        .u32(e.sharers.len() as u32);
                    for s in &e.sharers {
                        w.u32(*s as u32);
                    }
                }
            }
            DsmReply::LockGrant { cur_seq, notices } => {
                w.u8(R_LOCK_GRANT).u64(*cur_seq).u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
            }
            DsmReply::LockBusy => {
                w.u8(R_LOCK_BUSY);
            }
        }
        w.finish()
    }

    pub fn decode(b: &[u8]) -> DsmReply {
        let mut r = Reader::new(b);
        match r.u8() {
            R_PAGE_DATA => DsmReply::PageData {
                page: r.u64() as PageId,
                data: Bytes::copy_from_slice(r.lp_bytes()),
            },
            R_PAGE_RANGE_DATA => DsmReply::PageRangeData {
                first: r.u64() as PageId,
                data: Bytes::copy_from_slice(r.lp_bytes()),
            },
            R_DIFF_ACK => DsmReply::DiffAck {
                page: r.u64() as PageId,
            },
            R_DIFF_BATCH_ACK => DsmReply::DiffBatchAck { pages: r.u32() },
            R_BARRIER_DEPART => {
                let seq = r.u64();
                let n = r.u32() as usize;
                let entries = (0..n)
                    .map(|_| {
                        let page = r.u64() as PageId;
                        let old_home = r.u32() as usize;
                        let new_home = r.u32() as usize;
                        let flags = r.u8();
                        let ns = r.u32() as usize;
                        DepartEntry {
                            page,
                            old_home,
                            new_home,
                            multi_writer: flags & 1 != 0,
                            update: flags & 2 != 0,
                            sharers: (0..ns).map(|_| r.u32() as usize).collect(),
                        }
                    })
                    .collect();
                DsmReply::BarrierDepart { seq, entries }
            }
            R_LOCK_GRANT => {
                let cur_seq = r.u64();
                let n = r.u32() as usize;
                let notices = (0..n).map(|_| r.u64() as PageId).collect();
                DsmReply::LockGrant { cur_seq, notices }
            }
            R_LOCK_BUSY => DsmReply::LockBusy,
            k => unreachable!("bad dsm reply kind {k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn page_diff(touch: &[usize]) -> Diff {
        let twin = vec![0u8; PAGE_SIZE];
        let mut cur = twin.clone();
        for &i in touch {
            cur[i] = 3;
        }
        Diff::create(&twin, &cur)
    }

    #[test]
    fn msg_roundtrips() {
        let msgs = vec![
            DsmMsg::ReqPage {
                page: 42,
                requester: 3,
                reply_tag: REPLY_TAG_BASE + 7,
            },
            DsmMsg::ReqPageRange {
                first: 40,
                count: 6,
                requester: 2,
                reply_tag: REPLY_TAG_BASE + 9,
            },
            DsmMsg::Diff {
                page: 9,
                requester: 1,
                reply_tag: REPLY_TAG_BASE,
                diff: page_diff(&[8]),
            },
            DsmMsg::DiffBatch {
                requester: 2,
                reply_tag: REPLY_TAG_BASE + 3,
                pages: vec![4, 9, 11],
                diffs: vec![page_diff(&[8]), page_diff(&[0, 4088]), page_diff(&[16])],
            },
            DsmMsg::PagePush {
                page: 5,
                barrier_seq: 12,
                data: Bytes::from(vec![7u8; PAGE_SIZE]),
            },
            DsmMsg::BarrierArrive {
                seq: 4,
                node: 2,
                reply_tag: REPLY_TAG_BASE + 1,
                notices: vec![1, 2, 30],
                reads: vec![5, 6],
            },
            DsmMsg::BarrierUp {
                seq: 9,
                members: vec![(2, REPLY_TAG_BASE + 4), (3, REPLY_TAG_BASE + 5)],
                writers: vec![(7, vec![2]), (8, vec![2, 3])],
                readers: vec![(7, vec![3])],
            },
            DsmMsg::BarrierUp {
                seq: 10,
                members: vec![(1, REPLY_TAG_BASE)],
                writers: vec![],
                readers: vec![],
            },
            DsmMsg::LockAcq {
                lock: 6,
                node: 0,
                reply_tag: REPLY_TAG_BASE + 2,
                last_seen: 11,
                polling: true,
            },
            DsmMsg::LockRel {
                lock: 6,
                node: 0,
                notices: vec![99],
            },
            DsmMsg::Nudge,
        ];
        for m in msgs {
            assert_eq!(DsmMsg::decode(&m.encode()), m);
        }
    }

    #[test]
    fn try_decode_rejects_bad_kind_and_truncation() {
        assert_eq!(DsmMsg::try_decode(&[0xEE]), Err(DecodeError::BadKind(0xEE)));
        assert!(matches!(
            DsmMsg::try_decode(&[]),
            Err(DecodeError::Truncated { .. })
        ));
        let full = DsmMsg::DiffBatch {
            requester: 1,
            reply_tag: REPLY_TAG_BASE,
            pages: vec![3, 7],
            diffs: vec![page_diff(&[8]), page_diff(&[24, 32])],
        }
        .encode();
        for cut in 0..full.len() {
            // No prefix may panic; (decoding a shorter valid message is
            // impossible here because the batch count is pinned early).
            let _ = DsmMsg::try_decode(&full[..cut]);
        }
    }

    #[test]
    fn try_decode_rejects_oversized_barrier_up_counts() {
        // Member count not backed by bytes.
        let mut w = Writer::new();
        w.u8(10).u64(3).u32(u32::MAX);
        assert!(matches!(
            DsmMsg::try_decode(&w.finish()),
            Err(DecodeError::RunCount { .. })
        ));
        // Writer-node count not backed by bytes.
        let mut w = Writer::new();
        w.u8(10).u64(3).u32(0).u32(1).u64(5).u32(u32::MAX);
        assert!(matches!(
            DsmMsg::try_decode(&w.finish()),
            Err(DecodeError::RunCount { .. })
        ));
        // Reader-list count not backed by bytes (after an empty writer
        // list).
        let mut w = Writer::new();
        w.u8(10).u64(3).u32(0).u32(0).u32(u32::MAX);
        assert!(matches!(
            DsmMsg::try_decode(&w.finish()),
            Err(DecodeError::RunCount { .. })
        ));
        // No truncation of a valid message may panic.
        let full = DsmMsg::BarrierUp {
            seq: 2,
            members: vec![(0, REPLY_TAG_BASE), (1, REPLY_TAG_BASE + 1)],
            writers: vec![(4, vec![0, 1]), (6, vec![1])],
            readers: vec![(5, vec![0])],
        }
        .encode();
        for cut in 0..full.len() {
            let _ = DsmMsg::try_decode(&full[..cut]);
        }
    }

    #[test]
    fn try_decode_rejects_unbacked_batch_count() {
        let mut w = Writer::new();
        w.u8(8).u32(0).u64(REPLY_TAG_BASE).u32(u32::MAX);
        let b = w.finish();
        assert!(matches!(
            DsmMsg::try_decode(&b),
            Err(DecodeError::RunCount { .. })
        ));
    }

    #[test]
    fn reply_roundtrips() {
        let replies = vec![
            DsmReply::PageData {
                page: 1,
                data: Bytes::from(vec![1u8, 2, 3]),
            },
            DsmReply::PageRangeData {
                first: 12,
                data: Bytes::from(vec![9u8; 2 * PAGE_SIZE]),
            },
            DsmReply::DiffAck { page: 8 },
            DsmReply::DiffBatchAck { pages: 17 },
            DsmReply::BarrierDepart {
                seq: 3,
                entries: vec![
                    DepartEntry::invalidate(10, 0, 2, false),
                    DepartEntry::invalidate(11, 1, 1, true),
                    DepartEntry {
                        page: 12,
                        old_home: 2,
                        new_home: 2,
                        multi_writer: false,
                        update: true,
                        sharers: vec![0, 1, 3],
                    },
                ],
            },
            DsmReply::LockGrant {
                cur_seq: 5,
                notices: vec![4, 5],
            },
            DsmReply::LockBusy,
        ];
        for r in replies {
            assert_eq!(DsmReply::decode(&r.encode()), r);
        }
    }
}
