//! Wire format of the SDSM protocol messages.
//!
//! Requests travel on `MsgClass::Dsm` and are serviced by the destination
//! node's communication thread; replies travel on `MsgClass::Ctl` tagged
//! with a requester-chosen reply tag (tags ≥ [`REPLY_TAG_BASE`] so they
//! never collide with cluster control tags).

use parade_net::Bytes;

use parade_mpi::datatype::{Reader, Writer};

use crate::diff::Diff;
use crate::page::PageId;

/// Reply tags live above this base; cluster control uses tags below it.
pub const REPLY_TAG_BASE: u64 = 1 << 32;

const K_REQ_PAGE: u8 = 1;
const K_DIFF: u8 = 2;
const K_PAGE_PUSH: u8 = 3;
const K_BARRIER_ARRIVE: u8 = 4;
const K_LOCK_ACQ: u8 = 5;
const K_LOCK_REL: u8 = 6;
const K_NUDGE: u8 = 7;

/// A request handled by a communication thread.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmMsg {
    /// Fetch the up-to-date copy of `page` from its home.
    ReqPage {
        page: PageId,
        requester: usize,
        reply_tag: u64,
    },
    /// Merge a diff into the home copy of `page`.
    Diff {
        page: PageId,
        requester: usize,
        reply_tag: u64,
        diff: Diff,
    },
    /// Full-page content pushed to a migrated home (multi-writer case).
    PagePush {
        page: PageId,
        barrier_seq: u64,
        data: Bytes,
    },
    /// Barrier arrival at the master, write notices piggybacked (§5.2.2).
    BarrierArrive {
        seq: u64,
        node: usize,
        reply_tag: u64,
        notices: Vec<PageId>,
    },
    /// Acquire a distributed lock (baseline SDSM path). `polling` requests
    /// an immediate grant-or-busy answer instead of queueing.
    LockAcq {
        lock: u64,
        node: usize,
        reply_tag: u64,
        last_seen: u64,
        polling: bool,
    },
    /// Release a distributed lock, carrying write notices for the pages
    /// modified in the critical section.
    LockRel {
        lock: u64,
        node: usize,
        notices: Vec<PageId>,
    },
    /// Local self-message: retry deferred requests after a barrier depart.
    Nudge,
}

impl DsmMsg {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            DsmMsg::ReqPage {
                page,
                requester,
                reply_tag,
            } => {
                w.u8(K_REQ_PAGE)
                    .u64(*page as u64)
                    .u32(*requester as u32)
                    .u64(*reply_tag);
            }
            DsmMsg::Diff {
                page,
                requester,
                reply_tag,
                diff,
            } => {
                w.u8(K_DIFF)
                    .u64(*page as u64)
                    .u32(*requester as u32)
                    .u64(*reply_tag);
                diff.encode(&mut w);
            }
            DsmMsg::PagePush {
                page,
                barrier_seq,
                data,
            } => {
                w.u8(K_PAGE_PUSH)
                    .u64(*page as u64)
                    .u64(*barrier_seq)
                    .lp_bytes(data);
            }
            DsmMsg::BarrierArrive {
                seq,
                node,
                reply_tag,
                notices,
            } => {
                w.u8(K_BARRIER_ARRIVE)
                    .u64(*seq)
                    .u32(*node as u32)
                    .u64(*reply_tag);
                w.u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
            }
            DsmMsg::LockAcq {
                lock,
                node,
                reply_tag,
                last_seen,
                polling,
            } => {
                w.u8(K_LOCK_ACQ)
                    .u64(*lock)
                    .u32(*node as u32)
                    .u64(*reply_tag)
                    .u64(*last_seen)
                    .u8(*polling as u8);
            }
            DsmMsg::LockRel {
                lock,
                node,
                notices,
            } => {
                w.u8(K_LOCK_REL).u64(*lock).u32(*node as u32);
                w.u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
            }
            DsmMsg::Nudge => {
                w.u8(K_NUDGE);
            }
        }
        w.finish()
    }

    pub fn decode(b: &[u8]) -> DsmMsg {
        let mut r = Reader::new(b);
        match r.u8() {
            K_REQ_PAGE => DsmMsg::ReqPage {
                page: r.u64() as PageId,
                requester: r.u32() as usize,
                reply_tag: r.u64(),
            },
            K_DIFF => DsmMsg::Diff {
                page: r.u64() as PageId,
                requester: r.u32() as usize,
                reply_tag: r.u64(),
                diff: Diff::decode(&mut r),
            },
            K_PAGE_PUSH => DsmMsg::PagePush {
                page: r.u64() as PageId,
                barrier_seq: r.u64(),
                data: Bytes::copy_from_slice(r.lp_bytes()),
            },
            K_BARRIER_ARRIVE => {
                let seq = r.u64();
                let node = r.u32() as usize;
                let reply_tag = r.u64();
                let n = r.u32() as usize;
                let notices = (0..n).map(|_| r.u64() as PageId).collect();
                DsmMsg::BarrierArrive {
                    seq,
                    node,
                    reply_tag,
                    notices,
                }
            }
            K_LOCK_ACQ => DsmMsg::LockAcq {
                lock: r.u64(),
                node: r.u32() as usize,
                reply_tag: r.u64(),
                last_seen: r.u64(),
                polling: r.u8() != 0,
            },
            K_LOCK_REL => {
                let lock = r.u64();
                let node = r.u32() as usize;
                let n = r.u32() as usize;
                let notices = (0..n).map(|_| r.u64() as PageId).collect();
                DsmMsg::LockRel {
                    lock,
                    node,
                    notices,
                }
            }
            K_NUDGE => DsmMsg::Nudge,
            k => unreachable!("bad dsm message kind {k}"),
        }
    }
}

const R_PAGE_DATA: u8 = 1;
const R_DIFF_ACK: u8 = 2;
const R_BARRIER_DEPART: u8 = 3;
const R_LOCK_GRANT: u8 = 4;
const R_LOCK_BUSY: u8 = 5;

/// One per-page record in a barrier departure message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepartEntry {
    pub page: PageId,
    pub old_home: usize,
    pub new_home: usize,
    /// More than one node wrote the page this interval.
    pub multi_writer: bool,
}

/// A reply sent back to a waiting application thread.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmReply {
    PageData {
        page: PageId,
        data: Bytes,
    },
    DiffAck {
        page: PageId,
    },
    /// Global write-notice/migration summary; every node derives its own
    /// invalidations, home updates, and push duties from it (§5.2.2).
    BarrierDepart {
        seq: u64,
        entries: Vec<DepartEntry>,
    },
    LockGrant {
        cur_seq: u64,
        notices: Vec<PageId>,
    },
    LockBusy,
}

impl DsmReply {
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            DsmReply::PageData { page, data } => {
                w.u8(R_PAGE_DATA).u64(*page as u64).lp_bytes(data);
            }
            DsmReply::DiffAck { page } => {
                w.u8(R_DIFF_ACK).u64(*page as u64);
            }
            DsmReply::BarrierDepart { seq, entries } => {
                w.u8(R_BARRIER_DEPART).u64(*seq).u32(entries.len() as u32);
                for e in entries {
                    w.u64(e.page as u64)
                        .u32(e.old_home as u32)
                        .u32(e.new_home as u32)
                        .u8(e.multi_writer as u8);
                }
            }
            DsmReply::LockGrant { cur_seq, notices } => {
                w.u8(R_LOCK_GRANT).u64(*cur_seq).u32(notices.len() as u32);
                for p in notices {
                    w.u64(*p as u64);
                }
            }
            DsmReply::LockBusy => {
                w.u8(R_LOCK_BUSY);
            }
        }
        w.finish()
    }

    pub fn decode(b: &[u8]) -> DsmReply {
        let mut r = Reader::new(b);
        match r.u8() {
            R_PAGE_DATA => DsmReply::PageData {
                page: r.u64() as PageId,
                data: Bytes::copy_from_slice(r.lp_bytes()),
            },
            R_DIFF_ACK => DsmReply::DiffAck {
                page: r.u64() as PageId,
            },
            R_BARRIER_DEPART => {
                let seq = r.u64();
                let n = r.u32() as usize;
                let entries = (0..n)
                    .map(|_| DepartEntry {
                        page: r.u64() as PageId,
                        old_home: r.u32() as usize,
                        new_home: r.u32() as usize,
                        multi_writer: r.u8() != 0,
                    })
                    .collect();
                DsmReply::BarrierDepart { seq, entries }
            }
            R_LOCK_GRANT => {
                let cur_seq = r.u64();
                let n = r.u32() as usize;
                let notices = (0..n).map(|_| r.u64() as PageId).collect();
                DsmReply::LockGrant { cur_seq, notices }
            }
            R_LOCK_BUSY => DsmReply::LockBusy,
            k => unreachable!("bad dsm reply kind {k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    #[test]
    fn msg_roundtrips() {
        let msgs = vec![
            DsmMsg::ReqPage {
                page: 42,
                requester: 3,
                reply_tag: REPLY_TAG_BASE + 7,
            },
            DsmMsg::Diff {
                page: 9,
                requester: 1,
                reply_tag: REPLY_TAG_BASE,
                diff: Diff::create(&vec![0u8; PAGE_SIZE], &{
                    let mut v = vec![0u8; PAGE_SIZE];
                    v[8] = 3;
                    v
                }),
            },
            DsmMsg::PagePush {
                page: 5,
                barrier_seq: 12,
                data: Bytes::from(vec![7u8; PAGE_SIZE]),
            },
            DsmMsg::BarrierArrive {
                seq: 4,
                node: 2,
                reply_tag: REPLY_TAG_BASE + 1,
                notices: vec![1, 2, 30],
            },
            DsmMsg::LockAcq {
                lock: 6,
                node: 0,
                reply_tag: REPLY_TAG_BASE + 2,
                last_seen: 11,
                polling: true,
            },
            DsmMsg::LockRel {
                lock: 6,
                node: 0,
                notices: vec![99],
            },
            DsmMsg::Nudge,
        ];
        for m in msgs {
            assert_eq!(DsmMsg::decode(&m.encode()), m);
        }
    }

    #[test]
    fn reply_roundtrips() {
        let replies = vec![
            DsmReply::PageData {
                page: 1,
                data: Bytes::from(vec![1u8, 2, 3]),
            },
            DsmReply::DiffAck { page: 8 },
            DsmReply::BarrierDepart {
                seq: 3,
                entries: vec![
                    DepartEntry {
                        page: 10,
                        old_home: 0,
                        new_home: 2,
                        multi_writer: false,
                    },
                    DepartEntry {
                        page: 11,
                        old_home: 1,
                        new_home: 1,
                        multi_writer: true,
                    },
                ],
            },
            DsmReply::LockGrant {
                cur_seq: 5,
                notices: vec![4, 5],
            },
            DsmReply::LockBusy,
        ];
        for r in replies {
            assert_eq!(DsmReply::decode(&r.encode()), r);
        }
    }
}
