//! # parade-dsm — multi-threaded software distributed shared memory
//!
//! The SDSM at the core of ParADE (paper §5): page-based shared memory with
//! a variant of **home-based lazy release consistency** (HLRC):
//!
//! * page states `INVALID / TRANSIENT / BLOCKED / READ_ONLY / DIRTY`
//!   (Figure 5) — `TRANSIENT`/`BLOCKED` solve the *atomic page update
//!   problem* unique to multi-threaded SDSMs (§5.1);
//! * twins and word-granularity diffs shipped to page homes at release
//!   points;
//! * write notices combined into a single message and piggybacked on
//!   barrier arrivals; the master answers with departures that carry
//!   invalidations and **migratory home** decisions (§5.2.2);
//! * distributed queue/polling locks for the conventional SDSM
//!   synchronization path (the KDSM-style baseline of §6.1);
//! * a small-data object registry for the message-passing update protocol
//!   (§5.2.1) — objects under the 256-byte threshold bypass HLRC entirely.
//!
//! Hardware paging (`mprotect`/SIGSEGV) is replaced by a software fault
//! check on typed accesses: one atomic load on the hit path, the identical
//! protocol on the miss path (see DESIGN.md for the substitution argument).

mod adapt;
mod bufpool;
mod config;
mod diff;
mod engine;
mod msg;
mod page;
mod prefetch;
mod server;
mod smalldata;
mod stats;
mod store;

pub use adapt::{ProtoDecision, ProtocolTable, MIN_SHARERS, PROBATION};
pub use bufpool::PageBuf;
pub use config::{CommCosts, DsmConfig, HomePolicy, LockKind, ProtoSelect, UpdateStrategy};
pub use diff::{DecodeError, Diff, DiffRun};
pub use engine::Dsm;
pub use msg::{DepartEntry, DsmMsg, DsmReply, REPLY_TAG_BASE};
pub use page::{page_of, page_start, pages_covering, PageId, PageState, PAGE_SIZE};
pub use prefetch::{Prediction, StridePredictor};
pub use server::{spawn_comm_thread, CommServer, ServerState};
pub use smalldata::{SmallHandle, SmallRegistry};
pub use stats::{DsmStats, DsmStatsSnapshot, ShardStats};
pub use store::{AllocError, PageShards, RawPool, RegionAllocator, RegionHandle};

#[cfg(test)]
mod cluster_tests;
