//! Barrier-time per-page protocol selection (invalidate vs. update) and
//! dominant-writer home placement.
//!
//! The paper fixes the update/invalidate split at a static 256 B size
//! threshold. This module makes the split dynamic *per page*: the barrier
//! root keeps a [`ProtocolTable`] of every page's writer and sharer
//! history, and each departure decides — page by page — whether cached
//! copies should be invalidated (classic HLRC write notice) or receive a
//! push of the merged page from its home (update protocol). A page whose
//! sharer set keeps re-faulting the same data after every barrier is
//! cheaper to update in place; a migratory page bouncing between writers
//! is cheaper to invalidate.
//!
//! Everything is decided from the aggregated, *sorted* arrival data the
//! root already holds, so the decision stream is a pure function of the
//! program's barrier history: runs replay bit-identically regardless of
//! real-time message schedules, and the equivalence suite can assert
//! adaptive ≡ all-invalidate ≡ all-update on results.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use crate::config::ProtoSelect;
use crate::page::PageId;

/// Update decisions between probation rounds: every `PROBATION`-th update
/// decision for a page is demoted to an invalidate that clears the sharer
/// set, forcing still-interested readers to re-fault (and thereby
/// re-measure real readership) before the page can flip back.
pub const PROBATION: u32 = 4;

/// Minimum observed sharers (excluding the home) for an update flip.
pub const MIN_SHARERS: usize = 2;

/// Per-page history at the barrier root.
#[derive(Debug, Default, Clone)]
struct PageHist {
    /// Cumulative barrier intervals in which each node wrote the page.
    writes: BTreeMap<usize, u64>,
    /// Nodes observed reading the page since the last invalidate decision.
    sharers: BTreeSet<usize>,
    /// Update decisions since the last probation invalidate.
    update_streak: u32,
    /// Previous decision for this page (for flip counting).
    last_update: bool,
}

/// What the departure should prescribe for one written page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoDecision {
    /// `true` → the home pushes the merged page to `sharers`; everyone
    /// else invalidates. `false` → classic invalidate write notice.
    pub update: bool,
    /// Sorted push set (empty unless `update`). Never contains the home.
    pub sharers: Vec<usize>,
    /// Did the page change protocol relative to its previous decision?
    pub flipped: bool,
}

impl ProtoDecision {
    fn invalidate(flipped: bool) -> ProtoDecision {
        ProtoDecision {
            update: false,
            sharers: Vec::new(),
            flipped,
        }
    }
}

/// Root-side history table driving [`ProtoSelect`] (see module docs).
#[derive(Debug, Default)]
pub struct ProtocolTable {
    pages: BTreeMap<PageId, PageHist>,
}

impl ProtocolTable {
    pub fn new() -> ProtocolTable {
        ProtocolTable::default()
    }

    /// Fold one interval's readers of `page` into its sharer history.
    /// Called for *every* page with readers, written or not — a page read
    /// in this interval and written in the next must already know its
    /// audience when the write decision is made.
    pub fn note_readers(&mut self, page: PageId, readers: &[usize]) {
        if readers.is_empty() {
            return;
        }
        let hist = self.pages.entry(page).or_default();
        hist.sharers.extend(readers.iter().copied());
    }

    /// Migratory home placement for a written page. `writers` must be the
    /// root's sorted interval writer list. The legacy §5.2.2 rule (single
    /// writer takes the page; multi-writer keeps a writing home, else the
    /// smallest writer) is the tie-breaker; on top of it, a writer whose
    /// cumulative write count *strictly* dominates every other interval
    /// writer takes the page even if the legacy rule preferred another —
    /// that is what re-homes a page to its dominant writer once history
    /// accumulates. Fresh pages have all-equal counts, so every existing
    /// migration pin decides exactly as before.
    pub fn pick_home(&mut self, page: PageId, writers: &[usize], old_home: usize) -> usize {
        debug_assert!(writers.windows(2).all(|w| w[0] < w[1]));
        let hist = self.pages.entry(page).or_default();
        for &w in writers {
            *hist.writes.entry(w).or_insert(0) += 1;
        }
        let legacy = if writers.len() == 1 {
            writers[0]
        } else if writers.contains(&old_home) {
            old_home
        } else {
            writers[0]
        };
        if writers.len() <= 1 {
            return legacy;
        }
        let mut best = writers[0];
        let mut best_count = hist.writes[&writers[0]];
        let mut strict = true;
        for &w in &writers[1..] {
            let c = hist.writes[&w];
            match c.cmp(&best_count) {
                std::cmp::Ordering::Greater => {
                    best = w;
                    best_count = c;
                    strict = true;
                }
                std::cmp::Ordering::Equal => strict = false,
                std::cmp::Ordering::Less => {}
            }
        }
        if strict {
            best
        } else {
            legacy
        }
    }

    /// Record interval write counts for a written page under the `Fixed`
    /// home policy (where [`Self::pick_home`] never runs) so protocol
    /// decisions still see writer history.
    pub fn note_writes(&mut self, page: PageId, writers: &[usize]) {
        let hist = self.pages.entry(page).or_default();
        for &w in writers {
            *hist.writes.entry(w).or_insert(0) += 1;
        }
    }

    /// Decide the coherence action for one written page. `readers` is the
    /// interval's sorted reader list for the page (often empty); `writers`
    /// the sorted interval writer list; `new_home` the home the departure
    /// will install (possibly unchanged).
    pub fn decide(
        &mut self,
        mode: ProtoSelect,
        page: PageId,
        writers: &[usize],
        readers: &[usize],
        old_home: usize,
        new_home: usize,
    ) -> ProtoDecision {
        let hist = self.pages.entry(page).or_default();
        hist.sharers.extend(readers.iter().copied());
        let migrated = new_home != old_home;
        let want_update = match mode {
            ProtoSelect::AllInvalidate => false,
            // A migrated page's merged bytes land at the *new* home via the
            // existing migration push; sharer pushes would race it, so a
            // migration interval always invalidates.
            _ if migrated => false,
            ProtoSelect::AllUpdate => true,
            ProtoSelect::Adaptive => {
                writers.len() == 1
                    && hist.sharers.iter().filter(|&&n| n != new_home).count() >= MIN_SHARERS
            }
        };
        let probation =
            mode == ProtoSelect::Adaptive && want_update && hist.update_streak + 1 >= PROBATION;
        let decision = if want_update && !probation {
            hist.update_streak += 1;
            let flipped = !hist.last_update;
            hist.last_update = true;
            ProtoDecision {
                update: true,
                sharers: hist
                    .sharers
                    .iter()
                    .copied()
                    .filter(|&n| n != new_home)
                    .collect(),
                flipped,
            }
        } else {
            // Invalidate: cached copies are dropped, so the sharer history
            // restarts from the refaults that follow. `AllUpdate` keeps its
            // ever-growing set (its defining pathology); probation and
            // plain adaptive/legacy invalidates clear it.
            hist.update_streak = 0;
            if mode != ProtoSelect::AllUpdate {
                hist.sharers.clear();
            }
            let flipped = hist.last_update;
            hist.last_update = false;
            ProtoDecision::invalidate(flipped)
        };
        if let Entry::Occupied(e) = self.pages.entry(page) {
            if e.get().writes.is_empty() && e.get().sharers.is_empty() {
                e.remove();
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProtoSelect = ProtoSelect::Adaptive;

    #[test]
    fn fresh_multi_writer_tie_keeps_legacy_home_rule() {
        let mut t = ProtocolTable::new();
        // Multi-writer {1, 3}, old home 5 (not a writer): smallest writer.
        assert_eq!(t.pick_home(5, &[1, 3], 5), 1);
        // Multi-writer containing the old home: home keeps the page.
        assert_eq!(t.pick_home(6, &[0, 2], 2), 2);
        // Single writer takes the page.
        assert_eq!(t.pick_home(7, &[2], 0), 2);
    }

    #[test]
    fn dominant_writer_eventually_takes_the_page() {
        let mut t = ProtocolTable::new();
        // Node 2 writes page 9 alone for three intervals (home follows it
        // immediately under the single-writer rule).
        for _ in 0..3 {
            assert_eq!(t.pick_home(9, &[2], 2), 2);
        }
        // Interval where 0 and 2 both write, old home 0 — legacy would
        // keep home 0 (a writer), but 2's history (4 vs 1) dominates.
        assert_eq!(t.pick_home(9, &[0, 2], 0), 2);
        // Once counts even out (0 writes alone three times → 4 vs 4), a
        // contested interval falls back to legacy again.
        for _ in 0..3 {
            t.pick_home(9, &[0], 0);
        }
        assert_eq!(t.pick_home(9, &[0, 2], 0), 0, "5 vs 5 tie → legacy");
    }

    #[test]
    fn single_writer_with_sharers_flips_to_update() {
        let mut t = ProtocolTable::new();
        // Interval 1: nodes 1, 2, 3 read page 4 (home 0, no writer yet).
        t.note_readers(4, &[1, 2, 3]);
        // Interval 2: node 0 writes; three sharers ≥ MIN_SHARERS → update.
        let d = t.decide(A, 4, &[0], &[], 0, 0);
        assert!(d.update);
        assert_eq!(d.sharers, vec![1, 2, 3]);
        assert!(d.flipped, "first update decision is a flip");
        // Steady state: same decision, no new flip.
        let d2 = t.decide(A, 4, &[0], &[2], 0, 0);
        assert!(d2.update && !d2.flipped);
    }

    #[test]
    fn too_few_sharers_or_multi_writer_stays_invalidate() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[1]);
        let d = t.decide(A, 4, &[0], &[], 0, 0);
        assert!(!d.update, "one sharer is below MIN_SHARERS");
        assert!(!d.flipped);
        t.note_readers(5, &[1, 2, 3]);
        let d = t.decide(A, 5, &[0, 1], &[], 0, 0);
        assert!(!d.update, "multi-writer page never updates");
    }

    #[test]
    fn home_is_never_in_the_push_set() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[0, 1, 2]);
        let d = t.decide(A, 4, &[1], &[], 1, 1);
        assert!(d.update);
        assert_eq!(d.sharers, vec![0, 2], "home 1 excluded");
    }

    #[test]
    fn probation_invalidates_every_fourth_update_decision() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[1, 2]);
        let mut updates = 0;
        let mut invals = 0;
        for i in 0..PROBATION {
            // Readers keep re-reading each interval, so after each
            // probation clear the set re-fills.
            let d = t.decide(A, 4, &[0], &[1, 2], 0, 0);
            if d.update {
                updates += 1;
            } else {
                invals += 1;
                assert_eq!(i, PROBATION - 1, "only the 4th decision demotes");
                assert!(d.flipped);
            }
        }
        assert_eq!((updates, invals), (PROBATION - 1, 1));
        // The probation interval's readers refill the set → flips back.
        let d = t.decide(A, 4, &[0], &[1, 2], 0, 0);
        assert!(d.update && d.flipped);
    }

    #[test]
    fn probation_without_refault_falls_back_for_good() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[1, 2]);
        for _ in 0..PROBATION - 1 {
            assert!(t.decide(A, 4, &[0], &[], 0, 0).update);
        }
        // Probation clears sharers; nobody re-reads → invalidate forever.
        assert!(!t.decide(A, 4, &[0], &[], 0, 0).update);
        for _ in 0..3 {
            let d = t.decide(A, 4, &[0], &[], 0, 0);
            assert!(!d.update && !d.flipped);
        }
    }

    #[test]
    fn migration_interval_always_invalidates() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[1, 2, 3]);
        let d = t.decide(A, 4, &[2], &[], 0, 2);
        assert!(!d.update, "home moved 0 → 2: must invalidate");
        assert!(d.sharers.is_empty());
    }

    #[test]
    fn static_modes_ignore_history() {
        let mut t = ProtocolTable::new();
        t.note_readers(4, &[1, 2, 3]);
        let d = t.decide(ProtoSelect::AllInvalidate, 4, &[0], &[], 0, 0);
        assert!(!d.update && d.sharers.is_empty());
        // AllUpdate pushes even to a single sharer, and its sharer set
        // only ever grows (no probation).
        let mut u = ProtocolTable::new();
        u.note_readers(4, &[1]);
        for _ in 0..2 * PROBATION {
            let d = u.decide(ProtoSelect::AllUpdate, 4, &[0], &[], 0, 0);
            assert!(d.update);
            assert_eq!(d.sharers, vec![1]);
        }
        u.note_readers(4, &[2]);
        let d = u.decide(ProtoSelect::AllUpdate, 4, &[0], &[], 0, 0);
        assert_eq!(d.sharers, vec![1, 2], "AllUpdate accumulates forever");
    }

    #[test]
    fn decide_stream_is_deterministic() {
        // Same sorted inputs → same decision stream, independent of call
        // interleaving with other pages.
        let run = |other_first: bool| {
            let mut t = ProtocolTable::new();
            let mut log = Vec::new();
            for i in 0..6usize {
                if other_first {
                    t.note_readers(100 + i, &[3]);
                }
                t.note_readers(4, &[1, 2]);
                log.push(t.decide(A, 4, &[0], &[1, 2], 0, 0));
                if !other_first {
                    t.note_readers(100 + i, &[3]);
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }
}
