//! The communication-thread side of the DSM protocol.
//!
//! Each node dedicates one thread to servicing asynchronous protocol
//! requests (§5.3): page fetches, diff merges, migration pushes, barrier
//! coordination (node 0 doubles as the barrier master), and the
//! distributed-lock managers. The thread's virtual clock models the server:
//! service start = max(request arrival, server clock) + scheduling penalty,
//! so queueing at hot homes and the 1Thread-1CPU degradation both emerge
//! naturally.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parade_net::Bytes;

use parade_net::{MsgClass, Packet, VClock, VTime};
use parade_trace::{self as trace, EventKind};

use crate::adapt::ProtocolTable;
use crate::config::{CommCosts, HomePolicy};
use crate::engine::Dsm;
use crate::msg::{DepartEntry, DsmMsg, DsmReply};
use crate::page::{PageId, PageState, PAGE_SIZE};

/// The communication thread's context: its virtual service clock and cost
/// model.
pub struct CommServer {
    pub clock: VClock,
    costs: CommCosts,
}

impl CommServer {
    pub fn new(costs: CommCosts) -> Self {
        CommServer {
            clock: VClock::manual(),
            costs,
        }
    }

    fn begin_service(&mut self, arrive: VTime) {
        // The scheduling penalty models waking the communication thread on
        // a busy CPU. It applies per wakeup *burst*: if the server's clock
        // has already passed the arrival (requests queued while it was
        // busy), the thread is still running and services the next message
        // without being re-scheduled.
        if arrive > self.clock.now() {
            self.clock.sync_to(arrive);
            self.clock.charge_comm(self.costs.service_penalty);
        }
        self.clock.charge(self.costs.base);
    }

    fn charge_copy(&mut self, bytes: usize) {
        self.clock.charge(VTime::from_nanos(
            (self.costs.per_byte_ns * bytes as f64).round() as u64,
        ));
    }
}

struct Arrival {
    node: usize,
    reply_tag: u64,
    notices: Vec<PageId>,
    reads: Vec<PageId>,
}

/// Aggregation state of one hierarchical-barrier sequence at this node:
/// everything collected from the local arrival and the subtrees rooted at
/// this node's tree children, awaiting the last contribution.
#[derive(Default)]
struct TreeBarrier {
    /// (node, reply tag) of every member in the subtree seen so far.
    members: Vec<(usize, u64)>,
    /// Merged write notices: page → writer nodes.
    writers: HashMap<PageId, Vec<usize>>,
    /// Merged read observations: page → reader nodes (sharer evidence for
    /// the root's protocol table).
    readers: HashMap<PageId, Vec<usize>>,
    /// Virtual arrival time of each contribution. Service cost is charged
    /// in one deterministic burst at completion (sorted fold), so the
    /// barrier's virtual time is independent of the real-time order in
    /// which the tree packets happened to be serviced.
    arrivals_at: Vec<VTime>,
}

/// Parent of `node` in the binomial aggregation tree rooted at node 0
/// (clearing the lowest set bit walks toward the root).
fn tree_parent(node: usize) -> usize {
    debug_assert!(node > 0, "the root has no parent");
    node & (node - 1)
}

/// Number of direct children of `node` in an `nnodes`-node binomial tree:
/// `node + 2^k` for every `2^k` below `node`'s lowest set bit (all powers
/// of two for the root), clipped to the node count.
fn tree_child_count(node: usize, nnodes: usize) -> usize {
    let lsb = if node == 0 {
        usize::MAX
    } else {
        node & node.wrapping_neg()
    };
    let mut count = 0;
    let mut step = 1;
    while step < lsb && node + step < nnodes {
        count += 1;
        step <<= 1;
    }
    count
}

#[derive(Default)]
struct LockState {
    held_by: Option<usize>,
    queue: VecDeque<Waiter>,
    /// (notice sequence, pages) of past releases.
    history: Vec<(u64, Vec<PageId>)>,
    seq: u64,
}

struct Waiter {
    node: usize,
    reply_tag: u64,
    last_seen: u64,
}

/// A page request (single page or a contiguous range) waiting for this
/// node to become home / the copy to become readable.
struct DeferredFetch {
    first: PageId,
    count: u32,
    requester: usize,
    reply_tag: u64,
}

/// Mutable state owned by the communication thread (behind the `Dsm`'s
/// server mutex so tests can drive handling manually).
#[derive(Default)]
pub struct ServerState {
    deferred: Vec<DeferredFetch>,
    arrivals: HashMap<u64, Vec<Arrival>>,
    tree: HashMap<u64, TreeBarrier>,
    locks: HashMap<u64, LockState>,
    /// Per-page protocol-selection history (only consulted at the barrier
    /// root, node 0).
    proto: ProtocolTable,
}

impl Dsm {
    /// Run the communication-thread service loop until fabric shutdown.
    pub fn serve_loop(self: &Arc<Self>, srv: &mut CommServer) {
        while let Ok(pkt) = self.ep.recv_any_raw(MsgClass::Dsm) {
            self.handle_packet(pkt, srv);
        }
        // Fail-stop teardown: compute threads parked on page condvars
        // (TRANSIENT/BLOCKED waits, re-home push parks) are waiting for
        // *this* thread to complete a protocol step that will now never
        // happen. Wake them so they observe the shutdown and unwind
        // instead of deadlocking the node join.
        self.wake_page_waiters();
    }

    /// Handle one protocol request (exposed for deterministic tests).
    pub fn handle_packet(&self, pkt: Packet, srv: &mut CommServer) {
        let msg = DsmMsg::decode(&pkt.payload);
        if matches!(msg, DsmMsg::Nudge) {
            // Local bookkeeping wake-up, not a serviced request.
            self.retry_deferred(srv);
            return;
        }
        if self.config().hierarchical_barrier
            && matches!(msg, DsmMsg::BarrierArrive { .. } | DsmMsg::BarrierUp { .. })
        {
            // Tree contributions are only *collected* here; their service
            // cost is charged in one sorted burst when the subtree
            // completes, so the barrier's virtual time does not depend on
            // the racy real-time order the packets were pulled in.
            self.tree_barrier_step(msg, pkt.arrive_at, srv);
            return;
        }
        // Queueing delay: how long the request sat behind earlier service
        // (zero when the server was idle at arrival). Computed before
        // begin_service folds the arrival into the service clock.
        let queued_ns = srv
            .clock
            .now()
            .as_nanos()
            .saturating_sub(pkt.arrive_at.as_nanos());
        srv.begin_service(pkt.arrive_at);
        trace::begin_arg(EventKind::CommService, queued_ns, srv.clock.now());
        self.stats.serviced_requests.fetch_add(1, Ordering::Relaxed);
        match msg {
            DsmMsg::ReqPage {
                page,
                requester,
                reply_tag,
            } => {
                if !self.try_serve_page(page, requester, reply_tag, srv) {
                    self.server.lock().deferred.push(DeferredFetch {
                        first: page,
                        count: 1,
                        requester,
                        reply_tag,
                    });
                }
            }
            DsmMsg::ReqPageRange {
                first,
                count,
                requester,
                reply_tag,
            } => {
                if !self.try_serve_page_range(first, count, requester, reply_tag, srv) {
                    self.server.lock().deferred.push(DeferredFetch {
                        first,
                        count,
                        requester,
                        reply_tag,
                    });
                }
            }
            DsmMsg::Diff {
                page,
                requester,
                reply_tag,
                diff,
            } => {
                srv.charge_copy(diff.payload_bytes());
                self.merge_diff(page, &diff, srv);
                self.reply(requester, reply_tag, DsmReply::DiffAck { page }, srv);
            }
            DsmMsg::DiffBatch {
                requester,
                reply_tag,
                pages,
                diffs,
            } => {
                debug_assert_eq!(pages.len(), diffs.len(), "ragged diff batch");
                let payload: usize = diffs.iter().map(|d| d.payload_bytes()).sum();
                srv.charge_copy(payload);
                for (&page, diff) in pages.iter().zip(&diffs) {
                    self.merge_diff(page, diff, srv);
                }
                self.reply(
                    requester,
                    reply_tag,
                    DsmReply::DiffBatchAck {
                        pages: pages.len() as u32,
                    },
                    srv,
                );
            }
            DsmMsg::PagePush {
                page,
                barrier_seq,
                data,
            } => {
                srv.charge_copy(data.len());
                {
                    let meta = &self.pages[page];
                    let mut inner = meta.inner.lock();
                    // SAFETY: pushes only target parked or self-written
                    // pages whose application threads are held at the
                    // barrier; see §5.2.2 ordering argument in DESIGN.md.
                    unsafe { self.pool.copy_page_in(page, &data) };
                    inner.pushed_seq = barrier_seq + 1;
                    if inner.awaiting_push && barrier_seq >= inner.awaiting_seq {
                        // The departure parked the page for this push (or an
                        // older one this push supersedes — same home, FIFO
                        // link, so a newer push carries a newer merge);
                        // BLOCKED -> READ_ONLY is the only legal exit.
                        debug_assert_eq!(
                            inner.state,
                            PageState::Blocked,
                            "push for page {page} found an unparked waiter"
                        );
                        inner.awaiting_push = false;
                        meta.set_state(&mut inner, PageState::ReadOnly);
                        meta.cv.notify_all();
                    } else if inner.awaiting_push {
                        // A stale push: the page was re-parked for a later
                        // interval before this interval's push landed. The
                        // bytes are already copied in (an older merge never
                        // hurts — the awaited push overwrites them, FIFO on
                        // the same home link); stay parked for the newer one.
                    } else if inner.state == PageState::Invalid {
                        // The push beat our departure application (it can
                        // only land while our threads are held at the
                        // barrier, so no later invalidation raced it): the
                        // merged bytes are now resident — mark them usable
                        // so the departure does not park and a later fault
                        // does not try to fetch a page we now home. The
                        // push is an update that began and completed in one
                        // step, so walk the legal INVALID→TRANSIENT→
                        // READ_ONLY path under the one lock hold.
                        meta.set_state(&mut inner, PageState::Transient);
                        meta.set_state(&mut inner, PageState::ReadOnly);
                    }
                }
                self.retry_deferred(srv);
            }
            DsmMsg::PushReq {
                page,
                barrier_seq,
                requester,
            } => {
                // `requester` just became the page's home at `barrier_seq`
                // but found its own copy invalid (a lock-grant write notice
                // can invalidate even the single writer's copy under false
                // sharing). We are the old home and still hold the merged
                // interval bytes — no node can write the page until this
                // push lands, because the new home defers all fetches while
                // parked. Note `try_serve_page` would refuse: we are no
                // longer `home_of(page)`.
                let mut buf = vec![0u8; PAGE_SIZE];
                {
                    let _inner = self.pages[page].inner.lock();
                    // SAFETY: we were the page's home through `barrier_seq`;
                    // old homes never drop their merged bytes.
                    unsafe { self.pool.copy_page_out(page, &mut buf) };
                }
                srv.charge_copy(PAGE_SIZE);
                let push = DsmMsg::PagePush {
                    page,
                    barrier_seq,
                    data: Bytes::from(buf),
                };
                self.ep
                    .send_at(requester, MsgClass::Dsm, 0, push.encode(), srv.clock.now());
                self.stats.pushes_sent.fetch_add(1, Ordering::Relaxed);
                trace::instant(EventKind::DsmPush, page as u64, srv.clock.now());
            }
            DsmMsg::BarrierArrive {
                seq,
                node,
                reply_tag,
                notices,
                reads,
            } => {
                assert_eq!(self.node(), 0, "barrier master must be node 0");
                let complete = {
                    let mut st = self.server.lock();
                    let arr = st.arrivals.entry(seq).or_default();
                    arr.push(Arrival {
                        node,
                        reply_tag,
                        notices,
                        reads,
                    });
                    arr.len() == self.nnodes()
                };
                if complete {
                    let arrivals = self
                        .server
                        .lock()
                        .arrivals
                        .remove(&seq)
                        .expect("just completed");
                    self.compute_depart(seq, arrivals, srv);
                }
            }
            DsmMsg::LockAcq {
                lock,
                node,
                reply_tag,
                last_seen,
                polling,
            } => {
                let mut st = self.server.lock();
                let ls = st.locks.entry(lock).or_default();
                if ls.held_by.is_none() {
                    ls.held_by = Some(node);
                    let grant = make_grant(ls, last_seen);
                    drop(st);
                    self.reply(node, reply_tag, grant, srv);
                } else if polling {
                    drop(st);
                    self.reply(node, reply_tag, DsmReply::LockBusy, srv);
                } else {
                    ls.queue.push_back(Waiter {
                        node,
                        reply_tag,
                        last_seen,
                    });
                }
            }
            DsmMsg::LockRel {
                lock,
                node,
                notices,
            } => {
                let granted = {
                    let mut st = self.server.lock();
                    let ls = st.locks.entry(lock).or_default();
                    debug_assert_eq!(ls.held_by, Some(node), "release by non-holder");
                    ls.seq += 1;
                    let s = ls.seq;
                    ls.history.push((s, notices));
                    ls.held_by = None;
                    if let Some(w) = ls.queue.pop_front() {
                        ls.held_by = Some(w.node);
                        Some((w.node, w.reply_tag, make_grant(ls, w.last_seen)))
                    } else {
                        None
                    }
                };
                if let Some((n, t, g)) = granted {
                    self.reply(n, t, g, srv);
                }
            }
            DsmMsg::Nudge => unreachable!("handled above"),
            DsmMsg::BarrierUp { .. } => {
                unreachable!("BarrierUp only exists in hierarchical mode, handled above")
            }
        }
        trace::end(EventKind::CommService, srv.clock.now());
    }

    fn reply(&self, node: usize, tag: u64, reply: DsmReply, srv: &mut CommServer) {
        self.ep
            .send_at(node, MsgClass::Ctl, tag, reply.encode(), srv.clock.now());
    }

    /// Merge one page's diff into the home copy (word runs under the page
    /// lock). Disjoint writers' diffs for the same page merge run by run,
    /// whether they arrive in one batch or across batches.
    fn merge_diff(&self, page: PageId, diff: &crate::diff::Diff, srv: &CommServer) {
        debug_assert_eq!(
            self.home_of(page),
            self.node(),
            "diff for page {page} routed to non-home"
        );
        let shard = self.shards.record_merge(page);
        self.stats.shard_merges.fetch_add(1, Ordering::Relaxed);
        trace::instant(EventKind::DsmShard, shard as u64, srv.clock.now());
        let meta = &self.pages[page];
        let _inner = meta.inner.lock();
        // We are the page's home: its copy is never absent or
        // mid-fetch here (fetch_page targets remote homes only).
        debug_assert!(
            !matches!(_inner.state, PageState::Invalid | PageState::Transient),
            "diff shipped to a non-resident home copy of page {page}: {:?}",
            _inner.state
        );
        let start = page * PAGE_SIZE;
        for run in &diff.runs {
            // SAFETY: we are home; run bounds are within the page (enforced
            // by `Diff::decode` for wire-received diffs).
            unsafe {
                self.pool
                    .write_bytes(start + run.offset as usize, &run.data)
            };
        }
    }

    /// Serve a page request if we are its current home and the page is
    /// readable; returns false when the request must be deferred (we are
    /// not yet home, or the page awaits a migration push).
    fn try_serve_page(
        &self,
        page: PageId,
        requester: usize,
        reply_tag: u64,
        srv: &mut CommServer,
    ) -> bool {
        if self.home_of(page) != self.node() {
            return false;
        }
        let state = self.page_state(page);
        if !state.readable() {
            return false;
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        // SAFETY: home copy is valid; concurrent word-level writes by local
        // application threads are application races, as on real SDSM.
        unsafe { self.pool.copy_page_out(page, &mut buf) };
        srv.charge_copy(PAGE_SIZE);
        self.reply(
            requester,
            reply_tag,
            DsmReply::PageData {
                page,
                data: Bytes::from(buf),
            },
            srv,
        );
        true
    }

    /// Serve a coalesced contiguous-page fetch if every page in the range
    /// is homed here and readable; otherwise the whole range is deferred
    /// (homes only move in lockstep at barriers, so a mixed range means a
    /// migration push is still in flight).
    fn try_serve_page_range(
        &self,
        first: PageId,
        count: u32,
        requester: usize,
        reply_tag: u64,
        srv: &mut CommServer,
    ) -> bool {
        let count = count as usize;
        for page in first..first + count {
            if self.home_of(page) != self.node() || !self.page_state(page).readable() {
                return false;
            }
        }
        let mut buf = vec![0u8; count * PAGE_SIZE];
        for (k, chunk) in buf.chunks_exact_mut(PAGE_SIZE).enumerate() {
            // SAFETY: home copy is valid; concurrent word-level writes by
            // local application threads are application races, as on real
            // SDSM.
            unsafe { self.pool.copy_page_out(first + k, chunk) };
        }
        srv.charge_copy(count * PAGE_SIZE);
        self.reply(
            requester,
            reply_tag,
            DsmReply::PageRangeData {
                first,
                data: Bytes::from(buf),
            },
            srv,
        );
        true
    }

    /// Re-examine deferred page requests (after home migrations or pushes).
    fn retry_deferred(&self, srv: &mut CommServer) {
        let pending: Vec<DeferredFetch> = {
            let mut st = self.server.lock();
            std::mem::take(&mut st.deferred)
        };
        for d in pending {
            let served = if d.count == 1 {
                self.try_serve_page(d.first, d.requester, d.reply_tag, srv)
            } else {
                self.try_serve_page_range(d.first, d.count, d.requester, d.reply_tag, srv)
            };
            if !served {
                self.server.lock().deferred.push(d);
            }
        }
    }

    /// One contribution to this node's subtree of the hierarchical barrier:
    /// the local application thread's arrival, or a child communication
    /// thread's aggregated `BarrierUp`. When the subtree completes, either
    /// forward one `BarrierUp` to the tree parent or (at the root) decide
    /// the departure and fan it out to every member.
    fn tree_barrier_step(&self, msg: DsmMsg, arrive_at: VTime, srv: &mut CommServer) {
        let (seq, members, writer_lists, reader_lists) = match msg {
            DsmMsg::BarrierArrive {
                seq,
                node,
                reply_tag,
                notices,
                reads,
            } => {
                debug_assert_eq!(
                    node,
                    self.node(),
                    "hierarchical arrivals go to the arriving node's own comm thread"
                );
                let writers = notices.into_iter().map(|p| (p, vec![node])).collect();
                let readers = reads.into_iter().map(|p| (p, vec![node])).collect();
                (seq, vec![(node, reply_tag)], writers, readers)
            }
            DsmMsg::BarrierUp {
                seq,
                members,
                writers,
                readers,
            } => (seq, members, writers, readers),
            _ => unreachable!("not a tree barrier message"),
        };
        let expected = 1 + tree_child_count(self.node(), self.nnodes());
        let complete = {
            let mut st = self.server.lock();
            let tb = st.tree.entry(seq).or_default();
            tb.members.extend(members);
            for (page, nodes) in writer_lists {
                tb.writers.entry(page).or_default().extend(nodes);
            }
            for (page, nodes) in reader_lists {
                tb.readers.entry(page).or_default().extend(nodes);
            }
            tb.arrivals_at.push(arrive_at);
            tb.arrivals_at.len() == expected
        };
        if !complete {
            return;
        }
        let tb = self
            .server
            .lock()
            .tree
            .remove(&seq)
            .expect("just completed");
        // Deterministic service fold: charge the whole burst in arrival-time
        // order, regardless of the order the packets were actually handled.
        let mut arrivals_at = tb.arrivals_at;
        arrivals_at.sort_unstable();
        trace::begin_arg(
            EventKind::CommService,
            arrivals_at.len() as u64,
            srv.clock.now(),
        );
        for &t in &arrivals_at {
            srv.begin_service(t);
        }
        self.stats
            .serviced_requests
            .fetch_add(arrivals_at.len() as u64, Ordering::Relaxed);
        if self.node() == 0 {
            let entries = self.decide_entries(tb.writers, tb.readers);
            self.send_depart(seq, entries, tb.members, srv);
        } else {
            // Sort the payload so the wire bytes (and their cost) are
            // independent of contribution order.
            let mut members = tb.members;
            members.sort_unstable_by_key(|&(node, _)| node);
            let sort_lists = |map: HashMap<PageId, Vec<usize>>| {
                let mut lists: Vec<(PageId, Vec<usize>)> = map
                    .into_iter()
                    .map(|(p, mut w)| {
                        w.sort_unstable();
                        (p, w)
                    })
                    .collect();
                lists.sort_unstable_by_key(|&(p, _)| p);
                lists
            };
            let up = DsmMsg::BarrierUp {
                seq,
                members,
                writers: sort_lists(tb.writers),
                readers: sort_lists(tb.readers),
            };
            let wire = up.encode();
            srv.charge_copy(wire.len());
            self.ep.send_at(
                tree_parent(self.node()),
                MsgClass::Dsm,
                0,
                wire,
                srv.clock.now(),
            );
        }
        trace::end(EventKind::CommService, srv.clock.now());
    }

    /// Barrier master: combine all nodes' write notices, decide home
    /// migrations (§5.2.2), and send the departure to every node.
    fn compute_depart(&self, seq: u64, arrivals: Vec<Arrival>, srv: &mut CommServer) {
        let mut writers: HashMap<PageId, Vec<usize>> = HashMap::new();
        let mut readers: HashMap<PageId, Vec<usize>> = HashMap::new();
        for a in &arrivals {
            for &p in &a.notices {
                writers.entry(p).or_default().push(a.node);
            }
            for &p in &a.reads {
                readers.entry(p).or_default().push(a.node);
            }
        }
        let members = arrivals.iter().map(|a| (a.node, a.reply_tag)).collect();
        let entries = self.decide_entries(writers, readers);
        self.send_depart(seq, entries, members, srv);
    }

    /// Decide home migrations (§5.2.2) and per-page protocols from the
    /// merged page → writers / page → readers maps. Lists are sorted and
    /// pages visited in id order at decision time, so the entries (and the
    /// protocol table they evolve) are identical whether the maps were
    /// built flat or merged up a tree.
    fn decide_entries(
        &self,
        writers: HashMap<PageId, Vec<usize>>,
        readers: HashMap<PageId, Vec<usize>>,
    ) -> Vec<DepartEntry> {
        let mode = self.config().proto_select;
        let fixed_homes = self.config().home_policy == HomePolicy::Fixed;
        let mut written: Vec<(PageId, Vec<usize>)> = writers
            .into_iter()
            .map(|(p, mut w)| {
                w.sort_unstable();
                (p, w)
            })
            .collect();
        written.sort_unstable_by_key(|&(p, _)| p);
        let mut readers = readers;
        let mut st = self.server.lock();
        // Sharer evidence for pages *not* written this interval still
        // accumulates: a read-mostly interval followed by a write interval
        // must already know the page's audience.
        let mut unwritten: Vec<PageId> = readers
            .keys()
            .copied()
            .filter(|p| written.binary_search_by_key(p, |&(q, _)| q).is_err())
            .collect();
        unwritten.sort_unstable();
        for page in unwritten {
            st.proto.note_readers(page, &readers[&page]);
        }
        let mut flips = 0u64;
        let entries: Vec<DepartEntry> = written
            .into_iter()
            .map(|(page, w)| {
                let old_home = self.home_of(page);
                let multi_writer = w.len() > 1;
                let new_home = if fixed_homes {
                    st.proto.note_writes(page, &w);
                    old_home
                } else {
                    // §5.2.2 priorities, plus dominant-writer re-homing
                    // once one writer's history strictly outweighs the
                    // rest (see `ProtocolTable::pick_home`).
                    st.proto.pick_home(page, &w, old_home)
                };
                let rd = readers.remove(&page).unwrap_or_default();
                let d = st.proto.decide(mode, page, &w, &rd, old_home, new_home);
                if d.flipped {
                    flips += 1;
                }
                DepartEntry {
                    page,
                    old_home,
                    new_home,
                    multi_writer,
                    update: d.update,
                    sharers: d.sharers,
                }
            })
            .collect();
        drop(st);
        if flips > 0 {
            self.stats.proto_flips.fetch_add(flips, Ordering::Relaxed);
        }
        entries
    }

    /// Fan the departure out to every member waiting on this barrier.
    fn send_depart(
        &self,
        seq: u64,
        entries: Vec<DepartEntry>,
        mut members: Vec<(usize, u64)>,
        srv: &mut CommServer,
    ) {
        let reply = DsmReply::BarrierDepart { seq, entries };
        let payload = reply.encode();
        srv.charge_copy(payload.len());
        // Release the master's own caller last: every remote departure is
        // queued before any local thread can resume past the barrier and
        // (on a dead link) shut the fabric down, so a peer still parked in
        // `Dsm::barrier` finds its departure rather than `Disconnected`.
        members.sort_unstable_by_key(|&(node, _)| (node == self.node(), node));
        for &(node, reply_tag) in &members {
            self.ep.send_at(
                node,
                MsgClass::Ctl,
                reply_tag,
                payload.clone(),
                srv.clock.now(),
            );
        }
    }
}

/// Spawn the communication thread for `dsm`. Joins when the fabric shuts
/// down; returns the handle (the final service clock is reported through
/// it for diagnostics).
pub fn spawn_comm_thread(dsm: Arc<Dsm>) -> std::thread::JoinHandle<VTime> {
    let costs = dsm.config().comm;
    std::thread::Builder::new()
        .name(format!("parade-comm-{}", dsm.node()))
        .spawn(move || {
            trace::set_identity(dsm.node(), "comm");
            let mut srv = CommServer::new(costs);
            dsm.serve_loop(&mut srv);
            srv.clock.now()
        })
        .expect("spawn communication thread")
}

fn make_grant(ls: &LockState, last_seen: u64) -> DsmReply {
    let mut notices: Vec<PageId> = ls
        .history
        .iter()
        .filter(|(s, _)| *s > last_seen)
        .flat_map(|(_, pages)| pages.iter().copied())
        .collect();
    notices.sort_unstable();
    notices.dedup();
    DsmReply::LockGrant {
        cur_seq: ls.seq,
        notices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_shape() {
        assert_eq!(tree_parent(1), 0);
        assert_eq!(tree_parent(2), 0);
        assert_eq!(tree_parent(3), 2);
        assert_eq!(tree_parent(5), 4);
        assert_eq!(tree_parent(6), 4);
        assert_eq!(tree_parent(7), 6);
        assert_eq!(tree_parent(12), 8);
        // Root adopts 1, 2, 4, 8, ... up to the node count.
        assert_eq!(tree_child_count(0, 1), 0);
        assert_eq!(tree_child_count(0, 2), 1);
        assert_eq!(tree_child_count(0, 8), 3);
        assert_eq!(tree_child_count(0, 9), 4);
        assert_eq!(tree_child_count(0, 256), 8);
        // Odd nodes are leaves; interior nodes stop at the clip.
        assert_eq!(tree_child_count(1, 8), 0);
        assert_eq!(tree_child_count(2, 8), 1);
        assert_eq!(tree_child_count(4, 8), 2);
        assert_eq!(tree_child_count(4, 6), 1);
        assert_eq!(tree_child_count(6, 7), 0);
    }

    #[test]
    fn every_node_reaches_the_root_and_counts_add_up() {
        for nnodes in 1..=40usize {
            let mut total_children = 0;
            for node in 0..nnodes {
                total_children += tree_child_count(node, nnodes);
                if node > 0 {
                    // Walk to the root; parents strictly decrease.
                    let mut cur = node;
                    let mut hops = 0;
                    while cur != 0 {
                        let p = tree_parent(cur);
                        assert!(p < cur);
                        cur = p;
                        hops += 1;
                        assert!(hops <= usize::BITS as usize);
                    }
                }
            }
            // Every non-root node is someone's child exactly once.
            assert_eq!(total_children, nnodes - 1, "nnodes={nnodes}");
        }
    }
}
