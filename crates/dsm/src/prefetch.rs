//! Per-thread stride prediction over the read-fault stream.
//!
//! `ReqPageRange` coalescing (PR 5) already turns a *single bulk access*
//! spanning contiguous pages into one round trip. What it cannot see is a
//! fault *stream*: CG-S and Helmholtz sweeps fault page `p`, compute, then
//! fault `p+s`, compute, fault `p+2s`… — each fault pays a full round trip
//! because the next one has not happened yet. The predictor watches the
//! per-thread sequence of faulting page ids, and once the same non-zero
//! delta repeats ([`CONFIRM`] times) it asks the engine to fetch the next
//! `depth` predicted pages speculatively, ahead of the fault.
//!
//! The state machine is deliberately tiny and exactly unit-testable:
//!
//! * **Cold** — no confirmed stride. Each fault's delta is compared with
//!   the previous delta; a repeat confirms the stride.
//! * **Confirmed** — faults landing a whole number of strides ahead (up to
//!   `depth + 1`, i.e. within or just past the prefetched window) continue
//!   the stream and re-arm prefetch; anything else is a *mispredict*,
//!   which drops back to cold and burns one unit of the mispredict
//!   budget. Exhausting the budget disables the predictor for the rest of
//!   the thread's life — a thread with genuinely random accesses must stop
//!   paying speculative round trips.
//!
//! Everything here is pure bookkeeping over page ids: no clocks, no
//! randomness, so decisions replay identically on any host.

use crate::page::PageId;

/// Identical consecutive deltas required to confirm a stride.
pub const CONFIRM: u32 = 2;

/// What the engine should do after recording one read fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// No speculation: cold predictor, unconfirmed stride, or disabled.
    None,
    /// Fetch pages `fault + stride`, `fault + 2·stride`, …, `fault +
    /// count·stride` (the engine filters out pages that are already
    /// readable, home-resident, or out of pool bounds).
    Prefetch { stride: isize, count: usize },
}

/// Per-thread fault-stream predictor (see module docs).
#[derive(Debug, Clone)]
pub struct StridePredictor {
    /// Last faulting page observed.
    last: Option<PageId>,
    /// Candidate or confirmed stride (pages; may be negative).
    stride: isize,
    /// Consecutive repeats of `stride`, saturating at `CONFIRM`.
    streak: u32,
    /// Mispredictions of a confirmed stride so far.
    mispredicts: u32,
    /// Budget from `DsmConfig::prefetch_mispredict_budget`.
    budget: u32,
    /// Pages to fetch ahead per prediction.
    depth: usize,
    disabled: bool,
}

impl StridePredictor {
    pub fn new(depth: usize, budget: u32) -> StridePredictor {
        StridePredictor {
            last: None,
            stride: 0,
            streak: 0,
            mispredicts: 0,
            budget,
            depth: depth.max(1),
            disabled: depth == 0 || budget == 0,
        }
    }

    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    pub fn mispredicts(&self) -> u32 {
        self.mispredicts
    }

    fn confirmed(&self) -> bool {
        self.stride != 0 && self.streak >= CONFIRM
    }

    /// Record one read fault on `page`; returns the engine's marching
    /// order. The engine tracks which predicted pages it actually fetched
    /// and credits `prefetch_hits` when later accesses consume them
    /// without faulting.
    pub fn record_fault(&mut self, page: PageId) -> Prediction {
        if self.disabled {
            return Prediction::None;
        }
        let Some(last) = self.last.replace(page) else {
            return Prediction::None;
        };
        let delta = page as isize - last as isize;
        if delta == 0 {
            // Re-fault on the same page (invalidation refetch): no stride
            // information either way.
            return Prediction::None;
        }
        if self.confirmed() {
            let jump = if self.stride != 0 && delta % self.stride == 0 {
                delta / self.stride
            } else {
                -1
            };
            if (1..=self.depth as isize + 1).contains(&jump) {
                // Continuation: the fault landed inside (or one past) the
                // prefetched window.
                return Prediction::Prefetch {
                    stride: self.stride,
                    count: self.depth,
                };
            }
            // A confirmed stride broke: burn budget, go cold with the new
            // delta as the next candidate.
            self.mispredicts += 1;
            if self.mispredicts >= self.budget {
                self.disabled = true;
                return Prediction::None;
            }
            self.stride = delta;
            self.streak = 1;
            return Prediction::None;
        }
        if delta == self.stride {
            self.streak = (self.streak + 1).min(CONFIRM);
        } else {
            self.stride = delta;
            self.streak = 1;
        }
        if self.confirmed() {
            Prediction::Prefetch {
                stride: self.stride,
                count: self.depth,
            }
        } else {
            Prediction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NONE: Prediction = Prediction::None;

    fn pre(stride: isize, count: usize) -> Prediction {
        Prediction::Prefetch { stride, count }
    }

    /// Drive a fault trace through a fresh predictor; return the decision
    /// per fault.
    fn decisions(depth: usize, budget: u32, trace: &[usize]) -> Vec<Prediction> {
        let mut p = StridePredictor::new(depth, budget);
        trace.iter().map(|&f| p.record_fault(f)).collect()
    }

    #[test]
    fn unit_stride_confirms_on_third_fault() {
        // Faults 10, 11, 12, 13: deltas 1, 1, 1. The second identical
        // delta (fault 12) confirms; every continuation re-arms.
        assert_eq!(
            decisions(4, 4, &[10, 11, 12, 13]),
            vec![NONE, NONE, pre(1, 4), pre(1, 4)]
        );
    }

    #[test]
    fn strided_and_reverse_traces_confirm() {
        // Stride 3 forward.
        assert_eq!(
            decisions(2, 4, &[0, 3, 6, 9, 12]),
            vec![NONE, NONE, pre(3, 2), pre(3, 2), pre(3, 2)]
        );
        // Stride -2 (reverse sweep).
        assert_eq!(
            decisions(4, 4, &[40, 38, 36, 34]),
            vec![NONE, NONE, pre(-2, 4), pre(-2, 4)]
        );
    }

    #[test]
    fn jump_over_prefetched_pages_is_a_continuation() {
        // depth 4, stride 1 confirmed at fault 12. The stream then lands
        // on 17 (jump 5 = depth + 1, just past the prefetched window):
        // still a continuation, not a mispredict. Jump 6 breaks.
        let mut p = StridePredictor::new(4, 4);
        for f in [10usize, 11, 12] {
            p.record_fault(f);
        }
        assert_eq!(p.record_fault(17), pre(1, 4));
        assert_eq!(p.mispredicts(), 0);
        assert_eq!(p.record_fault(24), NONE, "jump 7 breaks the stride");
        assert_eq!(p.mispredicts(), 1);
    }

    #[test]
    fn random_trace_never_issues_and_eventually_disables() {
        // No delta ever repeats: the predictor must never confirm, so a
        // purely random thread costs zero speculative fetches.
        let got = decisions(4, 4, &[5, 90, 2, 61, 33, 7, 44, 18]);
        assert!(got.iter().all(|d| *d == NONE), "{got:?}");
        // And with an adversarial confirm-then-break trace the budget
        // disables the predictor for good.
        let mut p = StridePredictor::new(2, 2);
        let mut breaks = 0;
        for f in [0usize, 1, 2, 100, 101, 102, 200, 201, 202, 300] {
            p.record_fault(f);
            if p.is_disabled() {
                breaks += 1;
            }
        }
        assert!(p.is_disabled(), "budget 2 must disable after two breaks");
        assert!(breaks > 0);
        assert_eq!(p.mispredicts(), 2);
        // Disabled is sticky: even a perfect stride stays silent.
        for f in [400usize, 401, 402, 403] {
            assert_eq!(p.record_fault(f), NONE);
        }
    }

    #[test]
    fn phase_change_reconfirms_at_full_price() {
        // Phase 1: stride 1. Phase change (one mispredict). Phase 2:
        // stride 4 must re-confirm with CONFIRM repeats before issuing.
        let mut p = StridePredictor::new(4, 8);
        assert_eq!(
            [10, 11, 12].map(|f| p.record_fault(f)),
            [NONE, NONE, pre(1, 4)]
        );
        assert_eq!(p.record_fault(100), NONE, "phase change is a mispredict");
        assert_eq!(p.mispredicts(), 1);
        assert_eq!(
            [104, 108, 112].map(|f| p.record_fault(f)),
            [NONE, pre(4, 4), pre(4, 4)]
        );
    }

    #[test]
    fn refault_on_same_page_is_neutral() {
        // Invalidation refetches (delta 0) must neither confirm nor break.
        let mut p = StridePredictor::new(4, 4);
        for f in [10usize, 11, 12] {
            p.record_fault(f);
        }
        assert_eq!(p.record_fault(12), NONE);
        assert_eq!(p.mispredicts(), 0);
        assert_eq!(p.record_fault(13), pre(1, 4), "stride survives a refault");
    }

    #[test]
    fn zero_depth_or_budget_disables_from_birth() {
        let mut p = StridePredictor::new(0, 4);
        assert!(p.is_disabled());
        assert_eq!(p.record_fault(1), NONE);
        let q = StridePredictor::new(4, 0);
        assert!(q.is_disabled());
    }
}
