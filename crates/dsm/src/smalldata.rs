//! Small-data objects kept consistent by the message-passing update
//! protocol (§5.2.1).
//!
//! Data structures below the threshold (256 bytes on the paper's cluster)
//! guarded by synchronization or work-sharing directives bypass HLRC
//! entirely: they live in plain per-node memory and their values are
//! propagated *eagerly* by collective operations (entry-consistency style).
//! No twins, no diffs, no page faults — that is the point.

use parade_net::sync::{Mutex, RwLock};

/// Handle to a small-data object; plain data, capturable by closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallHandle {
    pub id: u32,
    pub len: usize,
}

struct SmallObj {
    data: Mutex<Vec<u8>>,
}

/// The per-node registry of small objects. All nodes perform identical
/// allocations, so ids line up across the cluster.
#[derive(Default)]
pub struct SmallRegistry {
    objs: RwLock<Vec<SmallObj>>,
}

impl SmallRegistry {
    pub fn new() -> Self {
        SmallRegistry::default()
    }

    /// Allocate a zero-initialized object of `len` bytes.
    pub fn alloc(&self, len: usize) -> SmallHandle {
        let mut objs = self.objs.write();
        let id = objs.len() as u32;
        objs.push(SmallObj {
            data: Mutex::new(vec![0; len]),
        });
        SmallHandle { id, len }
    }

    pub fn count(&self) -> usize {
        self.objs.read().len()
    }

    /// Read the whole object.
    pub fn read_bytes(&self, h: SmallHandle) -> Vec<u8> {
        self.objs.read()[h.id as usize].data.lock().clone()
    }

    /// Overwrite the whole object (e.g. with a broadcast/allreduce result).
    pub fn write_bytes(&self, h: SmallHandle, bytes: &[u8]) {
        assert_eq!(bytes.len(), h.len, "small object size mismatch");
        let objs = self.objs.read();
        let mut d = objs[h.id as usize].data.lock();
        d.copy_from_slice(bytes);
    }

    /// Atomically (node-locally) mutate the object and return a result —
    /// the intra-node half of the paper's hierarchical mutual exclusion
    /// (pthread lock within the node, collective between nodes).
    pub fn mutate<R>(&self, h: SmallHandle, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let objs = self.objs.read();
        let mut d = objs[h.id as usize].data.lock();
        f(&mut d)
    }

    // Typed helpers for the common scalar cases.

    pub fn read_f64(&self, h: SmallHandle, idx: usize) -> f64 {
        let objs = self.objs.read();
        let d = objs[h.id as usize].data.lock();
        f64::from_le_bytes(d[idx * 8..idx * 8 + 8].try_into().expect("f64"))
    }

    pub fn write_f64(&self, h: SmallHandle, idx: usize, v: f64) {
        let objs = self.objs.read();
        let mut d = objs[h.id as usize].data.lock();
        d[idx * 8..idx * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn read_i64(&self, h: SmallHandle, idx: usize) -> i64 {
        let objs = self.objs.read();
        let d = objs[h.id as usize].data.lock();
        i64::from_le_bytes(d[idx * 8..idx * 8 + 8].try_into().expect("i64"))
    }

    pub fn write_i64(&self, h: SmallHandle, idx: usize, v: i64) {
        let objs = self.objs.read();
        let mut d = objs[h.id as usize].data.lock();
        d[idx * 8..idx * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_ids_are_sequential() {
        let r = SmallRegistry::new();
        let a = r.alloc(8);
        let b = r.alloc(16);
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn typed_scalar_roundtrip() {
        let r = SmallRegistry::new();
        let h = r.alloc(24);
        r.write_f64(h, 0, 1.5);
        r.write_f64(h, 2, -2.5);
        r.write_i64(h, 1, 77);
        assert_eq!(r.read_f64(h, 0), 1.5);
        assert_eq!(r.read_i64(h, 1), 77);
        assert_eq!(r.read_f64(h, 2), -2.5);
    }

    #[test]
    fn mutate_is_atomic_across_threads() {
        use std::sync::Arc;
        let r = Arc::new(SmallRegistry::new());
        let h = r.alloc(8);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.mutate(h, |d| {
                            let v = i64::from_le_bytes(d.try_into().unwrap());
                            d.copy_from_slice(&(v + 1).to_le_bytes());
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.read_i64(h, 0), 4000);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn write_wrong_size_panics() {
        let r = SmallRegistry::new();
        let h = r.alloc(8);
        r.write_bytes(h, &[0; 4]);
    }
}
