//! The per-node DSM engine: fault handling, flushes, barriers, and
//! distributed locks — everything executed by *application* threads.
//!
//! The communication-thread side (serving page requests, merging diffs,
//! the barrier master, the lock manager) lives in [`crate::server`].

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use parade_net::sync::{Condvar, Mutex};

use parade_net::{Endpoint, Match, MsgClass, VClock, VTime};
use parade_trace::{self as trace, EventKind};

use crate::bufpool::PageBuf;
use crate::config::{DsmConfig, LockKind};
use crate::diff::Diff;
use crate::msg::{DsmMsg, DsmReply, REPLY_TAG_BASE};
use crate::page::{PageId, PageState, PAGE_SIZE};
use crate::prefetch::{Prediction, StridePredictor};
use crate::smalldata::SmallRegistry;
use crate::stats::DsmStats;
use crate::store::{AllocError, PageShards, RawPool, RegionAllocator, RegionHandle};

/// Distinguishes `Dsm` instances so a thread's cached predictor never
/// carries over between clusters sharing an OS thread (tests spawn many).
static NEXT_DSM_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Per-thread stride-prefetch state: the predictor plus the set of pages
/// this thread fetched speculatively and has not consumed yet.
struct ThreadPrefetch {
    dsm: u64,
    pred: StridePredictor,
    outstanding: HashSet<PageId>,
}

thread_local! {
    static PREFETCH: RefCell<Option<ThreadPrefetch>> = const { RefCell::new(None) };
}

pub(crate) struct PageMeta {
    pub(crate) inner: Mutex<PageInner>,
    pub(crate) cv: Condvar,
    /// Lock-free mirror of the page state for the access fast path.
    pub(crate) fast: AtomicU8,
}

pub(crate) struct PageInner {
    pub(crate) state: PageState,
    /// Pristine copy made at the first write of an interval (non-home
    /// only); pooled, so clearing it recycles the buffer.
    pub(crate) twin: Option<PageBuf>,
    /// This node is the page's new home and waits for the old home to push
    /// the merged content (multi-writer migration).
    pub(crate) awaiting_push: bool,
    /// Barrier sequence whose push the park waits for. A page can be
    /// re-parked at interval N+1 while the push for interval N is still in
    /// flight (nothing on this node touched the page in between, so no
    /// thread blocked and the barrier completed); the stale push must
    /// refresh the bytes without unparking the newer wait.
    pub(crate) awaiting_seq: u64,
    /// `barrier_seq + 1` of the last applied push (0 = never) — resolves
    /// the race between a push arriving and the departure being applied.
    pub(crate) pushed_seq: u64,
}

impl PageMeta {
    fn new(state: PageState) -> Self {
        PageMeta {
            inner: Mutex::new(PageInner {
                state,
                twin: None,
                awaiting_push: false,
                awaiting_seq: 0,
                pushed_seq: 0,
            }),
            cv: Condvar::new(),
            fast: AtomicU8::new(state as u8),
        }
    }

    pub(crate) fn set_state(&self, inner: &mut PageInner, next: PageState) {
        debug_assert!(
            inner.state == next || inner.state.can_transition(next),
            "illegal page transition {:?} -> {:?}",
            inner.state,
            next
        );
        inner.state = next;
        self.fast.store(next as u8, Ordering::Release);
    }
}

/// The software distributed shared memory of one node.
///
/// One `Dsm` instance exists per simulated node; all of the node's compute
/// threads and its communication thread share it.
pub struct Dsm {
    node: usize,
    nnodes: usize,
    cfg: DsmConfig,
    pub(crate) pool: RawPool,
    pub(crate) pages: Box<[PageMeta]>,
    /// Current home of every page (kept identical on all nodes; updated in
    /// lockstep at barrier departures).
    pub(crate) homes: Box<[AtomicU32]>,
    alloc: Mutex<RegionAllocator>,
    pub(crate) ep: Endpoint,
    pub stats: DsmStats,
    reply_tag: AtomicU64,
    /// Sharded interval bookkeeping, keyed by page id: the DIRTY set
    /// (pending diffs at the next release), the barrier write notices
    /// (superset of dirty — also pages already flushed at lock releases),
    /// and the interval's read observations (pages fetched from remote
    /// homes — the sharer evidence shipped with barrier arrivals). Split
    /// into lock shards so concurrent faulting threads stop serializing
    /// on one mutex; also carries the per-shard merge counters the home
    /// side bumps.
    pub(crate) shards: PageShards,
    /// Monotonic instance id (thread-local predictor cache key).
    instance: u64,
    /// Per-lock: last notice sequence this node has seen.
    lock_seen: Mutex<HashMap<u64, u64>>,
    barrier_seq: AtomicU64,
    pub(crate) server: Mutex<crate::server::ServerState>,
    small: SmallRegistry,
}

impl Dsm {
    /// Create the DSM instance for `ep`'s node. Initially the master
    /// (node 0) is home of every page with `READ_ONLY` state; all other
    /// nodes start `INVALID` (§5.2.3).
    pub fn new(ep: Endpoint, cfg: DsmConfig) -> Self {
        let node = ep.id();
        let nnodes = ep.nodes();
        let npages = cfg.pool_bytes / PAGE_SIZE;
        let init_state = if node == 0 {
            PageState::ReadOnly
        } else {
            PageState::Invalid
        };
        let pages: Box<[PageMeta]> = (0..npages).map(|_| PageMeta::new(init_state)).collect();
        let homes: Box<[AtomicU32]> = (0..npages).map(|_| AtomicU32::new(0)).collect();
        Dsm {
            node,
            nnodes,
            cfg,
            pool: RawPool::new(npages * PAGE_SIZE),
            pages,
            homes,
            alloc: Mutex::new(RegionAllocator::new()),
            ep,
            stats: DsmStats::default(),
            reply_tag: AtomicU64::new(REPLY_TAG_BASE),
            shards: PageShards::new(cfg.page_shards),
            instance: NEXT_DSM_INSTANCE.fetch_add(1, Ordering::Relaxed),
            lock_seen: Mutex::new(HashMap::new()),
            barrier_seq: AtomicU64::new(0),
            server: Mutex::new(crate::server::ServerState::default()),
            small: SmallRegistry::new(),
        }
    }

    pub fn node(&self) -> usize {
        self.node
    }

    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    pub fn small(&self) -> &SmallRegistry {
        &self.small
    }

    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    pub fn home_of(&self, page: PageId) -> usize {
        self.homes[page].load(Ordering::Acquire) as usize
    }

    pub fn page_state(&self, page: PageId) -> PageState {
        PageState::from_u8(self.pages[page].fast.load(Ordering::Acquire))
    }

    pub(crate) fn next_reply_tag(&self) -> u64 {
        self.reply_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// Current barrier sequence number (barriers completed so far).
    pub fn barrier_count(&self) -> u64 {
        self.barrier_seq.load(Ordering::Relaxed)
    }

    // ---- allocation ------------------------------------------------------

    /// Allocate a shared region. Every node must perform the same sequence
    /// of allocations (the cluster layer guarantees this by broadcasting
    /// allocation commands from the master).
    pub fn alloc_region(&self, len: usize) -> Result<RegionHandle, AllocError> {
        self.alloc.lock().alloc(len, self.pool.len())
    }

    /// Allocate a small-data object (message-passing update protocol).
    pub fn alloc_small(&self, len: usize) -> crate::smalldata::SmallHandle {
        self.small.alloc(len)
    }

    pub fn region(&self, id: u32) -> Option<RegionHandle> {
        self.alloc.lock().get(id)
    }

    // ---- typed access (the software page-fault check) --------------------

    #[inline]
    fn check_bounds<T>(&self, h: RegionHandle, byte_off: usize) {
        debug_assert!(
            byte_off + std::mem::size_of::<T>() <= h.len,
            "shared access out of bounds: off {byte_off} size {} region {}",
            std::mem::size_of::<T>(),
            h.len
        );
        debug_assert_eq!(
            (h.offset + byte_off) / PAGE_SIZE,
            (h.offset + byte_off + std::mem::size_of::<T>() - 1) / PAGE_SIZE,
            "scalar access must not straddle a page boundary"
        );
    }

    /// Read a scalar from shared memory, faulting the page in if necessary.
    #[inline]
    pub fn read<T: Copy>(&self, h: RegionHandle, byte_off: usize, clock: &mut VClock) -> T {
        self.check_bounds::<T>(h, byte_off);
        let off = h.offset + byte_off;
        let page = off / PAGE_SIZE;
        if self.pages[page].fast.load(Ordering::Acquire) < PageState::ReadOnly as u8 {
            self.read_fault(page, clock);
        }
        // SAFETY: the page is readable per the page table; bounds checked.
        unsafe { self.pool.read(off) }
    }

    /// Write a scalar to shared memory, faulting for write if necessary.
    ///
    /// Stores hold the page's table entry lock: a sibling thread may
    /// concurrently *flush* the page (lock release), snapshotting its
    /// contents for the diff and downgrading it to READ_ONLY — a store
    /// racing with that snapshot would never reach the home (the
    /// multi-threaded-SDSM release race, the store-side cousin of §5.1's
    /// atomic page update problem). The per-page lock makes the snapshot
    /// and the store mutually exclusive.
    #[inline]
    pub fn write<T: Copy>(&self, h: RegionHandle, byte_off: usize, v: T, clock: &mut VClock) {
        self.check_bounds::<T>(h, byte_off);
        let off = h.offset + byte_off;
        let page = off / PAGE_SIZE;
        loop {
            {
                let inner = self.pages[page].inner.lock();
                if inner.state == PageState::Dirty {
                    // SAFETY: the page is writable per the page table (held
                    // locked); bounds checked.
                    unsafe { self.pool.write(off, v) }
                    return;
                }
            }
            self.write_fault(page, clock);
        }
    }

    /// Bulk-read `out.len()` elements starting at element `first` (of size
    /// `size_of::<T>()`).
    pub fn read_slice<T: Copy>(
        &self,
        h: RegionHandle,
        first: usize,
        out: &mut [T],
        clock: &mut VClock,
    ) {
        if out.is_empty() {
            return;
        }
        let esz = std::mem::size_of::<T>();
        let start = h.offset + first * esz;
        let len = std::mem::size_of_val(out);
        assert!(
            first * esz + len <= h.len,
            "shared slice read out of bounds"
        );
        self.ensure_readable(start, len, clock);
        // SAFETY: all covered pages are readable; bounds checked above.
        unsafe {
            let bytes = std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut u8, len);
            self.pool.read_bytes(start, bytes);
        }
    }

    /// Bulk-write elements starting at element `first`. Applies the same
    /// store-revalidation as [`Dsm::write`], page by page.
    pub fn write_slice<T: Copy>(
        &self,
        h: RegionHandle,
        first: usize,
        src: &[T],
        clock: &mut VClock,
    ) {
        if src.is_empty() {
            return;
        }
        let esz = std::mem::size_of::<T>();
        let start = h.offset + first * esz;
        let len = std::mem::size_of_val(src);
        assert!(
            first * esz + len <= h.len,
            "shared slice write out of bounds"
        );
        // SAFETY (for the block below): the touched page is writable per
        // the page table, whose entry lock is held across the store so a
        // concurrent flush snapshot cannot interleave.
        let bytes = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u8, len) };
        let mut off = start;
        let mut rel = 0usize;
        while rel < len {
            let page = off / PAGE_SIZE;
            let page_end = (page + 1) * PAGE_SIZE;
            let chunk = (page_end - off).min(len - rel);
            loop {
                {
                    let inner = self.pages[page].inner.lock();
                    if inner.state == PageState::Dirty {
                        unsafe { self.pool.write_bytes(off, &bytes[rel..rel + chunk]) };
                        break;
                    }
                }
                self.write_fault(page, clock);
            }
            off += chunk;
            rel += chunk;
        }
    }

    /// Snapshot an entire region's bytes (a barrier-time page checkpoint).
    ///
    /// Goes through the normal coherent read path, so the checkpoint
    /// observes exactly what a serial reader at this point would — call it
    /// at an interval boundary (after [`Dsm::barrier`]) and the snapshot is
    /// a consistent cut the serving layer can re-home a failed job from.
    pub fn checkpoint_region(&self, h: RegionHandle, clock: &mut VClock) -> Vec<u8> {
        let mut out = vec![0u8; h.len];
        self.read_slice::<u8>(h, 0, &mut out, clock);
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.stats
            .checkpoint_bytes
            .fetch_add(h.len as u64, Ordering::Relaxed);
        out
    }

    /// Write a checkpoint taken by [`Dsm::checkpoint_region`] back into the
    /// region (after a re-home, on the replacement cluster).
    pub fn restore_region(&self, h: RegionHandle, data: &[u8], clock: &mut VClock) {
        assert_eq!(
            data.len(),
            h.len,
            "checkpoint length does not match region length"
        );
        self.write_slice::<u8>(h, 0, data, clock);
        self.stats.restores.fetch_add(1, Ordering::Relaxed);
        self.stats
            .restore_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
    }

    /// Fault in every page covering `start .. start+len` for reading.
    ///
    /// With `max_fetch_range > 1` (and a safe update strategy), runs of
    /// contiguous INVALID pages sharing a home are claimed together and
    /// fetched in one `ReqPageRange` round trip instead of one per page —
    /// the bulk-access fault storm a Helmholtz/CG sweep would otherwise
    /// pay per page.
    pub fn ensure_readable(&self, start: usize, len: usize, clock: &mut VClock) {
        let max_range = self.cfg.max_fetch_range;
        if max_range <= 1 || !self.cfg.update_strategy.is_safe() {
            for page in crate::page::pages_covering(start, len) {
                if self.pages[page].fast.load(Ordering::Acquire) < PageState::ReadOnly as u8 {
                    self.read_fault(page, clock);
                }
            }
            return;
        }
        let pages: Vec<PageId> = crate::page::pages_covering(start, len).collect();
        if self.cfg.stride_prefetch && !pages.is_empty() {
            self.note_access(&pages, clock);
        }
        let mut i = 0;
        while i < pages.len() {
            let first = pages[i];
            if self.pages[first].fast.load(Ordering::Acquire) >= PageState::ReadOnly as u8 {
                i += 1;
                continue;
            }
            let home = self.home_of(first);
            if home == self.node {
                // A home copy is never INVALID; the fast flag must have
                // been racing with a migration. Take the ordinary path.
                self.read_fault(first, clock);
                i += 1;
                continue;
            }
            // Claim a run of contiguous INVALID pages with the same home.
            // Claiming marks each TRANSIENT (we own its update); a page
            // that is not INVALID at lock time ends the run.
            let mut claimed = 0usize;
            while i < pages.len() && claimed < max_range {
                let p = pages[i];
                if p != first + claimed || self.home_of(p) != home {
                    break;
                }
                let meta = &self.pages[p];
                let mut inner = meta.inner.lock();
                if inner.state != PageState::Invalid {
                    break;
                }
                meta.set_state(&mut inner, PageState::Transient);
                drop(inner);
                claimed += 1;
                i += 1;
            }
            match claimed {
                0 => {
                    // Readable already, or mid-update by a sibling thread:
                    // read_fault waits it out.
                    self.read_fault(first, clock);
                    i += 1;
                }
                1 => {
                    self.stats.read_faults.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmReadFault, first as u64, clock.now());
                    self.fetch_page(first, clock);
                    self.complete_update(first);
                }
                n => {
                    self.stats
                        .read_faults
                        .fetch_add(n as u64, Ordering::Relaxed);
                    self.fetch_page_range(first, n, clock);
                    for p in first..first + n {
                        self.complete_update(p);
                    }
                }
            }
        }
    }

    /// Feed one bulk access into this thread's stride predictor: credit
    /// prefetch hits, record the leading page, and on a confirmed stride
    /// speculatively fetch the next predicted pages. Issued only on a
    /// *miss* (the leading page was not itself prefetched), so a confirmed
    /// unit-stride stream settles into one demand trip plus one range trip
    /// per window instead of one round trip per page.
    fn note_access(&self, pages: &[PageId], clock: &mut VClock) {
        PREFETCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            let st = match slot.as_mut() {
                Some(st) if st.dsm == self.instance => st,
                _ => {
                    *slot = Some(ThreadPrefetch {
                        dsm: self.instance,
                        pred: StridePredictor::new(
                            self.cfg.prefetch_depth,
                            self.cfg.prefetch_mispredict_budget,
                        ),
                        outstanding: HashSet::new(),
                    });
                    slot.as_mut().expect("just installed")
                }
            };
            let mut leading_hit = false;
            for p in pages {
                if st.outstanding.remove(p) {
                    self.stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                    leading_hit |= *p == pages[0];
                }
            }
            if st.pred.is_disabled() {
                return;
            }
            let before = st.pred.mispredicts();
            let decision = st.pred.record_fault(pages[0]);
            let broke = st.pred.mispredicts() - before;
            if broke > 0 {
                self.stats
                    .prefetch_mispredicts
                    .fetch_add(broke as u64, Ordering::Relaxed);
                st.outstanding.clear();
            }
            if let Prediction::Prefetch { stride, count } = decision {
                if !leading_hit {
                    let issued = self.issue_prefetch(pages[0], stride, count, clock);
                    st.outstanding.extend(issued);
                }
            }
        });
    }

    /// Speculatively fetch up to `count` pages at `access + k·stride`.
    /// Pages that are out of pool, locally homed, or not INVALID are
    /// skipped; the rest are claimed TRANSIENT and fetched in maximal
    /// contiguous same-home runs. Returns the pages actually fetched.
    fn issue_prefetch(
        &self,
        access: PageId,
        stride: isize,
        count: usize,
        clock: &mut VClock,
    ) -> Vec<PageId> {
        let npages = self.pages.len();
        let mut claimed: Vec<PageId> = Vec::new();
        for k in 1..=count.min(self.cfg.max_fetch_range) as isize {
            let p = access as isize + stride * k;
            if p < 0 || p as usize >= npages {
                break;
            }
            let p = p as usize;
            if self.home_of(p) == self.node
                || self.pages[p].fast.load(Ordering::Acquire) != PageState::Invalid as u8
            {
                continue;
            }
            let meta = &self.pages[p];
            let mut inner = meta.inner.lock();
            if inner.state != PageState::Invalid {
                continue;
            }
            meta.set_state(&mut inner, PageState::Transient);
            drop(inner);
            claimed.push(p);
        }
        if claimed.is_empty() {
            return claimed;
        }
        self.stats
            .prefetch_pages
            .fetch_add(claimed.len() as u64, Ordering::Relaxed);
        claimed.sort_unstable();
        let mut i = 0;
        while i < claimed.len() {
            let first = claimed[i];
            let home = self.home_of(first);
            let mut n = 1;
            while i + n < claimed.len()
                && claimed[i + n] == first + n
                && self.home_of(claimed[i + n]) == home
            {
                n += 1;
            }
            self.stats.prefetch_issued.fetch_add(1, Ordering::Relaxed);
            if n == 1 {
                self.fetch_page(first, clock);
                self.complete_update(first);
            } else {
                self.fetch_page_range(first, n, clock);
                for p in first..first + n {
                    self.complete_update(p);
                }
            }
            i += n;
        }
        claimed
    }

    /// Publish a fetched page: the caller owned the TRANSIENT transition;
    /// waiters that piled on (BLOCKED) are woken.
    /// Wake every thread parked on a page condvar. Called by the
    /// communication thread as it exits on fabric shutdown: a parked
    /// compute thread is waiting for a protocol step (atomic page update,
    /// re-home push) that can no longer arrive, and must be released to
    /// observe the shutdown via [`Dsm::check_live`].
    pub fn wake_page_waiters(&self) {
        for meta in self.pages.iter() {
            let _g = meta.inner.lock();
            meta.cv.notify_all();
        }
    }

    /// Fail fast when the fabric has already shut down (fail-stop): any
    /// page wait entered now can never be satisfied.
    fn check_live(&self) {
        if self.ep.fabric().is_shutdown() {
            panic!("dsm page wait after shutdown");
        }
    }

    fn complete_update(&self, page: PageId) {
        let meta = &self.pages[page];
        let mut inner = meta.inner.lock();
        debug_assert!(
            matches!(inner.state, PageState::Transient | PageState::Blocked),
            "fetch holder lost page {page}: {:?}",
            inner.state
        );
        let had_waiters = inner.state == PageState::Blocked;
        meta.set_state(&mut inner, PageState::ReadOnly);
        if had_waiters {
            meta.cv.notify_all();
        }
    }

    /// Fault in every page covering `start .. start+len` for writing.
    pub fn ensure_writable(&self, start: usize, len: usize, clock: &mut VClock) {
        for page in crate::page::pages_covering(start, len) {
            if self.pages[page].fast.load(Ordering::Acquire) != PageState::Dirty as u8 {
                self.write_fault(page, clock);
            }
        }
    }

    // ---- fault handling (§5.2.3 + §5.1) -----------------------------------

    /// The read-fault path of the SIGSEGV handler analogue.
    fn read_fault(&self, page: PageId, clock: &mut VClock) {
        self.stats.read_faults.fetch_add(1, Ordering::Relaxed);
        trace::instant(EventKind::DsmReadFault, page as u64, clock.now());
        let meta = &self.pages[page];
        let mut inner = meta.inner.lock();
        loop {
            match inner.state {
                PageState::ReadOnly | PageState::Dirty => return,
                PageState::Transient => {
                    // Another thread is updating: mark that it has waiters
                    // and sleep — the §5.1 atomic-page-update machinery.
                    self.check_live();
                    meta.set_state(&mut inner, PageState::Blocked);
                    self.stats.update_waits.fetch_add(1, Ordering::Relaxed);
                    meta.cv.wait(&mut inner);
                }
                PageState::Blocked => {
                    self.check_live();
                    self.stats.update_waits.fetch_add(1, Ordering::Relaxed);
                    meta.cv.wait(&mut inner);
                }
                PageState::Invalid => {
                    meta.set_state(&mut inner, PageState::Transient);
                    drop(inner);
                    self.fetch_page(page, clock);
                    inner = meta.inner.lock();
                    // Only the fetch holder may complete the update; other
                    // threads can at most pile on (TRANSIENT -> BLOCKED).
                    debug_assert!(
                        matches!(inner.state, PageState::Transient | PageState::Blocked),
                        "fetch holder lost page {page}: {:?}",
                        inner.state
                    );
                    let had_waiters = inner.state == PageState::Blocked;
                    meta.set_state(&mut inner, PageState::ReadOnly);
                    if had_waiters {
                        meta.cv.notify_all();
                    }
                    return;
                }
            }
        }
    }

    /// The write-fault path: ensures a valid page, makes a twin (unless we
    /// are the home — homes merge diffs directly into their copy and need
    /// no twin), and marks the page DIRTY with a write notice.
    fn write_fault(&self, page: PageId, clock: &mut VClock) {
        self.stats.write_faults.fetch_add(1, Ordering::Relaxed);
        trace::instant(EventKind::DsmWriteFault, page as u64, clock.now());
        let meta = &self.pages[page];
        let mut inner = meta.inner.lock();
        loop {
            match inner.state {
                PageState::Dirty => return,
                PageState::ReadOnly => {
                    if self.home_of(page) != self.node {
                        let mut twin = PageBuf::take();
                        // SAFETY: page is valid (ReadOnly) and we hold the
                        // page lock; concurrent word writes by the
                        // application would be its own race either way.
                        unsafe { self.pool.copy_page_out(page, &mut twin) };
                        inner.twin = Some(twin);
                        self.stats.twins_created.fetch_add(1, Ordering::Relaxed);
                        trace::instant(EventKind::DsmTwin, page as u64, clock.now());
                    }
                    meta.set_state(&mut inner, PageState::Dirty);
                    self.shards.mark_written(page);
                    return;
                }
                PageState::Transient => {
                    self.check_live();
                    meta.set_state(&mut inner, PageState::Blocked);
                    self.stats.update_waits.fetch_add(1, Ordering::Relaxed);
                    meta.cv.wait(&mut inner);
                }
                PageState::Blocked => {
                    self.check_live();
                    self.stats.update_waits.fetch_add(1, Ordering::Relaxed);
                    meta.cv.wait(&mut inner);
                }
                PageState::Invalid => {
                    meta.set_state(&mut inner, PageState::Transient);
                    drop(inner);
                    self.fetch_page(page, clock);
                    inner = meta.inner.lock();
                    debug_assert!(
                        matches!(inner.state, PageState::Transient | PageState::Blocked),
                        "fetch holder lost page {page}: {:?}",
                        inner.state
                    );
                    let had_waiters = inner.state == PageState::Blocked;
                    meta.set_state(&mut inner, PageState::ReadOnly);
                    if had_waiters {
                        meta.cv.notify_all();
                    }
                    // Loop continues: the ReadOnly arm upgrades to Dirty.
                }
            }
        }
    }

    /// Fetch the up-to-date page from its home and install it through the
    /// "system path" while application threads are held off by the
    /// TRANSIENT state. Caller owns the TRANSIENT transition.
    fn fetch_page(&self, page: PageId, clock: &mut VClock) {
        trace::begin_arg(EventKind::DsmFetch, page as u64, clock.now());
        // Caller holds the TRANSIENT transition; concurrent faulters may
        // have piled on (BLOCKED) but cannot advance the page further.
        debug_assert!(
            matches!(
                PageState::from_u8(self.pages[page].fast.load(Ordering::Acquire)),
                PageState::Transient | PageState::Blocked
            ),
            "fetch without owning the update for page {page}"
        );
        let home = self.home_of(page);
        assert_ne!(
            home, self.node,
            "page {page} INVALID on its own home node {}",
            self.node
        );
        let tag = self.next_reply_tag();
        let req = DsmMsg::ReqPage {
            page,
            requester: self.node,
            reply_tag: tag,
        };
        self.ep.send(home, MsgClass::Dsm, 0, req.encode(), clock);
        let pkt = self
            .ep
            .recv(MsgClass::Ctl, Match::tagged(tag), clock)
            .expect("fetch reply after shutdown");
        let DsmReply::PageData { page: rp, data } = DsmReply::decode(&pkt.payload) else {
            unreachable!("unexpected reply to page request");
        };
        assert_eq!(rp, page);
        self.stats.page_fetches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .fetch_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        // A fetched copy makes this node a sharer of the page; the read
        // set rides the next barrier arrival into the protocol table.
        self.shards.mark_read(page);
        clock.charge_comm(self.cfg.update_strategy.per_update_overhead());
        if self.cfg.update_strategy.is_safe() {
            // SAFETY: we hold the TRANSIENT transition for this page.
            unsafe { self.pool.copy_page_in(page, &data) };
        } else {
            // NaiveUnsafe: simulate a conventional single-threaded SDSM
            // that makes the page accessible *before* the copy finishes —
            // other threads' fast paths will read a torn page. The store
            // deliberately bypasses `set_state` (and so the
            // `can_transition` discipline): publishing READ_ONLY out of
            // the fast flag while `inner.state` is still TRANSIENT *is*
            // the modelled bug.
            self.pages[page]
                .fast
                .store(PageState::ReadOnly as u8, Ordering::Release);
            let start = page * PAGE_SIZE;
            for (i, chunk) in data.chunks(256).enumerate() {
                // SAFETY: bounds are within the page.
                unsafe { self.pool.write_bytes(start + i * 256, chunk) };
                std::thread::yield_now();
            }
        }
        trace::end(EventKind::DsmFetch, clock.now());
    }

    /// Fetch `count` contiguous pages homed on one node in a single round
    /// trip. Caller owns the TRANSIENT transition of every page in the
    /// range. Only used with safe update strategies (the torn-page model
    /// of `NaiveUnsafe` stays a strictly per-page affair).
    fn fetch_page_range(&self, first: PageId, count: usize, clock: &mut VClock) {
        trace::begin_arg(EventKind::DsmFetch, first as u64, clock.now());
        trace::instant(EventKind::DsmRangeFetch, count as u64, clock.now());
        let home = self.home_of(first);
        debug_assert_ne!(home, self.node);
        let tag = self.next_reply_tag();
        let req = DsmMsg::ReqPageRange {
            first,
            count: count as u32,
            requester: self.node,
            reply_tag: tag,
        };
        self.ep.send(home, MsgClass::Dsm, 0, req.encode(), clock);
        let pkt = self
            .ep
            .recv(MsgClass::Ctl, Match::tagged(tag), clock)
            .expect("range fetch reply after shutdown");
        let DsmReply::PageRangeData { first: rf, data } = DsmReply::decode(&pkt.payload) else {
            unreachable!("unexpected reply to page range request");
        };
        assert_eq!(rf, first);
        assert_eq!(data.len(), count * PAGE_SIZE, "short page range reply");
        self.stats
            .page_fetches
            .fetch_add(count as u64, Ordering::Relaxed);
        self.stats.range_fetches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .range_fetch_pages
            .fetch_add(count as u64, Ordering::Relaxed);
        self.stats
            .fetch_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        for p in first..first + count {
            self.shards.mark_read(p);
        }
        let per_page = self.cfg.update_strategy.per_update_overhead();
        clock.charge_comm(VTime::from_nanos(per_page.as_nanos() * count as u64));
        for k in 0..count {
            // SAFETY: we hold the TRANSIENT transition for every page in
            // the range; the strategy is safe, so the system path installs
            // the copy before any reader gets through.
            unsafe {
                self.pool
                    .copy_page_in(first + k, &data[k * PAGE_SIZE..(k + 1) * PAGE_SIZE])
            };
        }
        trace::end(EventKind::DsmFetch, clock.now());
    }

    // ---- release operations ----------------------------------------------

    /// Flush all dirty pages: compute diffs against twins, group them by
    /// home, ship one `DiffBatch` per destination node, wait for one ack
    /// per batch, downgrade to READ_ONLY. Returns the list of flushed
    /// pages (the release's write notices).
    pub fn flush(&self, clock: &mut VClock) -> Vec<PageId> {
        trace::begin(EventKind::DsmFlush, clock.now());
        // The sharded drain returns pages sorted, so fabric-level send
        // order is independent of shard layout and hash iteration.
        let dirty: Vec<PageId> = self.shards.drain_dirty();
        let mut by_home: BTreeMap<usize, (Vec<PageId>, Vec<Diff>)> = BTreeMap::new();
        for &page in &dirty {
            let meta = &self.pages[page];
            let mut inner = meta.inner.lock();
            debug_assert_eq!(inner.state, PageState::Dirty);
            let home = self.home_of(page);
            if home != self.node {
                let twin = inner
                    .twin
                    .take()
                    .expect("dirty non-home page must have a twin");
                let mut cur = PageBuf::take();
                // SAFETY: page is valid; we hold the page lock.
                unsafe { self.pool.copy_page_out(page, &mut cur) };
                let diff = Diff::create(&twin, &cur);
                meta.set_state(&mut inner, PageState::ReadOnly);
                drop(inner);
                if !diff.is_empty() {
                    let (pages, diffs) = by_home.entry(home).or_default();
                    pages.push(page);
                    diffs.push(diff);
                }
            } else {
                // Home copy already contains our writes.
                meta.set_state(&mut inner, PageState::ReadOnly);
            }
        }
        // Wait for all diffs to be merged before the release completes
        // (ensures barrier arrival implies diff visibility at homes).
        let pending_acks = self.ship_diffs(by_home, clock);
        self.await_diff_acks(&pending_acks, clock);
        trace::end(EventKind::DsmFlush, clock.now());
        dirty
    }

    /// Ship grouped diffs: one `DiffBatch` message (answered by one ack)
    /// per destination home, or the per-page `Diff` protocol when batching
    /// is disabled. Returns the reply tags to wait on.
    ///
    /// Counters are bumped only after the fabric accepts a message, so a
    /// fail-stopped link cannot over-count `diffs_sent`.
    fn ship_diffs(
        &self,
        by_home: BTreeMap<usize, (Vec<PageId>, Vec<Diff>)>,
        clock: &mut VClock,
    ) -> Vec<u64> {
        let mut pending = Vec::new();
        for (home, (pages, diffs)) in by_home {
            let payload: u64 = diffs.iter().map(|d| d.payload_bytes() as u64).sum();
            if self.cfg.batch_diffs {
                let tag = self.next_reply_tag();
                let npages = pages.len() as u64;
                for d in &diffs {
                    trace::instant(EventKind::DsmDiff, d.payload_bytes() as u64, clock.now());
                }
                let msg = DsmMsg::DiffBatch {
                    requester: self.node,
                    reply_tag: tag,
                    pages,
                    diffs,
                };
                let wire = msg.encode();
                let wire_len = wire.len() as u64;
                if let Err(e) = self.ep.send_checked(home, MsgClass::Dsm, 0, wire, clock) {
                    panic!("{e}");
                }
                self.stats.diffs_sent.fetch_add(npages, Ordering::Relaxed);
                self.stats.diff_batches.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .batched_pages
                    .fetch_add(npages, Ordering::Relaxed);
                self.stats.diff_bytes.fetch_add(wire_len, Ordering::Relaxed);
                self.stats
                    .diff_payload_bytes
                    .fetch_add(payload, Ordering::Relaxed);
                trace::instant(EventKind::DsmDiffBatch, npages, clock.now());
                pending.push(tag);
            } else {
                for (page, diff) in pages.into_iter().zip(diffs) {
                    let tag = self.next_reply_tag();
                    let dp = diff.payload_bytes() as u64;
                    let msg = DsmMsg::Diff {
                        page,
                        requester: self.node,
                        reply_tag: tag,
                        diff,
                    };
                    let wire = msg.encode();
                    let wire_len = wire.len() as u64;
                    if let Err(e) = self.ep.send_checked(home, MsgClass::Dsm, 0, wire, clock) {
                        panic!("{e}");
                    }
                    self.stats.diffs_sent.fetch_add(1, Ordering::Relaxed);
                    self.stats.diff_bytes.fetch_add(wire_len, Ordering::Relaxed);
                    self.stats
                        .diff_payload_bytes
                        .fetch_add(dp, Ordering::Relaxed);
                    trace::instant(EventKind::DsmDiff, dp, clock.now());
                    pending.push(tag);
                }
            }
        }
        pending
    }

    fn await_diff_acks(&self, tags: &[u64], clock: &mut VClock) {
        for &tag in tags {
            let _ = self
                .ep
                .recv(MsgClass::Ctl, Match::tagged(tag), clock)
                .expect("diff ack after shutdown");
        }
    }

    // ---- barrier (§5.2.2) --------------------------------------------------

    /// Inter-node barrier with HLRC release semantics: flush, send write
    /// notices piggybacked on the arrival message, apply the departure's
    /// invalidations and home migrations.
    ///
    /// Exactly one thread per node may call this at a time (the cluster
    /// layer funnels through a node representative).
    pub fn barrier(&self, clock: &mut VClock) {
        trace::begin(EventKind::DsmBarrier, clock.now());
        let seq = self.barrier_seq.fetch_add(1, Ordering::SeqCst);
        self.flush(clock);
        let notices = self.shards.drain_notices();
        let reads = self.shards.drain_reads();
        let tag = self.next_reply_tag();
        let arrive = DsmMsg::BarrierArrive {
            seq,
            node: self.node,
            reply_tag: tag,
            notices,
            reads,
        };
        // Hierarchical mode hands the arrival to our own communication
        // thread, which aggregates its subtree and sends one `BarrierUp`
        // toward the root; flat mode messages the master directly.
        let master = if self.cfg.hierarchical_barrier {
            self.node
        } else {
            0
        };
        self.ep
            .send(master, MsgClass::Dsm, 0, arrive.encode(), clock);
        let pkt = self
            .ep
            .recv(MsgClass::Ctl, Match::tagged(tag), clock)
            .expect("barrier depart after shutdown");
        let DsmReply::BarrierDepart { seq: dseq, entries } = DsmReply::decode(&pkt.payload) else {
            unreachable!("unexpected reply to barrier arrive");
        };
        assert_eq!(dseq, seq, "barrier sequence mismatch");
        self.apply_depart(seq, &entries, clock);
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
        trace::end(EventKind::DsmBarrier, clock.now());
    }

    /// Apply a barrier departure: update the home table, invalidate copies
    /// made stale by other nodes' writes, park pages awaiting a migration
    /// push, and push merged pages we no longer host.
    fn apply_depart(&self, seq: u64, entries: &[crate::msg::DepartEntry], clock: &mut VClock) {
        let mut migrated_any = false;
        for e in entries {
            self.homes[e.page].store(e.new_home as u32, Ordering::Release);
            if e.new_home != e.old_home {
                migrated_any = true;
                if e.new_home == self.node {
                    self.stats.home_migrations.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmMigrate, e.page as u64, clock.now());
                }
            }
            let meta = &self.pages[e.page];
            if e.update {
                // Update protocol: the home (never migrated on an update
                // entry) pushes its merged copy to every sharer; sharers
                // park on BLOCKED for the push; any other cached copy is
                // stale and invalidates as usual. A push and an invalidate
                // + refetch install the same merged bytes, so results are
                // independent of how accurate the sharer set was.
                debug_assert_eq!(e.new_home, e.old_home, "update entry migrated");
                if self.node == e.new_home {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    let _inner = meta.inner.lock();
                    // SAFETY: we are home; the page is valid here.
                    unsafe { self.pool.copy_page_out(e.page, &mut buf) };
                    drop(_inner);
                    let data = parade_net::Bytes::from(buf);
                    for &s in &e.sharers {
                        debug_assert_ne!(s, self.node, "home listed as its own sharer");
                        let msg = DsmMsg::PagePush {
                            page: e.page,
                            barrier_seq: seq,
                            data: data.clone(),
                        };
                        self.ep.send(s, MsgClass::Dsm, 0, msg.encode(), clock);
                        self.stats.pushes_sent.fetch_add(1, Ordering::Relaxed);
                        self.stats.update_pushes.fetch_add(1, Ordering::Relaxed);
                        trace::instant(EventKind::DsmPush, e.page as u64, clock.now());
                    }
                } else if e.sharers.contains(&self.node) {
                    let mut inner = meta.inner.lock();
                    if inner.pushed_seq != seq + 1 {
                        // Park until the home's push lands. Application
                        // threads are held at the barrier, so the page
                        // cannot be mid-update here; a historical sharer
                        // whose copy was since invalidated simply regains
                        // a valid copy from the push. BLOCKED is legal too:
                        // the previous interval's park whose push has not
                        // landed yet (no local thread touched the page, so
                        // nobody blocked and the barrier completed) — the
                        // park simply rolls forward to this interval's push.
                        debug_assert!(
                            matches!(
                                inner.state,
                                PageState::Invalid | PageState::ReadOnly | PageState::Blocked
                            ),
                            "update-push target page {} busy at barrier: {:?}",
                            e.page,
                            inner.state
                        );
                        inner.awaiting_push = true;
                        inner.awaiting_seq = seq;
                        meta.set_state(&mut inner, PageState::Blocked);
                    }
                } else if meta.fast.load(Ordering::Acquire) != PageState::Invalid as u8 {
                    let mut inner = meta.inner.lock();
                    if inner.state.readable() {
                        inner.twin = None;
                        meta.set_state(&mut inner, PageState::Invalid);
                        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                        trace::instant(EventKind::DsmInvalidate, e.page as u64, clock.now());
                    }
                }
                continue;
            }
            if self.node == e.new_home {
                if e.new_home != e.old_home {
                    let mut inner = meta.inner.lock();
                    // Single-writer migration: we wrote every diff, so a
                    // readable copy is the merged copy. Multi-writer: even a
                    // readable copy misses the other writers' words and must
                    // wait for the old home's merged push.
                    let complete = !e.multi_writer && inner.state.readable();
                    if inner.pushed_seq != seq + 1 && !complete {
                        // Park until the old home pushes the merged content.
                        // Application threads are held at the barrier, so
                        // the page cannot be mid-update or carry unflushed
                        // writes here.
                        debug_assert!(
                            matches!(inner.state, PageState::Invalid | PageState::ReadOnly),
                            "migration target page {} busy at barrier: {:?}",
                            e.page,
                            inner.state
                        );
                        inner.awaiting_push = true;
                        inner.awaiting_seq = seq;
                        meta.set_state(&mut inner, PageState::Blocked);
                        if !e.multi_writer {
                            // We were the interval's only writer yet our
                            // copy is invalid: a lock-grant write notice
                            // named a page we ourselves dirtied (false
                            // sharing), shipping the diff and invalidating
                            // our copy mid-interval. The old home still
                            // holds the merged bytes — ask it to push them;
                            // it has no way to know we need them.
                            drop(inner);
                            let msg = DsmMsg::PushReq {
                                page: e.page,
                                barrier_seq: seq,
                                requester: self.node,
                            };
                            self.ep
                                .send(e.old_home, MsgClass::Dsm, 0, msg.encode(), clock);
                        }
                    }
                }
                // Otherwise our copy is complete (single writer with a
                // readable copy, or the push already arrived) — nothing
                // to do.
            } else if self.node == e.old_home {
                // The old home holds the fully merged copy — still valid.
                if e.multi_writer && e.new_home != e.old_home {
                    // Push the merged page to the new home.
                    let mut buf = vec![0u8; PAGE_SIZE];
                    let _inner = meta.inner.lock();
                    // SAFETY: we are (old) home; the page is valid here.
                    unsafe { self.pool.copy_page_out(e.page, &mut buf) };
                    drop(_inner);
                    let msg = DsmMsg::PagePush {
                        page: e.page,
                        barrier_seq: seq,
                        data: parade_net::Bytes::from(buf),
                    };
                    self.ep
                        .send(e.new_home, MsgClass::Dsm, 0, msg.encode(), clock);
                    self.stats.pushes_sent.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmPush, e.page as u64, clock.now());
                }
            } else {
                // Someone else wrote the page and we are not its (old or
                // new) home: our copy, if any, is stale. The common case —
                // we never cached the page — takes no lock (one atomic
                // load), which keeps departure application cheap on large
                // write sets (real HLRC likewise only mprotects resident
                // stale copies).
                if meta.fast.load(Ordering::Acquire) != PageState::Invalid as u8 {
                    let mut inner = meta.inner.lock();
                    if inner.state.readable() {
                        inner.twin = None;
                        meta.set_state(&mut inner, PageState::Invalid);
                        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                        trace::instant(EventKind::DsmInvalidate, e.page as u64, clock.now());
                    }
                }
            }
        }
        if migrated_any {
            // Wake our communication thread so it re-examines deferred
            // requests for pages that just became ours.
            self.ep
                .send(self.node, MsgClass::Dsm, 0, DsmMsg::Nudge.encode(), clock);
        }
    }

    // ---- distributed locks (baseline SDSM synchronization, §2.2/6.1) ------

    /// Manager node of a lock.
    pub fn lock_manager(&self, lock: u64) -> usize {
        (lock % self.nnodes as u64) as usize
    }

    /// Acquire a distributed lock; applies the write notices piggybacked on
    /// the grant (lazy release consistency on the lock chain).
    pub fn lock_acquire(&self, lock: u64, clock: &mut VClock) {
        self.stats.lock_acquires.fetch_add(1, Ordering::Relaxed);
        trace::begin_arg(EventKind::DsmLock, lock, clock.now());
        let mgr = self.lock_manager(lock);
        let last_seen = self.lock_seen.lock().get(&lock).copied().unwrap_or(0);
        let polling = matches!(self.cfg.lock_kind, LockKind::Polling { .. });
        loop {
            let tag = self.next_reply_tag();
            let msg = DsmMsg::LockAcq {
                lock,
                node: self.node,
                reply_tag: tag,
                last_seen,
                polling,
            };
            self.ep.send(mgr, MsgClass::Dsm, 0, msg.encode(), clock);
            let pkt = self
                .ep
                .recv(MsgClass::Ctl, Match::tagged(tag), clock)
                .expect("lock grant after shutdown");
            match DsmReply::decode(&pkt.payload) {
                DsmReply::LockGrant { cur_seq, notices } => {
                    self.apply_lock_notices(lock, cur_seq, &notices, clock);
                    trace::end(EventKind::DsmLock, clock.now());
                    return;
                }
                DsmReply::LockBusy => {
                    self.stats.lock_polls.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmLockPoll, lock, clock.now());
                    if let LockKind::Polling { interval } = self.cfg.lock_kind {
                        clock.charge_comm(interval);
                    }
                    // retry
                }
                other => unreachable!("unexpected lock reply {other:?}"),
            }
        }
    }

    /// Release a distributed lock: flush modified pages (diffs to homes)
    /// and hand the accumulated write notices to the manager.
    pub fn lock_release(&self, lock: u64, clock: &mut VClock) {
        let flushed = self.flush(clock);
        let mgr = self.lock_manager(lock);
        let msg = DsmMsg::LockRel {
            lock,
            node: self.node,
            notices: flushed,
        };
        self.ep.send(mgr, MsgClass::Dsm, 0, msg.encode(), clock);
    }

    fn apply_lock_notices(&self, lock: u64, cur_seq: u64, notices: &[PageId], clock: &mut VClock) {
        self.lock_seen.lock().insert(lock, cur_seq);
        self.invalidate_pages(notices, clock);
    }

    /// Apply write notices outside the lock protocol: invalidate cached
    /// copies of `pages` so the next access refetches from the home. This
    /// is the acquire half of any happens-before edge carried by a channel
    /// other than a lock — the task scheduler routes dependency and
    /// `target` completion notices through here.
    pub fn invalidate_pages(&self, pages: &[PageId], clock: &mut VClock) {
        let mut by_home: BTreeMap<usize, (Vec<PageId>, Vec<Diff>)> = BTreeMap::new();
        for &page in pages {
            if self.home_of(page) == self.node {
                continue; // home copies have all diffs merged
            }
            let meta = &self.pages[page];
            let mut inner = meta.inner.lock();
            match inner.state {
                PageState::ReadOnly => {
                    inner.twin = None;
                    meta.set_state(&mut inner, PageState::Invalid);
                    self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmInvalidate, page as u64, clock.now());
                }
                PageState::Dirty => {
                    // We hold un-released local writes on a page another
                    // node modified (page-granularity false sharing on a
                    // lazily-consistent page). Ship our diff to the home
                    // first so the writes survive, then invalidate; the
                    // next access refetches the merged copy.
                    let twin = inner
                        .twin
                        .take()
                        .expect("dirty non-home page must have a twin");
                    let mut cur = PageBuf::take();
                    // SAFETY: page is valid; we hold the page lock.
                    unsafe { self.pool.copy_page_out(page, &mut cur) };
                    let diff = Diff::create(&twin, &cur);
                    self.shards.unmark_dirty(page);
                    meta.set_state(&mut inner, PageState::Invalid);
                    self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                    trace::instant(EventKind::DsmInvalidate, page as u64, clock.now());
                    drop(inner);
                    if !diff.is_empty() {
                        let (pages, diffs) = by_home.entry(self.home_of(page)).or_default();
                        pages.push(page);
                        diffs.push(diff);
                    }
                }
                // A fetch in flight returns the home copy, which already
                // includes the releaser's diffs (they were acked before the
                // release notice was sent).
                PageState::Transient | PageState::Blocked | PageState::Invalid => {}
            }
        }
        let pending_acks = self.ship_diffs(by_home, clock);
        self.await_diff_acks(&pending_acks, clock);
    }
}

#[doc(hidden)]
impl Dsm {
    #[allow(dead_code)]
    fn _assert_send_sync()
    where
        Dsm: Send + Sync,
    {
    }
}
