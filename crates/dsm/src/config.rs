//! DSM configuration: protocol variants and the knobs that realize the
//! paper's experimental configurations.

use parade_net::VTime;

/// Home placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// ParADE's variant: at barrier time a page's home migrates to its
    /// single writer; with multiple writers the current home keeps the page
    /// if it wrote, otherwise the writer with the smallest node id wins
    /// (§5.2.2).
    Migratory,
    /// Conventional HLRC: homes are fixed at first touch (master node), as
    /// in the KDSM baseline.
    Fixed,
}

/// Distributed lock implementation (baseline SDSM synchronization path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Queueing lock at the manager: requests block at the manager and are
    /// granted FIFO on release.
    Queued,
    /// Busy-wait polling lock: the requester re-polls the manager until
    /// granted. Reproduces the pathological 2-node `single` result the
    /// paper observed with KDSM (Figure 7: "busy waiting to get the lock").
    Polling {
        /// Virtual time between polls.
        interval: VTime,
    },
}

/// Strategy for solving the atomic page update problem (§5.1).
///
/// In a multi-threaded SDSM, making a page writable in order to install a
/// fetched copy also lets *other* application threads through — they can
/// read a half-updated page. The paper describes four working solutions
/// (all create a second, system-only access path to the physical page) and
/// reports they perform comparably on Linux. `NaiveUnsafe` models the
/// broken single-threaded-era behaviour for demonstration and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategy {
    /// `mmap()` a file twice: application view write-protected, system view
    /// writable (the conventional method; poor on AIX per the paper).
    MmapFile,
    /// System V `shmget`/`shmat` double attachment.
    SysvShm,
    /// The authors' new `mdup()` system call: duplicate page-table entries
    /// for an anonymous region.
    Mdup,
    /// Fork a child sharing the memory; the child provides the second path.
    ForkChild,
    /// No protection during the update: other threads may observe a torn
    /// page (the bug the above strategies fix).
    NaiveUnsafe,
}

impl UpdateStrategy {
    /// Extra virtual time charged per page update, modelling each method's
    /// bookkeeping on the paper's Linux cluster (they are comparable; the
    /// differences are small constants).
    pub fn per_update_overhead(self) -> VTime {
        match self {
            UpdateStrategy::MmapFile => VTime::from_nanos(2_000),
            UpdateStrategy::SysvShm => VTime::from_nanos(2_200),
            UpdateStrategy::Mdup => VTime::from_nanos(1_400),
            UpdateStrategy::ForkChild => VTime::from_nanos(2_800),
            UpdateStrategy::NaiveUnsafe => VTime::from_nanos(600),
        }
    }

    pub fn is_safe(self) -> bool {
        !matches!(self, UpdateStrategy::NaiveUnsafe)
    }

    pub const ALL_SAFE: [UpdateStrategy; 4] = [
        UpdateStrategy::MmapFile,
        UpdateStrategy::SysvShm,
        UpdateStrategy::Mdup,
        UpdateStrategy::ForkChild,
    ];
}

/// Per-page protocol selection policy: which coherence action a barrier
/// departure prescribes for a written page's cached copies.
///
/// The paper fixes the update/invalidate split at a 256 B size threshold
/// (`small_threshold`). `Adaptive` makes that split dynamic per page: the
/// barrier root tracks each page's writer/reader history in virtual time
/// and flips pages between the invalidate protocol (HLRC write notices)
/// and an update protocol (the home broadcasts the merged page to its
/// sharer set, which parks on `BLOCKED` instead of refaulting). Decisions
/// depend only on that history, never on real-time schedules, so results
/// stay bit-identical across modes — the update push and the invalidate
/// refetch install the same merged bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoSelect {
    /// History-driven per-page flipping (the hot-path default): a page
    /// with a single writer and ≥ 2 observed sharers goes update; every
    /// 4th update decision is a probation invalidate that re-measures the
    /// sharer set, so pages whose readership evaporates fall back.
    Adaptive,
    /// Every written page invalidates its cached copies (classic HLRC —
    /// the exact pre-adaptive behaviour, kept as a measurable baseline).
    AllInvalidate,
    /// Every written page is pushed to its ever-growing sharer set (pure
    /// update protocol — degrades on migratory workloads, kept as the
    /// other measurable baseline).
    AllUpdate,
}

/// Cost model of the per-node communication thread.
///
/// `service_penalty` is the scheduling delay before the communication
/// thread can service a request — the knob behind the paper's three
/// execution configurations: with a dedicated CPU (1Thread-2CPU) the
/// penalty is nil; when the communication thread competes with computation
/// for a single CPU (1Thread-1CPU) every remote request eats a scheduling
/// delay, which is why that configuration degrades as node count grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCosts {
    /// Scheduling delay before servicing each request.
    pub service_penalty: VTime,
    /// Fixed CPU cost of decoding + handling one message.
    pub base: VTime,
    /// Per-byte CPU cost of copying payload (page copies, diff applies).
    pub per_byte_ns: f64,
}

impl CommCosts {
    pub fn dedicated_cpu() -> Self {
        CommCosts {
            service_penalty: VTime::ZERO,
            base: VTime::from_nanos(1_000),
            per_byte_ns: 3.3,
        }
    }

    pub fn shared_cpu_busy() -> Self {
        // One CPU runs both the computation and the communication thread:
        // a request typically waits out a chunk of the computation thread's
        // scheduling quantum before the communication thread runs.
        CommCosts {
            service_penalty: VTime::from_micros(500),
            base: VTime::from_nanos(1_000),
            per_byte_ns: 3.3,
        }
    }

    pub fn shared_cpu_light() -> Self {
        // Two compute threads + communication thread on two CPUs: the
        // scheduler usually finds a CPU quickly (I/O-boosted wakeup).
        CommCosts {
            service_penalty: VTime::from_micros(30),
            base: VTime::from_nanos(1_000),
            per_byte_ns: 3.3,
        }
    }

    pub fn handling(self, payload_bytes: usize) -> VTime {
        self.base + VTime::from_nanos((self.per_byte_ns * payload_bytes as f64).round() as u64)
    }
}

/// Full DSM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsmConfig {
    /// Shared pool size per node (virtual; pages are committed lazily by
    /// the OS).
    pub pool_bytes: usize,
    pub home_policy: HomePolicy,
    pub lock_kind: LockKind,
    pub update_strategy: UpdateStrategy,
    pub comm: CommCosts,
    /// Data structures at or below this size use the message-passing
    /// update protocol instead of HLRC (§5.2.1; 256 bytes on the paper's
    /// cluster).
    pub small_threshold: usize,
    /// Group the diffs of a release by home and ship one `DiffBatch` per
    /// destination with a single ack (the HLRC few-messages argument,
    /// §5.2). Off reverts to one `Diff` message + ack per dirty page —
    /// kept as a measurable baseline for the release-path benchmarks.
    pub batch_diffs: bool,
    /// Upper bound on pages coalesced into one `ReqPageRange` fetch when a
    /// bulk access faults a run of contiguous pages with a common home
    /// (Helmholtz/CG fault storms). `<= 1` disables coalescing; range
    /// fetches also require a safe [`UpdateStrategy`].
    pub max_fetch_range: usize,
    /// Aggregate barrier arrivals up a binomial tree of communication
    /// threads (root = node 0) instead of every node messaging the master
    /// directly. The critical path shrinks from N serial services at node 0
    /// to ⌈log₂N⌉ hops; departures still fan out from the root so the
    /// master-last release ordering is preserved. Off reverts to the flat
    /// all-to-master barrier (kept as a measurable baseline).
    pub hierarchical_barrier: bool,
    /// Number of lock shards the per-node page bookkeeping (dirty set,
    /// interval write/read notices) is split into, keyed by page id.
    /// Rounded up to a power of two; `1` reverts to the single-lock path.
    pub page_shards: usize,
    /// Feed read-fault addresses to a per-thread stride predictor and
    /// speculatively fetch ahead of the fault stream (bounded by
    /// `max_fetch_range` and `prefetch_mispredict_budget`). Requires a
    /// safe [`UpdateStrategy`], like range coalescing.
    pub stride_prefetch: bool,
    /// Pages fetched ahead per confirmed prediction (further capped by
    /// `max_fetch_range`).
    pub prefetch_depth: usize,
    /// Consecutive-fault mispredictions tolerated before a thread's
    /// predictor is disabled for the rest of its life (accuracy guard).
    pub prefetch_mispredict_budget: u32,
    /// Per-page invalidate/update protocol selection (see [`ProtoSelect`]).
    pub proto_select: ProtoSelect,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            pool_bytes: 64 << 20,
            home_policy: HomePolicy::Migratory,
            lock_kind: LockKind::Queued,
            update_strategy: UpdateStrategy::MmapFile,
            comm: CommCosts::dedicated_cpu(),
            small_threshold: 256,
            batch_diffs: true,
            max_fetch_range: 16,
            hierarchical_barrier: true,
            page_shards: 16,
            stride_prefetch: true,
            prefetch_depth: 4,
            prefetch_mispredict_budget: 4,
            proto_select: ProtoSelect::Adaptive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DsmConfig::default();
        assert_eq!(c.small_threshold, 256);
        assert_eq!(c.home_policy, HomePolicy::Migratory);
        assert!(c.update_strategy.is_safe());
    }

    #[test]
    fn safe_strategies_cost_comparably() {
        // Paper: "all the methods achieve comparable performance".
        let costs: Vec<u64> = UpdateStrategy::ALL_SAFE
            .iter()
            .map(|s| s.per_update_overhead().as_nanos())
            .collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        assert!(max <= 2 * min, "strategies should be within 2x: {costs:?}");
    }

    #[test]
    fn comm_cost_presets_order() {
        let busy = CommCosts::shared_cpu_busy();
        let light = CommCosts::shared_cpu_light();
        let dedicated = CommCosts::dedicated_cpu();
        assert!(busy.service_penalty > light.service_penalty);
        assert!(light.service_penalty > dedicated.service_penalty);
        assert!(busy.handling(4096) > busy.handling(16));
    }
}
