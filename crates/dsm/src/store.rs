//! The node-local shared memory pool and region allocation.
//!
//! Every node holds a full-size local copy of the shared address space —
//! the analogue of the per-process virtual mapping of a real page-based
//! SDSM. Whether a given page's bytes are *meaningful* on a node is decided
//! by the page table, not by the pool.

use std::cell::UnsafeCell;

use crate::page::{PageId, PAGE_SIZE};

/// Raw byte pool with interior mutability.
///
/// # Safety contract
///
/// The pool itself performs no synchronization. The DSM protocol layer
/// guarantees that:
///
/// * a page's bytes are only bulk-replaced (fetch, push, diff apply) while
///   its page-table entry is `TRANSIENT`/owned by the updater, with readers
///   held off via the table, and
/// * concurrent word-level writes to the *same* location only happen if the
///   application itself races — exactly the situation of a real SDSM, where
///   such races are application bugs.
///
/// Reads/writes use raw-pointer `read_volatile`/`write_volatile` on small
/// scalars so racing accesses (which the simulated platform permits) do not
/// get miscompiled into anything worse than a stale/torn value.
pub struct RawPool {
    bytes: Box<[UnsafeCell<u8>]>,
}

// SAFETY: see the struct-level contract; synchronization is provided by the
// page table above this layer.
unsafe impl Sync for RawPool {}
unsafe impl Send for RawPool {}

impl RawPool {
    pub fn new(len: usize) -> Self {
        assert!(len.is_multiple_of(PAGE_SIZE), "pool must be page aligned");
        // Allocate as zeroed `u8` (calloc path: the OS commits pages
        // lazily) and reinterpret as `UnsafeCell<u8>`, which is
        // `repr(transparent)` over `u8`.
        let raw = Box::into_raw(vec![0u8; len].into_boxed_slice());
        // SAFETY: UnsafeCell<u8> has the same in-memory representation as
        // u8 (documented guarantee), and we transfer ownership exactly once.
        let bytes = unsafe { Box::from_raw(raw as *mut [UnsafeCell<u8>]) };
        RawPool { bytes }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn pages(&self) -> usize {
        self.bytes.len() / PAGE_SIZE
    }

    fn ptr(&self, offset: usize) -> *mut u8 {
        debug_assert!(offset < self.bytes.len());
        self.bytes[offset].get()
    }

    /// Read a `Copy` scalar at `offset`.
    ///
    /// # Safety
    /// `offset + size_of::<T>()` must be within the pool, and the caller
    /// (the DSM protocol) must hold read rights per the page table.
    pub unsafe fn read<T: Copy>(&self, offset: usize) -> T {
        debug_assert!(offset + std::mem::size_of::<T>() <= self.bytes.len());
        (self.ptr(offset) as *const T).read_unaligned()
    }

    /// Write a `Copy` scalar at `offset`.
    ///
    /// # Safety
    /// As [`RawPool::read`], with write rights.
    pub unsafe fn write<T: Copy>(&self, offset: usize, v: T) {
        debug_assert!(offset + std::mem::size_of::<T>() <= self.bytes.len());
        (self.ptr(offset) as *mut T).write_unaligned(v);
    }

    /// Copy a page's bytes out into `out`.
    ///
    /// # Safety
    /// Caller must hold read rights on the page.
    pub unsafe fn copy_page_out(&self, page: PageId, out: &mut [u8]) {
        assert_eq!(out.len(), PAGE_SIZE);
        std::ptr::copy_nonoverlapping(self.ptr(page * PAGE_SIZE), out.as_mut_ptr(), PAGE_SIZE);
    }

    /// Overwrite a page's bytes from `src` (the "system path" of the atomic
    /// page update solutions — the protocol keeps application threads off
    /// the page while this runs).
    ///
    /// # Safety
    /// Caller must be the page's unique updater (TRANSIENT holder).
    pub unsafe fn copy_page_in(&self, page: PageId, src: &[u8]) {
        assert_eq!(src.len(), PAGE_SIZE);
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr(page * PAGE_SIZE), PAGE_SIZE);
    }

    /// Copy an arbitrary byte range out.
    ///
    /// # Safety
    /// Caller must hold read rights on all covered pages.
    pub unsafe fn read_bytes(&self, offset: usize, out: &mut [u8]) {
        assert!(offset + out.len() <= self.bytes.len());
        std::ptr::copy_nonoverlapping(self.ptr(offset), out.as_mut_ptr(), out.len());
    }

    /// Copy an arbitrary byte range in.
    ///
    /// # Safety
    /// Caller must hold write rights on all covered pages.
    pub unsafe fn write_bytes(&self, offset: usize, src: &[u8]) {
        assert!(offset + src.len() <= self.bytes.len());
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr(offset), src.len());
    }
}

/// A shared-memory region handed out by the allocator. Handles are plain
/// data: they can be captured by parallel-region closures and resolved
/// against any node's pool (every node performs identical allocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionHandle {
    pub id: u32,
    /// Byte offset of the region in the pool (page aligned).
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

impl RegionHandle {
    pub fn first_page(&self) -> PageId {
        self.offset / PAGE_SIZE
    }

    pub fn last_page(&self) -> PageId {
        if self.len == 0 {
            self.first_page()
        } else {
            (self.offset + self.len - 1) / PAGE_SIZE
        }
    }

    pub fn page_count(&self) -> usize {
        self.last_page() - self.first_page() + 1
    }
}

/// Deterministic bump allocator for shared regions.
///
/// Regions are page aligned so distinct regions never share a page; this
/// keeps home migration per-region-page and avoids cross-region false
/// sharing (false sharing *within* a region is preserved — it is part of
/// the system being studied).
#[derive(Debug, Default)]
pub struct RegionAllocator {
    next_offset: usize,
    regions: Vec<RegionHandle>,
}

impl RegionAllocator {
    pub fn new() -> Self {
        RegionAllocator::default()
    }

    pub fn alloc(&mut self, len: usize, pool_len: usize) -> Result<RegionHandle, AllocError> {
        let offset = self.next_offset;
        let padded = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if offset + padded > pool_len {
            return Err(AllocError {
                requested: len,
                available: pool_len - offset,
            });
        }
        let h = RegionHandle {
            id: self.regions.len() as u32,
            offset,
            len,
        };
        self.next_offset += padded;
        self.regions.push(h);
        Ok(h)
    }

    pub fn get(&self, id: u32) -> Option<RegionHandle> {
        self.regions.get(id as usize).copied()
    }

    pub fn allocated_bytes(&self) -> usize {
        self.next_offset
    }

    pub fn count(&self) -> usize {
        self.regions.len()
    }
}

/// Shared pool exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared pool exhausted: requested {} bytes, {} available (raise ClusterConfig::pool_bytes)",
            self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_scalar_roundtrip() {
        let pool = RawPool::new(2 * PAGE_SIZE);
        unsafe {
            pool.write::<f64>(16, 3.75);
            pool.write::<i64>(4096, -42);
            assert_eq!(pool.read::<f64>(16), 3.75);
            assert_eq!(pool.read::<i64>(4096), -42);
        }
    }

    #[test]
    fn pool_page_copy_roundtrip() {
        let pool = RawPool::new(2 * PAGE_SIZE);
        let src: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; PAGE_SIZE];
        unsafe {
            pool.copy_page_in(1, &src);
            pool.copy_page_out(1, &mut out);
        }
        assert_eq!(src, out);
        // Page 0 untouched.
        unsafe {
            pool.copy_page_out(0, &mut out);
        }
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn allocator_is_page_aligned_and_deterministic() {
        let pool_len = 10 * PAGE_SIZE;
        let mut a = RegionAllocator::new();
        let r1 = a.alloc(100, pool_len).unwrap();
        let r2 = a.alloc(PAGE_SIZE + 1, pool_len).unwrap();
        let r3 = a.alloc(0, pool_len).unwrap();
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset, PAGE_SIZE);
        assert_eq!(r2.page_count(), 2);
        assert_eq!(r3.offset, 3 * PAGE_SIZE);
        assert_eq!(a.get(1), Some(r2));
        // A second allocator replays identically.
        let mut b = RegionAllocator::new();
        assert_eq!(b.alloc(100, pool_len).unwrap(), r1);
        assert_eq!(b.alloc(PAGE_SIZE + 1, pool_len).unwrap(), r2);
    }

    #[test]
    fn allocator_reports_exhaustion() {
        let mut a = RegionAllocator::new();
        let err = a.alloc(3 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap_err();
        assert_eq!(err.available, 2 * PAGE_SIZE);
        assert!(a.alloc(2 * PAGE_SIZE, 2 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn region_page_ranges() {
        let r = RegionHandle {
            id: 0,
            offset: 2 * PAGE_SIZE,
            len: PAGE_SIZE + 8,
        };
        assert_eq!(r.first_page(), 2);
        assert_eq!(r.last_page(), 3);
        assert_eq!(r.page_count(), 2);
    }
}
