//! The node-local shared memory pool and region allocation.
//!
//! Every node holds a full-size local copy of the shared address space —
//! the analogue of the per-process virtual mapping of a real page-based
//! SDSM. Whether a given page's bytes are *meaningful* on a node is decided
//! by the page table, not by the pool.

use std::cell::UnsafeCell;

use crate::page::{PageId, PAGE_SIZE};

/// Raw byte pool with interior mutability.
///
/// # Safety contract
///
/// The pool itself performs no synchronization. The DSM protocol layer
/// guarantees that:
///
/// * a page's bytes are only bulk-replaced (fetch, push, diff apply) while
///   its page-table entry is `TRANSIENT`/owned by the updater, with readers
///   held off via the table, and
/// * concurrent word-level writes to the *same* location only happen if the
///   application itself races — exactly the situation of a real SDSM, where
///   such races are application bugs.
///
/// Reads/writes use raw-pointer `read_volatile`/`write_volatile` on small
/// scalars so racing accesses (which the simulated platform permits) do not
/// get miscompiled into anything worse than a stale/torn value.
pub struct RawPool {
    bytes: Box<[UnsafeCell<u8>]>,
}

// SAFETY: see the struct-level contract; synchronization is provided by the
// page table above this layer.
unsafe impl Sync for RawPool {}
unsafe impl Send for RawPool {}

impl RawPool {
    pub fn new(len: usize) -> Self {
        assert!(len.is_multiple_of(PAGE_SIZE), "pool must be page aligned");
        // Allocate as zeroed `u8` (calloc path: the OS commits pages
        // lazily) and reinterpret as `UnsafeCell<u8>`, which is
        // `repr(transparent)` over `u8`.
        let raw = Box::into_raw(vec![0u8; len].into_boxed_slice());
        // SAFETY: UnsafeCell<u8> has the same in-memory representation as
        // u8 (documented guarantee), and we transfer ownership exactly once.
        let bytes = unsafe { Box::from_raw(raw as *mut [UnsafeCell<u8>]) };
        RawPool { bytes }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn pages(&self) -> usize {
        self.bytes.len() / PAGE_SIZE
    }

    fn ptr(&self, offset: usize) -> *mut u8 {
        debug_assert!(offset < self.bytes.len());
        self.bytes[offset].get()
    }

    /// Read a `Copy` scalar at `offset`.
    ///
    /// # Safety
    /// `offset + size_of::<T>()` must be within the pool, and the caller
    /// (the DSM protocol) must hold read rights per the page table.
    pub unsafe fn read<T: Copy>(&self, offset: usize) -> T {
        debug_assert!(offset + std::mem::size_of::<T>() <= self.bytes.len());
        (self.ptr(offset) as *const T).read_unaligned()
    }

    /// Write a `Copy` scalar at `offset`.
    ///
    /// # Safety
    /// As [`RawPool::read`], with write rights.
    pub unsafe fn write<T: Copy>(&self, offset: usize, v: T) {
        debug_assert!(offset + std::mem::size_of::<T>() <= self.bytes.len());
        (self.ptr(offset) as *mut T).write_unaligned(v);
    }

    /// Copy a page's bytes out into `out`.
    ///
    /// # Safety
    /// Caller must hold read rights on the page.
    pub unsafe fn copy_page_out(&self, page: PageId, out: &mut [u8]) {
        assert_eq!(out.len(), PAGE_SIZE);
        std::ptr::copy_nonoverlapping(self.ptr(page * PAGE_SIZE), out.as_mut_ptr(), PAGE_SIZE);
    }

    /// Overwrite a page's bytes from `src` (the "system path" of the atomic
    /// page update solutions — the protocol keeps application threads off
    /// the page while this runs).
    ///
    /// # Safety
    /// Caller must be the page's unique updater (TRANSIENT holder).
    pub unsafe fn copy_page_in(&self, page: PageId, src: &[u8]) {
        assert_eq!(src.len(), PAGE_SIZE);
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr(page * PAGE_SIZE), PAGE_SIZE);
    }

    /// Copy an arbitrary byte range out.
    ///
    /// # Safety
    /// Caller must hold read rights on all covered pages.
    pub unsafe fn read_bytes(&self, offset: usize, out: &mut [u8]) {
        assert!(offset + out.len() <= self.bytes.len());
        std::ptr::copy_nonoverlapping(self.ptr(offset), out.as_mut_ptr(), out.len());
    }

    /// Copy an arbitrary byte range in.
    ///
    /// # Safety
    /// Caller must hold write rights on all covered pages.
    pub unsafe fn write_bytes(&self, offset: usize, src: &[u8]) {
        assert!(offset + src.len() <= self.bytes.len());
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr(offset), src.len());
    }
}

/// A shared-memory region handed out by the allocator. Handles are plain
/// data: they can be captured by parallel-region closures and resolved
/// against any node's pool (every node performs identical allocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionHandle {
    pub id: u32,
    /// Byte offset of the region in the pool (page aligned).
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
}

impl RegionHandle {
    pub fn first_page(&self) -> PageId {
        self.offset / PAGE_SIZE
    }

    pub fn last_page(&self) -> PageId {
        if self.len == 0 {
            self.first_page()
        } else {
            (self.offset + self.len - 1) / PAGE_SIZE
        }
    }

    pub fn page_count(&self) -> usize {
        self.last_page() - self.first_page() + 1
    }
}

/// Deterministic bump allocator for shared regions.
///
/// Regions are page aligned so distinct regions never share a page; this
/// keeps home migration per-region-page and avoids cross-region false
/// sharing (false sharing *within* a region is preserved — it is part of
/// the system being studied).
#[derive(Debug, Default)]
pub struct RegionAllocator {
    next_offset: usize,
    regions: Vec<RegionHandle>,
}

impl RegionAllocator {
    pub fn new() -> Self {
        RegionAllocator::default()
    }

    pub fn alloc(&mut self, len: usize, pool_len: usize) -> Result<RegionHandle, AllocError> {
        let offset = self.next_offset;
        let padded = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if offset + padded > pool_len {
            return Err(AllocError {
                requested: len,
                available: pool_len - offset,
            });
        }
        let h = RegionHandle {
            id: self.regions.len() as u32,
            offset,
            len,
        };
        self.next_offset += padded;
        self.regions.push(h);
        Ok(h)
    }

    pub fn get(&self, id: u32) -> Option<RegionHandle> {
        self.regions.get(id as usize).copied()
    }

    pub fn allocated_bytes(&self) -> usize {
        self.next_offset
    }

    pub fn count(&self) -> usize {
        self.regions.len()
    }
}

/// Sharded per-page protocol bookkeeping: the node's dirty set and the
/// current interval's write/read notice sets, split into power-of-two lock
/// shards keyed by page id.
///
/// Before sharding these were two node-global `Mutex<HashSet<PageId>>`s —
/// every write fault on every application thread, and every diff-batch
/// merge bookkeeping step, serialized on the same two locks. A page maps
/// to shard `page & (shards - 1)`, so concurrent faults on different pages
/// almost always hit different shards. Draining (release/barrier time) is
/// done shard by shard and then sorted, so drain order — and therefore
/// everything downstream: diff batch layout, write notices, departure
/// entries — is byte-identical to the single-lock path.
pub struct PageShards {
    shards: Box<[parade_net::sync::Mutex<ShardSets>]>,
    mask: usize,
    /// Per-shard diff-merge counts (home side), for the `dsm.shard` trace
    /// event and shard-balance assertions in tests.
    pub merges: crate::stats::ShardStats,
}

#[derive(Debug, Default)]
struct ShardSets {
    /// Pages this node holds dirty (twin taken, diff owed at release).
    dirty: std::collections::HashSet<PageId>,
    /// Pages written during the current interval (barrier write notices).
    notices: std::collections::HashSet<PageId>,
    /// Pages fetched during the current interval (barrier read notices —
    /// the sharer evidence behind adaptive protocol selection).
    reads: std::collections::HashSet<PageId>,
}

impl PageShards {
    /// `shards` is rounded up to a power of two (min 1).
    pub fn new(shards: usize) -> PageShards {
        let n = shards.max(1).next_power_of_two();
        PageShards {
            shards: (0..n)
                .map(|_| parade_net::sync::Mutex::new(ShardSets::default()))
                .collect(),
            mask: n - 1,
            merges: crate::stats::ShardStats::new(n),
        }
    }

    #[inline]
    pub fn shard_of(&self, page: PageId) -> usize {
        page & self.mask
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    #[inline]
    fn with<R>(&self, page: PageId, f: impl FnOnce(&mut ShardSets) -> R) -> R {
        f(&mut self.shards[self.shard_of(page)].lock())
    }

    /// Mark a page dirty and note the write for the current interval.
    pub fn mark_written(&self, page: PageId) {
        self.with(page, |s| {
            s.dirty.insert(page);
            s.notices.insert(page);
        });
    }

    /// Drop a page from the dirty set (it is being flushed out of band);
    /// returns whether it was dirty.
    pub fn unmark_dirty(&self, page: PageId) -> bool {
        self.with(page, |s| s.dirty.remove(&page))
    }

    /// Note a page fetch for the current interval's read notices.
    pub fn mark_read(&self, page: PageId) {
        self.with(page, |s| {
            s.reads.insert(page);
        });
    }

    fn drain_sorted(&self, pick: impl Fn(&mut ShardSets) -> Vec<PageId>) -> Vec<PageId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(pick(&mut shard.lock()));
        }
        out.sort_unstable();
        out
    }

    /// Take the dirty set (sorted — deterministic release order).
    pub fn drain_dirty(&self) -> Vec<PageId> {
        self.drain_sorted(|s| s.dirty.drain().collect())
    }

    /// Take the interval's write notices (sorted).
    pub fn drain_notices(&self) -> Vec<PageId> {
        self.drain_sorted(|s| s.notices.drain().collect())
    }

    /// Take the interval's read notices (sorted).
    pub fn drain_reads(&self) -> Vec<PageId> {
        self.drain_sorted(|s| s.reads.drain().collect())
    }

    /// Record a home-side diff merge into `page`'s shard; returns the
    /// shard index (for tracing).
    pub fn record_merge(&self, page: PageId) -> usize {
        let shard = self.shard_of(page);
        self.merges.bump(shard);
        shard
    }
}

/// Shared pool exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    pub requested: usize,
    pub available: usize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared pool exhausted: requested {} bytes, {} available (raise ClusterConfig::pool_bytes)",
            self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_scalar_roundtrip() {
        let pool = RawPool::new(2 * PAGE_SIZE);
        unsafe {
            pool.write::<f64>(16, 3.75);
            pool.write::<i64>(4096, -42);
            assert_eq!(pool.read::<f64>(16), 3.75);
            assert_eq!(pool.read::<i64>(4096), -42);
        }
    }

    #[test]
    fn pool_page_copy_roundtrip() {
        let pool = RawPool::new(2 * PAGE_SIZE);
        let src: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; PAGE_SIZE];
        unsafe {
            pool.copy_page_in(1, &src);
            pool.copy_page_out(1, &mut out);
        }
        assert_eq!(src, out);
        // Page 0 untouched.
        unsafe {
            pool.copy_page_out(0, &mut out);
        }
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn allocator_is_page_aligned_and_deterministic() {
        let pool_len = 10 * PAGE_SIZE;
        let mut a = RegionAllocator::new();
        let r1 = a.alloc(100, pool_len).unwrap();
        let r2 = a.alloc(PAGE_SIZE + 1, pool_len).unwrap();
        let r3 = a.alloc(0, pool_len).unwrap();
        assert_eq!(r1.offset, 0);
        assert_eq!(r2.offset, PAGE_SIZE);
        assert_eq!(r2.page_count(), 2);
        assert_eq!(r3.offset, 3 * PAGE_SIZE);
        assert_eq!(a.get(1), Some(r2));
        // A second allocator replays identically.
        let mut b = RegionAllocator::new();
        assert_eq!(b.alloc(100, pool_len).unwrap(), r1);
        assert_eq!(b.alloc(PAGE_SIZE + 1, pool_len).unwrap(), r2);
    }

    #[test]
    fn allocator_reports_exhaustion() {
        let mut a = RegionAllocator::new();
        let err = a.alloc(3 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap_err();
        assert_eq!(err.available, 2 * PAGE_SIZE);
        assert!(a.alloc(2 * PAGE_SIZE, 2 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn page_shards_round_up_and_distribute() {
        let s = PageShards::new(6);
        assert_eq!(s.len(), 8, "shard count rounds up to a power of two");
        for p in 0..32 {
            assert_eq!(s.shard_of(p), p % 8);
        }
        let single = PageShards::new(1);
        assert_eq!(single.len(), 1);
        assert_eq!(single.shard_of(12345), 0);
    }

    #[test]
    fn page_shards_drain_sorted_regardless_of_insertion_order() {
        for nshards in [1usize, 4, 16] {
            let s = PageShards::new(nshards);
            for &p in &[31usize, 2, 17, 4, 9, 0, 25] {
                s.mark_written(p);
                s.mark_read(p + 1);
            }
            assert_eq!(s.drain_dirty(), vec![0, 2, 4, 9, 17, 25, 31]);
            assert_eq!(s.drain_notices(), vec![0, 2, 4, 9, 17, 25, 31]);
            assert_eq!(s.drain_reads(), vec![1, 3, 5, 10, 18, 26, 32]);
            // Drains empty the sets.
            assert!(s.drain_dirty().is_empty());
            assert!(s.drain_notices().is_empty());
            assert!(s.drain_reads().is_empty());
        }
    }

    #[test]
    fn page_shards_unmark_and_merge_counters() {
        let s = PageShards::new(4);
        s.mark_written(5);
        assert!(s.unmark_dirty(5));
        assert!(!s.unmark_dirty(5));
        // The write notice survives an out-of-band flush.
        assert_eq!(s.drain_notices(), vec![5]);
        assert_eq!(s.record_merge(6), 2);
        assert_eq!(s.record_merge(10), 2);
        assert_eq!(s.record_merge(3), 3);
        assert_eq!(s.merges.snapshot(), vec![0, 0, 2, 1]);
    }

    #[test]
    fn region_page_ranges() {
        let r = RegionHandle {
            id: 0,
            offset: 2 * PAGE_SIZE,
            len: PAGE_SIZE + 8,
        };
        assert_eq!(r.first_page(), 2);
        assert_eq!(r.last_page(), 3);
        assert_eq!(r.page_count(), 2);
    }
}
