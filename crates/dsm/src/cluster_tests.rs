//! Multi-node protocol tests: a miniature in-crate cluster harness (one
//! application thread plus one communication thread per node) driving the
//! full HLRC protocol over the simulated fabric.

use std::sync::Arc;

use parade_net::{Fabric, NetProfile, VClock};

use crate::config::{DsmConfig, HomePolicy, LockKind, UpdateStrategy};
use crate::engine::Dsm;
use crate::page::{PageState, PAGE_SIZE};
use crate::server::spawn_comm_thread;
use crate::store::RegionHandle;

fn small_cfg() -> DsmConfig {
    DsmConfig {
        pool_bytes: 64 * PAGE_SIZE,
        ..DsmConfig::default()
    }
}

/// Run `f` as the application thread of every node; returns per-node
/// results.
fn run_nodes<R: Send + 'static>(
    n: usize,
    cfg: DsmConfig,
    profile: NetProfile,
    f: impl Fn(Arc<Dsm>, &mut VClock) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let fabric = Fabric::new(n, profile);
    let dsms: Vec<Arc<Dsm>> = (0..n)
        .map(|i| Arc::new(Dsm::new(fabric.endpoint(i), cfg)))
        .collect();
    let comm_handles: Vec<_> = dsms
        .iter()
        .map(|d| spawn_comm_thread(Arc::clone(d)))
        .collect();
    let f = Arc::new(f);
    let app_handles: Vec<_> = dsms
        .iter()
        .map(|d| {
            let d = Arc::clone(d);
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                let mut clock = VClock::manual();
                f(d, &mut clock)
            })
        })
        .collect();
    let results = app_handles.into_iter().map(|h| h.join().unwrap()).collect();
    fabric.begin_shutdown();
    for h in comm_handles {
        h.join().unwrap();
    }
    results
}

fn alloc_on(d: &Dsm, len: usize) -> RegionHandle {
    d.alloc_region(len).unwrap()
}

#[test]
fn master_writes_propagate_after_barrier() {
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 4 * 1024);
        if d.node() == 0 {
            for i in 0..512 {
                d.write::<f64>(r, i * 8, i as f64 * 1.5, clk);
            }
        }
        d.barrier(clk);
        let mut sum = 0.0;
        for i in 0..512 {
            sum += d.read::<f64>(r, i * 8, clk);
        }
        sum
    });
    let expect: f64 = (0..512).map(|i| i as f64 * 1.5).sum();
    for s in out {
        assert_eq!(s, expect);
    }
}

#[test]
fn checkpoint_round_trips_across_nodes() {
    // Node 1 writes an interval's worth of state; node 0 checkpoints at the
    // barrier, node 1 then scribbles over the region, and node 0's restore
    // brings every node back to the checkpointed cut.
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 3 * PAGE_SIZE);
        d.barrier(clk);
        if d.node() == 1 {
            for i in 0..64 {
                d.write::<f64>(r, i * 8, i as f64 + 0.25, clk);
            }
        }
        d.barrier(clk);
        let snap = (d.node() == 0).then(|| d.checkpoint_region(r, clk));
        d.barrier(clk);
        if d.node() == 1 {
            for i in 0..64 {
                d.write::<f64>(r, i * 8, -1.0, clk);
            }
        }
        d.barrier(clk);
        if let Some(snap) = &snap {
            d.restore_region(r, snap, clk);
        }
        d.barrier(clk);
        let mut sum = 0.0;
        for i in 0..64 {
            sum += d.read::<f64>(r, i * 8, clk);
        }
        if d.node() == 0 {
            let s = d.stats.snapshot();
            assert_eq!(s.checkpoints, 1);
            assert_eq!(s.checkpoint_bytes, 3 * PAGE_SIZE as u64);
            assert_eq!(s.restores, 1);
            assert_eq!(s.restore_bytes, 3 * PAGE_SIZE as u64);
        }
        sum
    });
    let expect: f64 = (0..64).map(|i| i as f64 + 0.25).sum();
    for s in out {
        assert_eq!(s, expect);
    }
}

#[test]
fn non_master_writes_visible_everywhere() {
    let out = run_nodes(4, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 1024);
        d.barrier(clk);
        if d.node() == 2 {
            d.write::<i64>(r, 0, 777, clk);
        }
        d.barrier(clk);
        d.read::<i64>(r, 0, clk)
    });
    assert_eq!(out, vec![777, 777, 777, 777]);
}

#[test]
fn home_migrates_to_single_writer() {
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        if d.node() == 1 {
            d.write::<i64>(r, 0, 1, clk);
        }
        d.barrier(clk);
        let home = d.home_of(r.first_page());
        let v = d.read::<i64>(r, 0, clk);
        (home, v)
    });
    for (home, v) in out {
        assert_eq!(home, 1, "single writer should become home");
        assert_eq!(v, 1);
    }
}

/// Exercise barriers with overlapping multi-writer pages under both barrier
/// implementations; migration decisions and final contents must agree, and
/// the hierarchical virtual time must be reproducible run to run.
#[test]
fn hierarchical_barrier_matches_flat_decisions() {
    let run = |hier: bool| {
        // 6 nodes: non-power-of-two, so the binomial tree is ragged.
        run_nodes(
            6,
            DsmConfig {
                hierarchical_barrier: hier,
                ..small_cfg()
            },
            NetProfile::clan_via(),
            |d, clk| {
                let r = alloc_on(&d, 8 * PAGE_SIZE);
                d.barrier(clk);
                let node = d.node();
                // Page 0: single writer. Page 1: all write (multi-writer,
                // disjoint words). Page 2: writers {1, 4} (old home loses).
                if node == 2 {
                    d.write::<i64>(r, 0, 42, clk);
                }
                d.write::<i64>(r, PAGE_SIZE + node * 8, node as i64 + 1, clk);
                if node == 1 || node == 4 {
                    d.write::<i64>(r, 2 * PAGE_SIZE + node * 8, node as i64, clk);
                }
                d.barrier(clk);
                let homes: Vec<usize> = (0..3).map(|p| d.home_of(r.first_page() + p)).collect();
                let mut vals = vec![d.read::<i64>(r, 0, clk)];
                for n in 0..6 {
                    vals.push(d.read::<i64>(r, PAGE_SIZE + n * 8, clk));
                }
                vals.push(d.read::<i64>(r, 2 * PAGE_SIZE + 8, clk));
                vals.push(d.read::<i64>(r, 2 * PAGE_SIZE + 32, clk));
                d.barrier(clk);
                (homes, vals)
            },
        )
    };
    let hier_a = run(true);
    let hier_b = run(true);
    let flat = run(false);
    assert_eq!(hier_a, hier_b, "hierarchical barrier must be deterministic");
    for (h, f) in hier_a.iter().zip(&flat) {
        assert_eq!(h.0, f.0, "home decisions must match the flat master's");
        assert_eq!(h.1, f.1, "contents must match the flat protocol's");
    }
}

/// Steady-state hierarchical barriers must scale like the tree depth, not
/// linearly in the node count: the critical path is ⌈log₂N⌉ hops.
#[test]
fn hierarchical_barrier_vtime_scales_sublinearly() {
    let barrier_cost = |nodes: usize| {
        let out = run_nodes(nodes, small_cfg(), NetProfile::clan_via(), |d, clk| {
            d.barrier(clk); // warm-up: first barrier includes nothing extra here
            let t0 = clk.now();
            for _ in 0..4 {
                d.barrier(clk);
            }
            (clk.now().saturating_sub(t0)).as_nanos() / 4
        });
        out[0]
    };
    let c4 = barrier_cost(4);
    let c8 = barrier_cost(8);
    let c16 = barrier_cost(16);
    // Steady-state barriers (no protocol traffic in flight) are fully
    // deterministic: the sorted service fold erases real-time racing.
    assert_eq!(c8, barrier_cost(8), "steady barrier vtime must be exact");
    // Successive doubling must cost well under 2x (the flat barrier's
    // master services N arrivals serially, giving ratios near 2).
    assert!(
        (c8 as f64) < (c4 as f64) * 1.7,
        "4->8 nodes ratio too steep: {c4} -> {c8}"
    );
    assert!(
        (c16 as f64) < (c8 as f64) * 1.7,
        "8->16 nodes ratio too steep: {c8} -> {c16}"
    );
}

#[test]
fn fixed_home_policy_never_migrates() {
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        ..small_cfg()
    };
    let out = run_nodes(3, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        if d.node() == 2 {
            d.write::<i64>(r, 0, 5, clk);
        }
        d.barrier(clk);
        (d.home_of(r.first_page()), d.read::<i64>(r, 0, clk))
    });
    for (home, v) in out {
        assert_eq!(home, 0, "fixed-home policy must keep the master home");
        assert_eq!(v, 5);
    }
}

#[test]
fn multi_writer_same_page_merges_and_migrates_with_push() {
    // Nodes 1 and 2 write disjoint words of one page; old home 0 did not
    // write, so the page migrates to node 1 (smallest writer id) and node 0
    // pushes the merged content.
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 1024);
        d.barrier(clk);
        match d.node() {
            1 => d.write::<i64>(r, 0, 11, clk),
            2 => d.write::<i64>(r, 512, 22, clk),
            _ => {}
        }
        d.barrier(clk);
        let a = d.read::<i64>(r, 0, clk);
        let b = d.read::<i64>(r, 512, clk);
        (d.home_of(r.first_page()), a, b)
    });
    for (home, a, b) in &out {
        assert_eq!(*home, 1, "min-writer-id should become home");
        assert_eq!((*a, *b), (11, 22), "merged writes must be visible");
    }
    // Old home pushed exactly once (node 0).
}

#[test]
fn current_home_keeps_page_when_it_also_writes() {
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 1024);
        d.barrier(clk);
        // Home of the page starts at node 0 and node 0 writes too.
        match d.node() {
            0 => d.write::<i64>(r, 0, 1, clk),
            2 => d.write::<i64>(r, 512, 2, clk),
            _ => {}
        }
        d.barrier(clk);
        (
            d.home_of(r.first_page()),
            d.read::<i64>(r, 0, clk),
            d.read::<i64>(r, 512, clk),
        )
    });
    for (home, a, b) in out {
        assert_eq!(home, 0, "writing home has priority");
        assert_eq!((a, b), (1, 2));
    }
}

#[test]
fn repeated_owner_writes_after_migration_do_not_fetch() {
    // After the home migrates to the writer, its subsequent intervals need
    // no page traffic at all (locality exploitation, §5.2.2).
    let out = run_nodes(2, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        for round in 0..5 {
            if d.node() == 1 {
                d.write::<i64>(r, 0, round + 100, clk);
            }
            d.barrier(clk);
        }
        d.stats.snapshot()
    });
    let s1 = &out[1];
    // First write faults and fetches once; after migration the page stays
    // home-resident at node 1.
    assert_eq!(s1.page_fetches, 1, "only the initial fetch is allowed");
    assert_eq!(s1.diffs_sent, 1, "only the pre-migration interval diffs");
}

#[test]
fn invalidation_counts_reflect_write_notices() {
    // Node 1 writes; node 2 (neither old nor new home) must invalidate its
    // cached copy, while node 0 — the old home with the merged diff — keeps
    // its copy valid and up to date.
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        // Everyone caches the page.
        let _ = d.read::<i64>(r, 0, clk);
        d.barrier(clk);
        if d.node() == 1 {
            d.write::<i64>(r, 0, 9, clk);
        }
        d.barrier(clk);
        let state = d.page_state(r.first_page());
        let snap = d.stats.snapshot();
        let v = d.read::<i64>(r, 0, clk);
        (snap, state, v)
    });
    let (s2, st2, v2) = &out[2];
    assert!(s2.invalidations >= 1, "node 2 should invalidate its copy");
    assert_eq!(*st2, PageState::Invalid);
    assert_eq!(*v2, 9, "refetch must observe the write");
    let (s0, st0, v0) = &out[0];
    assert_eq!(s0.invalidations, 0, "old home keeps its merged copy");
    assert_eq!(*st0, PageState::ReadOnly);
    assert_eq!(*v0, 9, "old home's merged copy is current");
}

#[test]
fn dsm_lock_protects_shared_counter() {
    let n = 4;
    let rounds = 10;
    let out = run_nodes(n, small_cfg(), NetProfile::zero(), move |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        for _ in 0..rounds {
            d.lock_acquire(7, clk);
            let v = d.read::<i64>(r, 0, clk);
            d.write::<i64>(r, 0, v + 1, clk);
            d.lock_release(7, clk);
        }
        d.barrier(clk);
        d.read::<i64>(r, 0, clk)
    });
    for v in out {
        assert_eq!(v, (n * rounds) as i64);
    }
}

#[test]
fn polling_lock_also_correct_and_counts_polls() {
    let cfg = DsmConfig {
        lock_kind: LockKind::Polling {
            interval: parade_net::VTime::from_micros(50),
        },
        ..small_cfg()
    };
    let n = 3;
    let out = run_nodes(n, cfg, NetProfile::zero(), move |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        for _ in 0..5 {
            d.lock_acquire(3, clk);
            let v = d.read::<i64>(r, 0, clk);
            d.write::<i64>(r, 0, v + 1, clk);
            d.lock_release(3, clk);
        }
        d.barrier(clk);
        (d.read::<i64>(r, 0, clk), d.stats.snapshot().lock_polls)
    });
    let total_polls: u64 = out.iter().map(|(_, p)| p).sum();
    for (v, _) in &out {
        assert_eq!(*v, 15);
    }
    // With three contending nodes there must be some busy-wait traffic.
    assert!(total_polls > 0, "expected poll retries under contention");
}

#[test]
fn concurrent_faults_on_one_node_fetch_once() {
    // Two threads of the same node fault the same page simultaneously: the
    // TRANSIENT/BLOCKED machinery must coalesce them into a single fetch.
    let out = run_nodes(2, small_cfg(), NetProfile::clan_via(), |d, clk| {
        let r = alloc_on(&d, 1024);
        if d.node() == 0 {
            for i in 0..128 {
                d.write::<f64>(r, i * 8, 2.0, clk);
            }
        }
        d.barrier(clk);
        if d.node() == 1 {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let d = Arc::clone(&d);
                    std::thread::spawn(move || {
                        let mut clk = VClock::manual();
                        let mut s = 0.0;
                        for i in 0..128 {
                            s += d.read::<f64>(r, i * 8, &mut clk);
                        }
                        s
                    })
                })
                .collect();
            for w in workers {
                assert_eq!(w.join().unwrap(), 256.0);
            }
        }
        d.barrier(clk);
        d.stats.snapshot()
    });
    let s1 = &out[1];
    assert_eq!(
        s1.page_fetches, 1,
        "waiters must not issue duplicate fetches"
    );
}

#[test]
fn naive_update_strategy_exhibits_torn_reads() {
    // The atomic page update problem (§5.1): with the naive strategy the
    // page becomes readable before the copy completes, so a concurrent
    // reader can observe a half-updated page. The safe strategies never
    // allow this (readers block on TRANSIENT).
    fn torn_observations(strategy: UpdateStrategy, trials: usize) -> usize {
        let mut torn = 0;
        for _ in 0..trials {
            let out = run_nodes(
                2,
                DsmConfig {
                    update_strategy: strategy,
                    ..small_cfg()
                },
                NetProfile::zero(),
                |d, clk| {
                    let r = alloc_on(&d, PAGE_SIZE);
                    if d.node() == 0 {
                        for i in 0..PAGE_SIZE / 8 {
                            d.write::<i64>(r, i * 8, 1, clk);
                        }
                    }
                    d.barrier(clk);
                    let mut saw_torn = false;
                    if d.node() == 1 {
                        let last = PAGE_SIZE - 8;
                        let d2 = Arc::clone(&d);
                        // Trigger the fetch from a sibling thread.
                        let t = std::thread::spawn(move || {
                            let mut c = VClock::manual();
                            d2.read::<i64>(r, 0, &mut c)
                        });
                        // Spin until the page looks readable, then check the
                        // *last* word immediately.
                        loop {
                            let st = d.page_state(r.first_page());
                            if st == PageState::ReadOnly || st == PageState::Dirty {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        let v = d.read::<i64>(r, last, clk);
                        if v == 0 {
                            saw_torn = true;
                        }
                        t.join().unwrap();
                    }
                    d.barrier(clk);
                    saw_torn
                },
            );
            if out[1] {
                torn += 1;
            }
        }
        torn
    }

    assert_eq!(
        torn_observations(UpdateStrategy::MmapFile, 5),
        0,
        "safe strategy must never show a torn page"
    );
    let torn = torn_observations(UpdateStrategy::NaiveUnsafe, 10);
    assert!(
        torn > 0,
        "naive strategy should expose the atomic-page-update race"
    );
}

#[test]
fn fetch_advances_virtual_time_by_round_trip() {
    let profile = NetProfile::clan_via();
    let out = run_nodes(2, small_cfg(), profile, |d, clk| {
        let r = alloc_on(&d, 64);
        if d.node() == 0 {
            d.write::<i64>(r, 0, 3, clk);
        }
        d.barrier(clk);
        let before = clk.now();
        if d.node() == 1 {
            let _ = d.read::<i64>(r, 0, clk);
        }
        clk.now().saturating_sub(before)
    });
    let rtt = out[1];
    // At least two one-way latencies plus the page transfer.
    let min = parade_net::VTime::from_nanos(2 * 7_500);
    assert!(rtt >= min, "fetch rtt {rtt} below network minimum {min}");
}

#[test]
fn slice_operations_roundtrip_across_nodes() {
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 3000 * 8);
        d.barrier(clk);
        if d.node() == 1 {
            let data: Vec<f64> = (0..3000).map(|i| i as f64 * 0.5).collect();
            d.write_slice(r, 0, &data, clk);
        }
        d.barrier(clk);
        let mut buf = vec![0.0f64; 3000];
        d.read_slice(r, 0, &mut buf, clk);
        buf.iter().sum::<f64>()
    });
    let expect: f64 = (0..3000).map(|i| i as f64 * 0.5).sum();
    for s in out {
        assert_eq!(s, expect);
    }
}

#[test]
fn single_node_cluster_degenerates_gracefully() {
    let out = run_nodes(1, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 1024);
        for i in 0..16 {
            d.write::<i64>(r, i * 8, i as i64, clk);
        }
        d.barrier(clk);
        d.lock_acquire(0, clk);
        d.lock_release(0, clk);
        (0..16).map(|i| d.read::<i64>(r, i * 8, clk)).sum::<i64>()
    });
    assert_eq!(out[0], 120);
    // No remote traffic should have been generated... besides local
    // messages, which the stats count but the fabric marks as local.
}

#[test]
fn interleaved_lock_and_barrier_phases() {
    // Lock-flushed pages must still appear in barrier write notices so
    // non-participants get invalidated.
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, 64);
        d.barrier(clk);
        if d.node() == 2 {
            // Everyone caches first.
        }
        let _ = d.read::<i64>(r, 0, clk);
        d.barrier(clk);
        if d.node() == 1 {
            d.lock_acquire(9, clk);
            d.write::<i64>(r, 0, 42, clk);
            d.lock_release(9, clk);
        }
        d.barrier(clk);
        d.read::<i64>(r, 0, clk)
    });
    assert_eq!(out, vec![42, 42, 42]);
}

// ---------------------------------------------------------------------------
// Release-path batching and range fetches
// ---------------------------------------------------------------------------

#[test]
fn release_sends_one_batch_message_per_home() {
    // N dirty pages all homed on the peer: the release must ship exactly
    // one DSM message and wait on exactly one ack, regardless of N.
    const N: usize = 8;
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        ..small_cfg()
    };
    let out = run_nodes(2, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        d.barrier(clk);
        if d.node() == 1 {
            for p in 0..N {
                d.write::<i64>(r, p * PAGE_SIZE, p as i64 + 1, clk);
            }
            // Writes fetched pages; quiesce, then measure the flush alone.
            let before = d.endpoint().local_stats().snapshot();
            let flushed = d.flush(clk);
            let after = d.endpoint().local_stats().snapshot();
            assert_eq!(flushed.len(), N);
            assert_eq!(
                after.sent.msgs - before.sent.msgs,
                1,
                "one DiffBatch on the wire, not one Diff per page"
            );
            assert_eq!(
                after.received.msgs - before.received.msgs,
                1,
                "one DiffBatchAck back, not one ack per page"
            );
        }
        d.barrier(clk);
        let sum: i64 = (0..N).map(|p| d.read::<i64>(r, p * PAGE_SIZE, clk)).sum();
        (d.stats.snapshot(), sum)
    });
    let (s1, _) = &out[1];
    assert_eq!(s1.diff_batches, 1, "single destination home, single batch");
    assert_eq!(s1.batched_pages, N as u64);
    assert_eq!(s1.diffs_sent, N as u64, "per-page diff count is preserved");
    assert!(
        s1.diff_bytes > s1.diff_payload_bytes,
        "wire bytes include framing over the modified-run payload"
    );
    assert!(s1.diff_payload_bytes >= (N * 8) as u64);
    let expect: i64 = (1..=N as i64).sum();
    for (_, sum) in &out {
        assert_eq!(*sum, expect, "home merged every page's diff");
    }
}

#[test]
fn unbatched_mode_sends_one_message_per_page() {
    const N: usize = 6;
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        batch_diffs: false,
        ..small_cfg()
    };
    let out = run_nodes(2, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        d.barrier(clk);
        if d.node() == 1 {
            for p in 0..N {
                d.write::<i64>(r, p * PAGE_SIZE, 7, clk);
            }
            let before = d.endpoint().local_stats().snapshot();
            d.flush(clk);
            let after = d.endpoint().local_stats().snapshot();
            assert_eq!(after.sent.msgs - before.sent.msgs, N as u64);
            assert_eq!(after.received.msgs - before.received.msgs, N as u64);
        }
        d.barrier(clk);
        d.stats.snapshot()
    });
    let s1 = &out[1];
    assert_eq!(s1.diff_batches, 0, "legacy path must not batch");
    assert_eq!(s1.batched_pages, 0);
    assert_eq!(s1.diffs_sent, N as u64);
}

#[test]
fn disjoint_writer_diffs_merge_at_home_through_batches() {
    // Nodes 1 and 2 write disjoint halves of the same N pages homed at
    // node 0. Each release is one batch; the home merges both batches run
    // by run and everyone reads the union.
    const N: usize = 4;
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        ..small_cfg()
    };
    let out = run_nodes(3, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        d.barrier(clk);
        match d.node() {
            1 => {
                for p in 0..N {
                    d.write::<i64>(r, p * PAGE_SIZE, 100 + p as i64, clk);
                }
            }
            2 => {
                for p in 0..N {
                    d.write::<i64>(r, p * PAGE_SIZE + PAGE_SIZE / 2, 200 + p as i64, clk);
                }
            }
            _ => {}
        }
        d.barrier(clk);
        let mut vals = Vec::new();
        for p in 0..N {
            vals.push((
                d.read::<i64>(r, p * PAGE_SIZE, clk),
                d.read::<i64>(r, p * PAGE_SIZE + PAGE_SIZE / 2, clk),
            ));
        }
        (d.stats.snapshot(), vals)
    });
    for (node, (snap, vals)) in out.iter().enumerate() {
        for (p, &(a, b)) in vals.iter().enumerate() {
            assert_eq!(
                (a, b),
                (100 + p as i64, 200 + p as i64),
                "node {node} page {p} must see both writers' words"
            );
        }
        if node == 1 || node == 2 {
            assert_eq!(snap.diff_batches, 1, "writer {node} released one batch");
            assert_eq!(snap.batched_pages, N as u64);
        }
    }
}

#[test]
fn contiguous_fetches_coalesce_into_one_range_request() {
    const N: usize = 8;
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        ..small_cfg()
    };
    let out = run_nodes(2, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        if d.node() == 0 {
            let data: Vec<f64> = (0..N * PAGE_SIZE / 8).map(|i| i as f64).collect();
            d.write_slice(r, 0, &data, clk);
        }
        d.barrier(clk);
        if d.node() == 1 {
            let mut buf = vec![0.0f64; N * PAGE_SIZE / 8];
            d.read_slice(r, 0, &mut buf, clk);
            let expect: f64 = (0..buf.len()).map(|i| i as f64).sum();
            assert_eq!(buf.iter().sum::<f64>(), expect);
        }
        d.barrier(clk);
        d.stats.snapshot()
    });
    let s1 = &out[1];
    assert_eq!(s1.range_fetches, 1, "8 contiguous pages, one round trip");
    assert_eq!(s1.range_fetch_pages, N as u64);
    assert_eq!(s1.page_fetches, N as u64);
    assert_eq!(s1.fetch_bytes, (N * PAGE_SIZE) as u64);
}

#[test]
fn range_fetch_disabled_falls_back_to_per_page() {
    const N: usize = 5;
    let cfg = DsmConfig {
        home_policy: HomePolicy::Fixed,
        max_fetch_range: 1,
        ..small_cfg()
    };
    let out = run_nodes(2, cfg, NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        if d.node() == 0 {
            let data: Vec<f64> = (0..N * PAGE_SIZE / 8).map(|_| 1.0).collect();
            d.write_slice(r, 0, &data, clk);
        }
        d.barrier(clk);
        if d.node() == 1 {
            let mut buf = vec![0.0f64; N * PAGE_SIZE / 8];
            d.read_slice(r, 0, &mut buf, clk);
            assert_eq!(buf.iter().sum::<f64>(), (N * PAGE_SIZE / 8) as f64);
        }
        d.barrier(clk);
        d.stats.snapshot()
    });
    let s1 = &out[1];
    assert_eq!(s1.range_fetches, 0);
    assert_eq!(s1.page_fetches, N as u64);
}

#[test]
fn range_fetch_splits_at_home_boundaries() {
    // Pages 0..4 migrate to node 0, pages 4..8 to node 1; node 2's sweep
    // over all eight pages must issue one range request per home.
    const N: usize = 8;
    let out = run_nodes(3, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, N * PAGE_SIZE);
        d.barrier(clk);
        let words = PAGE_SIZE / 8;
        match d.node() {
            0 => {
                let data: Vec<f64> = (0..4 * words).map(|i| i as f64).collect();
                d.write_slice(r, 0, &data, clk);
            }
            1 => {
                let data: Vec<f64> = (0..4 * words).map(|i| (4 * words + i) as f64).collect();
                d.write_slice(r, 4 * words, &data, clk);
            }
            _ => {}
        }
        d.barrier(clk);
        let homes: Vec<usize> = (0..N).map(|p| d.home_of(r.first_page() + p)).collect();
        if d.node() == 2 {
            let mut buf = vec![0.0f64; N * words];
            d.read_slice(r, 0, &mut buf, clk);
            let expect: f64 = (0..N * words).map(|i| i as f64).sum();
            assert_eq!(buf.iter().sum::<f64>(), expect);
        }
        d.barrier(clk);
        (d.stats.snapshot(), homes)
    });
    let (s2, homes) = &out[2];
    assert_eq!(&homes[..4], &[0, 0, 0, 0], "first half migrated to node 0");
    assert_eq!(&homes[4..], &[1, 1, 1, 1], "second half migrated to node 1");
    assert_eq!(s2.range_fetches, 2, "one coalesced fetch per home");
    assert_eq!(s2.range_fetch_pages, N as u64);
}

// ---------------------------------------------------------------------------
// Randomized stress tests (deterministic: driven by the 46-bit NAS LCG via
// parade-testkit, so every run replays the identical op sequence).
// ---------------------------------------------------------------------------

/// Each node writes TestRng-derived values at TestRng-derived offsets inside
/// its own word stripe (word % nnodes == node). After a barrier every node
/// must observe the same merged image, and that image must equal a local
/// replay of the very same seeded streams.
#[test]
fn randomized_disjoint_writes_converge_reproducibly() {
    use parade_testkit::rng::TestRng;

    const NODES: usize = 4;
    const WORDS: usize = 4096 / 8 * 4; // 4 pages of i64 words
    const ROUNDS: usize = 3;
    const OPS_PER_ROUND: usize = 48;
    const BASE_SEED: u64 = 0xD5A0_2003;

    // Replay the per-node streams to build the expected final image. Within a
    // round a node may hit the same word twice; program order wins, and
    // stripes are disjoint across nodes, so a sequential replay is exact.
    let mut model = vec![0i64; WORDS];
    for node in 0..NODES {
        let mut rng = TestRng::derive(BASE_SEED, node as u64);
        let stripe: Vec<usize> = (0..WORDS).filter(|w| w % NODES == node).collect();
        for _round in 0..ROUNDS {
            for _ in 0..OPS_PER_ROUND {
                let w = stripe[rng.range_usize(0, stripe.len() - 1)];
                let v = rng.next_u64() as i64;
                model[w] = v;
            }
        }
    }
    let expected_sum: i64 = model.iter().fold(0i64, |a, &v| a.wrapping_add(v));

    let run_once = || {
        run_nodes(NODES, small_cfg(), NetProfile::zero(), |d, clk| {
            let r = alloc_on(&d, WORDS * 8);
            d.barrier(clk);
            let node = d.node();
            let mut rng = TestRng::derive(BASE_SEED, node as u64);
            let stripe: Vec<usize> = (0..WORDS).filter(|w| w % NODES == node).collect();
            for _round in 0..ROUNDS {
                for _ in 0..OPS_PER_ROUND {
                    let w = stripe[rng.range_usize(0, stripe.len() - 1)];
                    let v = rng.next_u64() as i64;
                    d.write::<i64>(r, w * 8, v, clk);
                }
                d.barrier(clk);
            }
            (0..WORDS)
                .map(|w| d.read::<i64>(r, w * 8, clk))
                .fold(0i64, |a, v| a.wrapping_add(v))
        })
    };

    let first = run_once();
    for (node, &sum) in first.iter().enumerate() {
        assert_eq!(sum, expected_sum, "node {node} diverged from seeded replay");
    }
    // Run-to-run reproducibility: a second cluster with the same seeds must
    // land on the identical image.
    let second = run_once();
    assert_eq!(first, second, "same seeds must reproduce the same image");
}

/// Lock-protected read-modify-writes at TestRng-chosen counter slots. The
/// per-slot totals are exactly computable by replaying the seeded streams,
/// so any lost update or stale read shows up as an exact-count mismatch.
#[test]
fn randomized_lock_protected_counters_are_exact() {
    use parade_testkit::rng::TestRng;

    const NODES: usize = 3;
    const SLOTS: usize = 4;
    const OPS: usize = 24;
    const BASE_SEED: u64 = 0x10C4_BEEF;

    let mut expected = vec![0i64; SLOTS];
    for node in 0..NODES {
        let mut rng = TestRng::derive(BASE_SEED, node as u64);
        for _ in 0..OPS {
            let slot = rng.range_usize(0, SLOTS - 1);
            let inc = rng.range_i64(1, 9);
            expected[slot] += inc;
        }
    }

    let out = run_nodes(NODES, small_cfg(), NetProfile::zero(), |d, clk| {
        let r = alloc_on(&d, SLOTS * 8);
        d.barrier(clk);
        let mut rng = TestRng::derive(BASE_SEED, d.node() as u64);
        for _ in 0..OPS {
            let slot = rng.range_usize(0, SLOTS - 1);
            let inc = rng.range_i64(1, 9);
            d.lock_acquire(slot as u64, clk);
            let cur = d.read::<i64>(r, slot * 8, clk);
            d.write::<i64>(r, slot * 8, cur + inc, clk);
            d.lock_release(slot as u64, clk);
        }
        d.barrier(clk);
        (0..SLOTS)
            .map(|s| d.read::<i64>(r, s * 8, clk))
            .collect::<Vec<i64>>()
    });
    for (node, counters) in out.iter().enumerate() {
        assert_eq!(counters, &expected, "node {node} observed wrong totals");
    }
}
