//! Deterministic test RNG built on the NAS 46-bit LCG.
//!
//! The generator is the same `x_{k+1} = a·x_k mod 2^46`, `a = 5^13` linear
//! congruential generator that `parade-kernels::nasrng` implements for the
//! NAS benchmarks (a property test in `tests/properties.rs` cross-checks
//! the two streams bit-for-bit). On top of the raw stream, [`TestRng`]
//! derives the integer/byte/range draws the property harness needs.
//!
//! Low-order bits of a power-of-two-modulus LCG are weak (the LSB of an odd
//! seed times an odd multiplier is always 1), so every derived draw uses
//! only the *top* bits of each 46-bit state.

const MASK46: u64 = (1u64 << 46) - 1;

/// The NAS multiplier `a = 5^13`.
pub const NAS_A: u64 = 1_220_703_125;

/// The canonical NAS seed component `314159265`.
pub const NAS_SEED: u64 = 314_159_265;

#[inline]
fn mul46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MASK46 as u128) as u64
}

/// `a^n mod 2^46` by binary exponentiation (the NPB jump-ahead trick).
pub fn pow46(mut a: u64, mut n: u64) -> u64 {
    let mut r: u64 = 1;
    a &= MASK46;
    while n > 0 {
        if n & 1 == 1 {
            r = mul46(r, a);
        }
        a = mul46(a, a);
        n >>= 1;
    }
    r
}

/// Mix an arbitrary 64-bit seed into a non-degenerate (odd, 46-bit) LCG
/// state. SplitMix64-style finalizer; only used for seeding, never for
/// draws.
fn mix_seed(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z & MASK46) | 1
}

/// A deterministic RNG for tests: NAS LCG stream + derived draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary `u64`. Any seed (including 0) yields a
    /// full-period stream; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: mix_seed(seed),
        }
    }

    /// The *raw* NAS stream: state exactly `seed & MASK46`, no mixing.
    /// Produces the bit-identical `next_f64` sequence of
    /// `parade_kernels::nasrng::NasRng::nas(seed)`.
    pub fn nas_stream(seed: u64) -> Self {
        TestRng {
            state: seed & MASK46,
        }
    }

    /// Current 46-bit LCG state (for cross-checking against `NasRng`).
    pub fn state(&self) -> u64 {
        self.state
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        self.state = mul46(self.state, NAS_A);
        self.state
    }

    /// `randlc`: uniform deviate in (0, 1), bit-identical to the NAS
    /// sequence when constructed via [`TestRng::nas_stream`].
    pub fn next_f64(&mut self) -> f64 {
        self.next_raw() as f64 * 2f64.powi(-46)
    }

    /// Skip `n` draws in O(log n).
    pub fn skip(&mut self, n: u64) {
        self.state = mul46(self.state, pow46(NAS_A, n));
    }

    /// 32 uniform bits (the top bits of one LCG step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 14) as u32
    }

    /// 64 uniform bits (two LCG steps).
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    pub fn next_byte(&mut self) -> u8 {
        (self.next_raw() >> 38) as u8
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_raw() >> 45 == 1
    }

    /// Uniform in `[0, n)` via multiply-shift (no weak low bits, no modulo
    /// bias worth caring about in a test generator). Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// An arbitrary `f64` *bit pattern*: includes negative zero, subnormals,
    /// infinities and NaNs. For round-trip properties compared via
    /// `to_bits`.
    pub fn f64_bits(&mut self) -> f64 {
        f64::from_bits(self.next_u64())
    }

    /// Fill `out` with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for b in out {
            *b = self.next_byte();
        }
    }

    /// A fresh `Vec<u8>` of length drawn from `[min_len, max_len)`.
    pub fn bytes_vec(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let n = if min_len + 1 >= max_len {
            min_len
        } else {
            self.range_usize(min_len, max_len)
        };
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// A string of length in `[min_len, max_len)` over `charset`.
    pub fn string_from(&mut self, charset: &[char], min_len: usize, max_len: usize) -> String {
        let n = if min_len + 1 >= max_len {
            min_len
        } else {
            self.range_usize(min_len, max_len)
        };
        (0..n)
            .map(|_| charset[self.range_usize(0, charset.len())])
            .collect()
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }

    /// Derive an independent child stream (used to give each property case
    /// its own stream from a base seed and case index).
    pub fn derive(base_seed: u64, index: u64) -> TestRng {
        TestRng::new(base_seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(43);
        assert_ne!(TestRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = TestRng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn nas_stream_matches_reference_first_value() {
        // x1 = 314159265 * 1220703125 mod 2^46 (same as nasrng's test).
        let mut r = TestRng::nas_stream(NAS_SEED);
        let v = r.next_f64();
        let expect =
            ((NAS_SEED as u128 * NAS_A as u128) & ((1u128 << 46) - 1)) as f64 * 2f64.powi(-46);
        assert_eq!(v, expect);
    }

    #[test]
    fn skip_matches_iteration() {
        for n in [0u64, 1, 5, 1000] {
            let mut seq = TestRng::new(7);
            for _ in 0..n {
                seq.next_raw();
            }
            let mut jmp = TestRng::new(7);
            jmp.skip(n);
            assert_eq!(seq.state(), jmp.state(), "n={n}");
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = TestRng::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_usize(3, 7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..2000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bytes_are_roughly_uniform() {
        let mut r = TestRng::new(1);
        let mut counts = [0u32; 256];
        for _ in 0..65536 {
            counts[r.next_byte() as usize] += 1;
        }
        // Every byte value should appear; expectation is 256 each.
        assert!(counts.iter().all(|&c| c > 100), "{counts:?}");
    }
}
