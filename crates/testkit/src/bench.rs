//! A small, offline micro-benchmark harness (criterion replacement).
//!
//! Protocol per benchmark:
//!
//! 1. **Calibrate** — double the iteration count until one timed batch
//!    exceeds ~1/10 of the target sample time, then size batches to the
//!    target.
//! 2. **Warm up** — run a few untimed batches.
//! 3. **Sample** — time `samples` batches and report the **median** (plus
//!    min/mean/max) per-iteration time. Median-of-N is robust against the
//!    scheduler hiccups that plague wall-clock micro-benchmarks.
//!
//! Results print as a table; set `PARADE_BENCH_JSON=<dir>` (or `1` for the
//! current directory) to also write `BENCH_<suite>.json` for machine
//! consumption.
//!
//! Benches run with `harness = false`, so the harness parses the standard
//! `cargo bench` argument conventions it needs: a positional substring
//! filter, and `--skip`-style smoke mode (any arg containing "skip" skips
//! the heavy sweeps — preexisting repo convention).

use std::time::Instant;

/// Harness options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Timed batches per benchmark.
    pub samples: u32,
    /// Untimed warmup batches.
    pub warmup_batches: u32,
    /// Target wall time per timed batch, nanoseconds.
    pub target_batch_ns: u64,
    /// Hard cap on iterations per batch (memory bound for batched setup).
    pub max_iters_per_batch: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            samples: 15,
            warmup_batches: 3,
            target_batch_ns: 20_000_000,
            max_iters_per_batch: 1 << 22,
        }
    }
}

/// One benchmark's timing summary (per-iteration nanoseconds).
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters_per_batch: u64,
    pub samples: Vec<f64>,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl BenchResult {
    fn from_samples(name: &str, iters: u64, mut per_iter_ns: Vec<f64>) -> Self {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        BenchResult {
            name: name.to_string(),
            iters_per_batch: iters,
            median_ns: median,
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            samples: per_iter_ns,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark suite driver.
pub struct Bench {
    suite: String,
    opts: BenchOpts,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Create a suite, reading the `cargo bench` CLI args: the first
    /// positional argument is a substring filter on benchmark names.
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Bench {
            suite: suite.to_string(),
            opts: BenchOpts::default(),
            filter,
            results: Vec::new(),
        }
    }

    pub fn with_opts(mut self, opts: BenchOpts) -> Self {
        self.opts = opts;
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmark `f` called in a tight loop.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if !self.selected(name) {
            return;
        }
        // Calibrate.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed().as_nanos() as u64;
            if elapsed >= self.opts.target_batch_ns / 10 || iters >= self.opts.max_iters_per_batch {
                if elapsed > 0 && elapsed < self.opts.target_batch_ns / 10 {
                    break; // capped
                }
                iters = (iters * self.opts.target_batch_ns / elapsed.max(1))
                    .clamp(1, self.opts.max_iters_per_batch);
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.opts.warmup_batches {
            for _ in 0..iters {
                f();
            }
        }
        let mut per_iter = Vec::with_capacity(self.opts.samples as usize);
        for _ in 0..self.opts.samples {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.push(BenchResult::from_samples(name, iters, per_iter));
    }

    /// Benchmark `f` over inputs produced by `setup`, excluding setup time
    /// (criterion's `iter_batched`). Batches are capped at 1024 inputs.
    pub fn bench_batched<T, S: FnMut() -> T, F: FnMut(T)>(
        &mut self,
        name: &str,
        mut setup: S,
        mut f: F,
    ) {
        if !self.selected(name) {
            return;
        }
        // Calibrate on one input.
        let t = Instant::now();
        f(setup());
        let one = (t.elapsed().as_nanos() as u64).max(1);
        let iters = (self.opts.target_batch_ns / one).clamp(1, 1024);
        for _ in 0..self.opts.warmup_batches.min(1) {
            let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
            for x in inputs {
                f(x);
            }
        }
        let mut per_iter = Vec::with_capacity(self.opts.samples as usize);
        for _ in 0..self.opts.samples {
            let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for x in inputs {
                f(x);
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.push(BenchResult::from_samples(name, iters, per_iter));
    }

    /// Record a deterministic metric (virtual time, message count, ...) as
    /// a single-sample result. Unlike `bench`, the value is whatever the
    /// caller measured — machine-independent metrics recorded this way are
    /// what CI regression gates can compare without tolerance for host
    /// noise.
    pub fn record(&mut self, name: &str, value: f64) {
        if !self.selected(name) {
            return;
        }
        self.push(BenchResult::from_samples(name, 1, vec![value]));
    }

    fn push(&mut self, r: BenchResult) {
        println!(
            "{:<44} median {:>12}/iter  (min {}, max {}, {} samples x {} iters)",
            format!("{}/{}", self.suite, r.name),
            fmt_ns(r.median_ns),
            fmt_ns(r.min_ns),
            fmt_ns(r.max_ns),
            r.samples.len(),
            r.iters_per_batch,
        );
        self.results.push(r);
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Render the suite as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.suite)));
        out.push_str("  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median\": {:.2}, \"mean\": {:.2}, \"min\": {:.2}, \
                 \"max\": {:.2}, \"samples\": {}, \"iters_per_batch\": {}}}{}\n",
                json_string(&r.name),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples.len(),
                r.iters_per_batch,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Print the summary and, if `PARADE_BENCH_JSON` is set, write
    /// `BENCH_<suite>.json` into the named directory (`1`/empty → cwd).
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("{}: no benchmarks selected", self.suite);
            return;
        }
        if let Ok(dir) = std::env::var("PARADE_BENCH_JSON") {
            let dir = if dir.is_empty() || dir == "1" {
                ".".to_string()
            } else {
                dir
            };
            let path = format!("{dir}/BENCH_{}.json", self.suite);
            let _ = std::fs::create_dir_all(&dir);
            match std::fs::write(&path, self.to_json()) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOpts {
        BenchOpts {
            samples: 5,
            warmup_batches: 1,
            target_batch_ns: 50_000,
            max_iters_per_batch: 1 << 16,
        }
    }

    #[test]
    fn bench_produces_sane_stats() {
        let mut b = Bench::from_args("testsuite").with_opts(quick_opts());
        let mut acc = 0u64;
        b.bench("wrapping_mul", || {
            acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(1));
        });
        let r = &b.results()[0];
        assert_eq!(r.samples.len(), 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bench::from_args("testsuite").with_opts(quick_opts());
        b.bench_batched(
            "consume_vec",
            || vec![1u8; 64],
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn record_is_a_single_exact_sample() {
        let mut b = Bench::from_args("suite").with_opts(quick_opts());
        b.record("flush_msgs", 3.0);
        let r = &b.results()[0];
        assert_eq!(r.samples, vec![3.0]);
        assert_eq!(r.median_ns, 3.0);
        assert_eq!(r.iters_per_batch, 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut b = Bench::from_args("suite").with_opts(quick_opts());
        b.bench("noop", || {
            std::hint::black_box(0u8);
        });
        let j = b.to_json();
        assert!(j.contains("\"suite\": \"suite\""));
        assert!(j.contains("\"name\": \"noop\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
