//! The deterministic property runner.
//!
//! Each property runs `cases` times. Case `i` gets its own RNG seeded from
//! `base_seed + i·φ` (a single printable `u64`), so any failing case is
//! reproducible from one number. On failure the input is greedily shrunk
//! via [`Shrink`](crate::shrink::Shrink) and the runner panics with a
//! message containing:
//!
//! * the case seed, and a `PARADE_PROP_SEED=0x… cargo test <name>` line
//!   that re-runs exactly that case (same generated input, same
//!   deterministic shrink, same minimal counterexample);
//! * the minimal (shrunk) counterexample, `Debug`-printed;
//! * the original panic message of the property body.
//!
//! Environment knobs:
//!
//! * `PARADE_PROP_SEED` — run only the case with this seed (hex `0x…` or
//!   decimal). This is what the printed reproduction line sets.
//! * `PARADE_PROP_CASES` — override the number of cases for every property
//!   (e.g. crank to 10⁴ for a soak run).

use std::panic::{self, AssertUnwindSafe};

use crate::rng::TestRng;
use crate::shrink::Shrink;

/// Golden-ratio stride between case seeds: consecutive cases get
/// well-separated, individually printable seeds.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Cap on total shrink candidate evaluations.
    pub max_shrink_steps: u32,
    /// Base seed combined with the case index.
    pub base_seed: u64,
    /// If set, run exactly one case with this seed (from
    /// `PARADE_PROP_SEED`).
    pub forced_seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_steps: 4096,
            base_seed: 0x5EED_0001_4ADE_2003,
            forced_seed: None,
        }
    }
}

impl Config {
    /// Default config with environment overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(s) = std::env::var("PARADE_PROP_CASES") {
            if let Ok(n) = s.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Ok(s) = std::env::var("PARADE_PROP_SEED") {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse::<u64>().ok()
            };
            if parsed.is_none() {
                eprintln!("warning: unparsable PARADE_PROP_SEED={s:?}; ignoring");
            }
            cfg.forced_seed = parsed;
        }
        cfg
    }

    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }
}

fn case_seed(base: u64, i: u64) -> u64 {
    base.wrapping_add(i.wrapping_mul(CASE_STRIDE))
}

std::thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses printing for
/// panics the runner is going to catch, and delegates everything else to
/// the previous hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `prop` against `value`, catching panics. `Ok(())` means the property
/// held. Panic output is suppressed (the runner reports failures itself).
fn run_case<T, P: Fn(&T)>(prop: &P, value: &T) -> Result<(), String> {
    QUIET_PANICS.with(|q| q.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    r.map_err(panic_message)
}

/// Check a property: generate `cfg.cases` inputs with `gen` and run `prop`
/// (which fails by panicking) on each. See the module docs for the failure
/// report and reproduction contract.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: std::fmt::Debug + Clone + Shrink,
    G: Fn(&mut TestRng) -> T,
    P: Fn(&T),
{
    install_quiet_hook();
    let seeds: Vec<(u64, u64)> = match cfg.forced_seed {
        Some(s) => vec![(0, s)],
        None => (0..cfg.cases as u64)
            .map(|i| (i, case_seed(cfg.base_seed, i)))
            .collect(),
    };
    let total = seeds.len();
    for (i, seed) in seeds {
        let mut rng = TestRng::new(seed);
        let value = gen(&mut rng);
        if let Err(first_msg) = run_case(&prop, &value) {
            let (minimal, msg, shrink_steps) =
                shrink_loop(value, first_msg, &prop, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed (case {}/{total}, seed 0x{seed:016x}).\n\
                 \u{20}  reproduce: PARADE_PROP_SEED=0x{seed:016x} cargo test -q {name}\n\
                 \u{20}  minimal counterexample (after {shrink_steps} shrink steps): {minimal:?}\n\
                 \u{20}  failure: {msg}",
                i + 1,
            );
        }
    }
}

/// Greedy shrink: repeatedly jump to the first still-failing candidate.
/// Deterministic for a given failing value, bounded by `max_steps`.
fn shrink_loop<T, P>(mut best: T, mut msg: String, prop: &P, max_steps: u32) -> (T, String, u32)
where
    T: Clone + Shrink,
    P: Fn(&T),
{
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for cand in best.shrink() {
            steps += 1;
            if let Err(m) = run_case(prop, &cand) {
                best = cand;
                msg = m;
                continue 'outer;
            }
            if steps >= max_steps {
                break 'outer;
            }
        }
        break;
    }
    (best, msg, steps)
}

/// Declare a property test.
///
/// ```ignore
/// prop!(fn sum_is_commutative((a, b) in |r: &mut TestRng| (r.next_u32(), r.next_u32())) {
///     assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
/// });
/// // Fewer cases for expensive properties:
/// prop!(cases = 12, fn heavy(x in |r: &mut TestRng| r.range_usize(1, 5)) { ... });
/// ```
///
/// The generator is any `Fn(&mut TestRng) -> T` where
/// `T: Debug + Clone + Shrink`; the body fails by panicking (plain
/// `assert!`/`assert_eq!`).
#[macro_export]
macro_rules! prop {
    (cases = $cases:expr, fn $name:ident($pat:pat in $gen:expr) $body:block) => {
        #[test]
        fn $name() {
            let __cfg = $crate::runner::Config::from_env().with_cases($cases);
            $crate::runner::check(stringify!($name), &__cfg, $gen, |__input| {
                let $pat = __input.clone();
                $body
            });
        }
    };
    (fn $name:ident($pat:pat in $gen:expr) $body:block) => {
        #[test]
        fn $name() {
            let __cfg = $crate::runner::Config::from_env();
            $crate::runner::check(stringify!($name), &__cfg, $gen, |__input| {
                let $pat = __input.clone();
                $body
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            forced_seed: None,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "always_true",
            &cfg(64),
            |r| r.next_u64(),
            |_| {
                counter.set(counter.get() + 1);
            },
        );
        n += counter.get();
        assert_eq!(n, 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            check(
                "fails_over_100",
                &cfg(256),
                |r| r.range_u64(0, 1000),
                |&v| assert!(v <= 100, "v too big"),
            );
        }));
        let msg = panic_message(r.unwrap_err());
        assert!(msg.contains("fails_over_100"), "{msg}");
        assert!(msg.contains("PARADE_PROP_SEED=0x"), "{msg}");
        // Greedy shrink on `v > 100` must land exactly on the boundary 101:
        // shrink candidates include v-1, so the minimum failing value wins.
        assert!(
            msg.contains("counterexample") && msg.contains("101"),
            "{msg}"
        );
        assert!(msg.contains("v too big"), "{msg}");
    }

    #[test]
    fn reproduction_is_deterministic() {
        // Extract the seed from a failure message, re-run with forced_seed,
        // and demand the identical minimal counterexample line.
        let fail = |which: &str, forced: Option<u64>| -> String {
            let c = Config {
                cases: 128,
                forced_seed: forced,
                ..Config::default()
            };
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                check(
                    which,
                    &c,
                    |r| r.bytes_vec(0, 40),
                    |v| assert!(!v.contains(&7), "contains 7"),
                );
            }));
            panic_message(r.unwrap_err())
        };
        let first = fail("no_sevens", None);
        let seed_hex = first
            .split("PARADE_PROP_SEED=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap();
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).unwrap();
        let second = fail("no_sevens", Some(seed));
        let minimal = |m: &str| {
            m.lines()
                .find(|l| l.contains("minimal counterexample"))
                .unwrap()
                .to_string()
        };
        // Same seed → same generated input → same deterministic shrink.
        assert_eq!(minimal(&first), minimal(&second));
        assert!(
            second.contains("[7]"),
            "fully shrunk to the single byte 7: {second}"
        );
    }

    prop!(fn macro_declared_property_holds(v in |r: &mut TestRng| r.range_i64(-50, 50)) {
        assert_eq!(v, v);
    });

    prop!(cases = 7, fn macro_with_cases(x in |r: &mut TestRng| r.next_bool()) {
        let _ = x;
    });
}
