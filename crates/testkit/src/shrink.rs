//! Greedy input shrinking.
//!
//! [`Shrink::shrink`] proposes a bounded list of strictly "smaller"
//! candidates for a failing input. The runner re-tests candidates in order
//! and greedily restarts from the first one that still fails, so shrinking
//! is deterministic given the failing value — which keeps the
//! seed-reproduction contract: re-running a printed seed regenerates the
//! same original input *and* the same minimal counterexample.
//!
//! Candidates must head toward a well-founded "zero" (0, empty, `false`) so
//! the greedy loop terminates. Implementations cap how many candidates they
//! propose per step; the runner additionally caps total steps.

/// Types that can propose smaller versions of themselves.
pub trait Shrink: Sized {
    /// Strictly-smaller candidates, most aggressive first. An empty vector
    /// means fully shrunk.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v.saturating_sub(1)] {
                    if c < v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                for c in [0, v / 2, v - v.signum()] {
                    if c.abs() < v.abs() && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

shrink_signed!(i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0];
        if v.is_finite() {
            let t = v.trunc();
            if t != v {
                out.push(t);
            }
            if (v / 2.0) != v {
                out.push(v / 2.0);
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<Self> {
        if *self == 'a' {
            Vec::new()
        } else {
            vec!['a']
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: drop everything, halves, single
        // elements (capped so huge vectors don't explode the search).
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for i in 0..n.min(16) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Then element-wise shrinks (first candidate only, capped).
        for i in 0..n.min(16) {
            if let Some(smaller) = self[i].shrink().into_iter().next() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        self.chars()
            .collect::<Vec<char>>()
            .shrink()
            .into_iter()
            .map(|cs| cs.into_iter().collect())
            .collect()
    }
}

impl Shrink for () {}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let (a, b, c) = self;
        let mut out: Vec<Self> = a
            .shrink()
            .into_iter()
            .map(|x| (x, b.clone(), c.clone()))
            .collect();
        out.extend(b.shrink().into_iter().map(|x| (a.clone(), x, c.clone())));
        out.extend(c.shrink().into_iter().map(|x| (a.clone(), b.clone(), x)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone, D: Shrink + Clone> Shrink
    for (A, B, C, D)
{
    fn shrink(&self) -> Vec<Self> {
        let (a, b, c, d) = self;
        let mut out: Vec<Self> = a
            .shrink()
            .into_iter()
            .map(|x| (x, b.clone(), c.clone(), d.clone()))
            .collect();
        out.extend(
            b.shrink()
                .into_iter()
                .map(|x| (a.clone(), x, c.clone(), d.clone())),
        );
        out.extend(
            c.shrink()
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x, d.clone())),
        );
        out.extend(
            d.shrink()
                .into_iter()
                .map(|x| (a.clone(), b.clone(), c.clone(), x)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_heads_to_zero() {
        assert_eq!(100u64.shrink()[0], 0);
        assert!(0u64.shrink().is_empty());
        // Greedy descent terminates.
        let mut v = u64::MAX;
        let mut steps = 0;
        while let Some(&c) = v.shrink().first() {
            v = c;
            steps += 1;
            assert!(steps < 10);
        }
        assert_eq!(v, 0);
    }

    #[test]
    fn signed_shrinks_toward_zero_from_both_sides() {
        assert!((-8i64).shrink().contains(&0));
        assert!((-8i64).shrink().iter().all(|c| c.abs() < 8));
        assert!(0i64.shrink().is_empty());
    }

    #[test]
    fn vec_candidates_are_smaller_or_elementwise_shrunk() {
        let v = vec![3u8, 9, 1];
        let cands = v.shrink();
        assert_eq!(cands[0], Vec::<u8>::new());
        assert!(cands.iter().any(|c| c.len() == 2));
        assert!(Vec::<u8>::new().shrink().is_empty());
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let cands = (4u64, 2u64).shrink();
        assert!(cands.contains(&(0, 2)));
        assert!(cands.contains(&(4, 0)));
        assert!((0u64, 0u64).shrink().is_empty());
    }
}
