//! # parade-testkit — deterministic, dependency-free test harness
//!
//! In-repo replacement for the `proptest` + `rand` + `criterion` stack, so
//! the workspace builds and tests **offline with zero external crates**
//! (the hermetic-build policy; see README.md).
//!
//! Three pieces:
//!
//! * [`rng::TestRng`] — a seeded generator built on the NAS 46-bit LCG
//!   (the same `a = 5^13` recurrence as `parade-kernels::nasrng`, which a
//!   property test cross-checks bit-for-bit).
//! * [`runner`] + the [`prop!`] macro — a property-testing harness: every
//!   case is derived from one printable seed, failures print a
//!   `PARADE_PROP_SEED=0x…` reproduction line, and inputs are greedily
//!   shrunk via [`shrink::Shrink`] to a deterministic minimal
//!   counterexample.
//! * [`bench::Bench`] — a micro-benchmark harness (calibrated batches,
//!   warmup, median-of-N) with optional `BENCH_<suite>.json` emission via
//!   `PARADE_BENCH_JSON`.
//!
//! Plus [`watchdog::run_with_timeout`], a deadlock watchdog for tests that
//! drive blocking runtimes (used by the chaos/fault-injection suite).
//!
//! ```ignore
//! use parade_testkit::prelude::*;
//!
//! prop!(fn addition_commutes((a, b) in |r: &mut TestRng| (r.next_u32(), r.next_u32())) {
//!     assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//! });
//! ```

pub mod bench;
pub mod rng;
pub mod runner;
pub mod shrink;
pub mod watchdog;

/// The names property tests and benches actually use.
pub mod prelude {
    pub use crate::bench::{Bench, BenchOpts};
    pub use crate::prop;
    pub use crate::rng::TestRng;
    pub use crate::runner::Config;
    pub use crate::shrink::Shrink;
    pub use crate::watchdog::run_with_timeout;
}
