//! Deadlock watchdog for tests that drive blocking runtimes.
//!
//! The simulated fabric blocks receivers in *real* time while virtual time
//! stands still, so a protocol bug (a lost wakeup, a reorder-parked message
//! nobody flushes) shows up as a test that hangs forever rather than one
//! that fails. [`run_with_timeout`] bounds that risk: the workload runs on
//! its own named thread and the calling test panics with a diagnostic if
//! the thread does not finish within the real-time budget — a stand-in for
//! "virtual time stopped advancing", which a hung simulation always implies.

use std::panic;
use std::sync::mpsc;
use std::time::Duration;

/// Run `f` on a watchdog-supervised thread, panicking if it does not
/// complete within `timeout` (real time).
///
/// * Returns `f`'s value on normal completion.
/// * Re-raises `f`'s panic payload on the caller if the workload panics,
///   so assertion messages (e.g. a `PARADE_PROP_SEED` repro line) survive.
/// * Panics with a "deadlock watchdog" message naming `name` on timeout.
///   The stuck thread is left blocked (detached); the process is expected
///   to exit with the test failure.
pub fn run_with_timeout<R, F>(name: &str, timeout: Duration, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            // An explicit send (rather than relying on drop) keeps the
            // "finished" signal ordered before the thread becomes joinable.
            let result = panic::catch_unwind(panic::AssertUnwindSafe(f));
            let _ = tx.send(());
            result
        })
        .expect("spawn watchdog workload thread");
    match rx.recv_timeout(timeout) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            match handle.join().expect("watchdog thread vanished") {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!(
                "deadlock watchdog: workload '{name}' did not finish within \
                 {timeout:?} — virtual time has most likely stopped advancing \
                 (blocked receive with no matching send?)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_the_result() {
        let v = run_with_timeout("quick", Duration::from_secs(5), || 6 * 7);
        assert_eq!(v, 42);
    }

    #[test]
    fn reraises_workload_panics() {
        let err = panic::catch_unwind(|| {
            run_with_timeout("panicky", Duration::from_secs(5), || {
                panic!("inner assertion text");
            })
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("inner assertion text"), "{msg}");
    }

    #[test]
    fn times_out_a_stuck_workload() {
        let err = panic::catch_unwind(|| {
            run_with_timeout("stuck", Duration::from_millis(50), || {
                // A receive that can never complete, in miniature.
                std::thread::sleep(Duration::from_secs(3600));
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock watchdog"), "{msg}");
        assert!(msg.contains("'stuck'"), "{msg}");
    }
}
