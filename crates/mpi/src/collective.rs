//! Collective operations.
//!
//! ParADE only strictly needs `MPI_Bcast` and `MPI_Allreduce` (§5.3), plus
//! barrier for the runtime; `reduce`, `gather` and `allgather` are provided
//! for the MPI baseline versions of the benchmarks. Algorithms are the
//! classic tree/dissemination schemes so message counts grow as
//! `O(P log P)` — the property that makes collectives cheaper than
//! lock-based SDSM synchronization as the node count grows.

use parade_net::Bytes;

use parade_net::VClock;
use parade_trace::{self as trace, EventKind};

use crate::comm::Communicator;
use crate::datatype;
use crate::topology::CollectiveTopology;

/// Reduction operators for typed allreduce/reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    pub fn fold_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    pub fn fold_i64(self, a: i64, b: i64) -> i64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

// Phase labels inside one collective sequence number.
const PH_BARRIER_BASE: u8 = 0; // rounds 0..15 (phase = round)
const PH_BCAST: u8 = 0;
const PH_REDUCE: u8 = 1;
const PH_ALLRED_BCAST: u8 = 2;
const PH_GATHER: u8 = 3;

impl Communicator {
    /// The topology to run two-level algorithms over, when one is attached
    /// and actually groups ranks (an all-singleton topology degenerates to
    /// the flat algorithms exactly, so it takes the flat path directly).
    fn hier(&self) -> Option<&CollectiveTopology> {
        self.topo.as_deref().filter(|t| !t.is_flat())
    }

    /// Barrier. Flat: dissemination over all ranks — ⌈log₂ P⌉ rounds,
    /// every node sends and receives one small message per round. With an
    /// SMP topology attached: ranks arrive through their group's
    /// shared-memory barrier, the elected leaders run the dissemination
    /// rounds among themselves (`O(L log L)` fabric messages for `L`
    /// leaders), and the release fans back out through shared memory.
    pub fn barrier(&self, clock: &mut VClock) {
        let mut st = self.coll_guard.lock();
        let seq = st.seq;
        st.seq += 1;
        let size = self.size();
        if size == 1 {
            return;
        }
        let rank = self.rank();
        trace::begin(EventKind::MpiBarrier, clock.now());
        if let Some(t) = self.hier() {
            t.deposit_and_sync(rank, seq, None, clock);
            if t.is_leader(rank) {
                self.leaders_barrier(t, seq, clock);
                t.publish(rank, seq, Bytes::new(), clock);
            } else {
                let _ = t.collect(rank, seq, clock);
            }
            trace::end(EventKind::MpiBarrier, clock.now());
            return;
        }
        let mut round: u8 = 0;
        let mut dist = 1usize;
        while dist < size {
            let dst = (rank + dist) % size;
            let src = (rank + size - dist) % size;
            self.coll_send(dst, seq, PH_BARRIER_BASE + round, Bytes::new(), clock);
            let _ = self.coll_recv(src, seq, PH_BARRIER_BASE + round, clock);
            trace::instant(EventKind::CollRound, round as u64, clock.now());
            dist <<= 1;
            round += 1;
        }
        trace::end(EventKind::MpiBarrier, clock.now());
    }

    /// Broadcast of raw bytes from `root`: binomial tree over all ranks,
    /// or — with an SMP topology — binomial tree over the group leaders
    /// with shared-memory distribution inside each group. Non-root
    /// callers' `buf` is replaced with the received payload.
    pub fn bcast_bytes(&self, root: usize, buf: &mut Bytes, clock: &mut VClock) {
        let mut st = self.coll_guard.lock();
        let seq = st.seq;
        st.seq += 1;
        trace::begin_arg(EventKind::MpiBcast, buf.len() as u64, clock.now());
        if let Some(t) = self.hier() {
            self.hier_bcast(t, root, buf, seq, clock);
        } else {
            self.bcast_inner(root, buf, seq, PH_BCAST, clock);
        }
        trace::end(EventKind::MpiBcast, clock.now());
    }

    fn hier_bcast(
        &self,
        t: &CollectiveTopology,
        root: usize,
        buf: &mut Bytes,
        seq: u64,
        clock: &mut VClock,
    ) {
        let rank = self.rank();
        // Only the root deposits data; everyone joins the group barrier.
        let contrib = (rank == root).then(|| buf.to_vec());
        let folded = t.deposit_and_sync(rank, seq, contrib, clock);
        if t.is_leader(rank) {
            let mut folded = folded.expect("leader sees group contributions");
            let mut b = if t.group_of(rank) == t.group_of(root) {
                Bytes::from(folded[t.member_index(root)].take().expect("root deposited"))
            } else {
                Bytes::new()
            };
            let root_pos = t.leader_position(t.leader_of(root));
            self.leaders_bcast(t, root_pos, &mut b, seq, PH_BCAST, clock);
            *buf = t.publish(rank, seq, b, clock);
        } else {
            *buf = t.collect(rank, seq, clock);
        }
    }

    fn bcast_inner(&self, root: usize, buf: &mut Bytes, seq: u64, phase: u8, clock: &mut VClock) {
        let size = self.size();
        if size == 1 {
            return;
        }
        let rank = self.rank();
        let relrank = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if relrank & mask != 0 {
                let src = (relrank - mask + root) % size;
                *buf = self.coll_recv(src, seq, phase, clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relrank + mask < size {
                let dst = (relrank + mask + root) % size;
                self.coll_send(dst, seq, phase, buf.clone(), clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
            }
            mask >>= 1;
        }
    }

    /// Broadcast a `f64` slice in place.
    pub fn bcast_f64s(&self, root: usize, xs: &mut [f64], clock: &mut VClock) {
        let mut buf = if self.rank() == root {
            datatype::f64s_to_bytes(xs)
        } else {
            Bytes::new()
        };
        self.bcast_bytes(root, &mut buf, clock);
        if self.rank() != root {
            datatype::read_f64s_into(&buf, xs);
        }
    }

    /// Binomial-tree reduction to `root` with a user combiner.
    ///
    /// `buf` holds this rank's contribution on entry; on exit at the root it
    /// holds the combined value, elsewhere it is unspecified. `combine`
    /// folds a peer's encoded contribution into `buf`.
    pub fn reduce_with(
        &self,
        root: usize,
        buf: &mut Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
        clock: &mut VClock,
    ) {
        let mut st = self.coll_guard.lock();
        let seq = st.seq;
        st.seq += 1;
        trace::begin(EventKind::MpiReduce, clock.now());
        self.reduce_inner(root, buf, combine, seq, clock);
        trace::end(EventKind::MpiReduce, clock.now());
    }

    fn reduce_inner(
        &self,
        root: usize,
        buf: &mut Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
        seq: u64,
        clock: &mut VClock,
    ) {
        let size = self.size();
        if size == 1 {
            return;
        }
        let rank = self.rank();
        let relrank = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if relrank & mask == 0 {
                let peer = relrank | mask;
                if peer < size {
                    let src = (peer + root) % size;
                    let contrib = self.coll_recv(src, seq, PH_REDUCE, clock);
                    combine(buf, &contrib);
                    trace::instant(EventKind::CollRound, mask as u64, clock.now());
                }
            } else {
                let dst = ((relrank & !mask) + root) % size;
                self.coll_send(dst, seq, PH_REDUCE, Bytes::copy_from_slice(buf), clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
                break;
            }
            mask <<= 1;
        }
    }

    /// Allreduce with a user combiner: binomial reduce to rank 0 followed by
    /// binomial broadcast (2⌈log₂ P⌉ rounds). The paper merges multiple
    /// `reduction` clause variables into one structure and reduces them with
    /// a user-defined operation — this is that hook.
    pub fn allreduce_with(
        &self,
        buf: &mut Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
        clock: &mut VClock,
    ) {
        let mut st = self.coll_guard.lock();
        let seq = st.seq;
        st.seq += 1;
        if self.size() == 1 {
            return;
        }
        trace::begin(EventKind::MpiAllreduce, clock.now());
        if let Some(t) = self.hier() {
            self.hier_allreduce(t, buf, combine, seq, clock);
            trace::end(EventKind::MpiAllreduce, clock.now());
            return;
        }
        self.reduce_inner(0, buf, combine, seq, clock);
        let mut b = Bytes::copy_from_slice(buf);
        self.bcast_inner(0, &mut b, seq, PH_ALLRED_BCAST, clock);
        buf.clear();
        buf.extend_from_slice(&b);
        trace::end(EventKind::MpiAllreduce, clock.now());
    }

    fn hier_allreduce(
        &self,
        t: &CollectiveTopology,
        buf: &mut Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
        seq: u64,
        clock: &mut VClock,
    ) {
        let rank = self.rank();
        let folded = t.deposit_and_sync(rank, seq, Some(std::mem::take(buf)), clock);
        let result = if t.is_leader(rank) {
            // Fold the group's contributions in member order (the leader is
            // member 0), reduce across leaders to leader position 0, then
            // broadcast the total back over the leader tree.
            let mut contribs = folded.expect("leader sees group contributions").into_iter();
            let mut acc = contribs
                .next()
                .expect("group is non-empty")
                .expect("every member deposits");
            for c in contribs {
                combine(&mut acc, &c.expect("every member deposits"));
            }
            self.leaders_reduce(t, &mut acc, combine, seq, clock);
            let mut b = Bytes::from(acc);
            self.leaders_bcast(t, 0, &mut b, seq, PH_ALLRED_BCAST, clock);
            t.publish(rank, seq, b, clock)
        } else {
            t.collect(rank, seq, clock)
        };
        buf.extend_from_slice(&result);
    }

    // ---- leader-phase algorithms ---------------------------------------
    //
    // The inter-node halves of the two-level collectives: the same
    // dissemination/binomial schemes as the flat algorithms, but run over
    // the topology's leader ranks, addressed by *position* in the sorted
    // leader list. Only leaders ever call these.

    /// Dissemination barrier among the group leaders.
    fn leaders_barrier(&self, t: &CollectiveTopology, seq: u64, clock: &mut VClock) {
        let leaders = t.leaders();
        let l = leaders.len();
        let pos = t.leader_position(self.rank());
        let mut round: u8 = 0;
        let mut dist = 1usize;
        while dist < l {
            let dst = leaders[(pos + dist) % l];
            let src = leaders[(pos + l - dist) % l];
            self.coll_send(dst, seq, PH_BARRIER_BASE + round, Bytes::new(), clock);
            let _ = self.coll_recv(src, seq, PH_BARRIER_BASE + round, clock);
            trace::instant(EventKind::CollRound, round as u64, clock.now());
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast among the group leaders from leader
    /// position `root_pos`.
    fn leaders_bcast(
        &self,
        t: &CollectiveTopology,
        root_pos: usize,
        buf: &mut Bytes,
        seq: u64,
        phase: u8,
        clock: &mut VClock,
    ) {
        let leaders = t.leaders();
        let l = leaders.len();
        let pos = t.leader_position(self.rank());
        let rel = (pos + l - root_pos) % l;
        let mut mask = 1usize;
        while mask < l {
            if rel & mask != 0 {
                let src = leaders[(rel - mask + root_pos) % l];
                *buf = self.coll_recv(src, seq, phase, clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel + mask < l {
                let dst = leaders[(rel + mask + root_pos) % l];
                self.coll_send(dst, seq, phase, buf.clone(), clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree reduction among the group leaders to leader
    /// position 0.
    fn leaders_reduce(
        &self,
        t: &CollectiveTopology,
        buf: &mut Vec<u8>,
        combine: &dyn Fn(&mut Vec<u8>, &[u8]),
        seq: u64,
        clock: &mut VClock,
    ) {
        let leaders = t.leaders();
        let l = leaders.len();
        let pos = t.leader_position(self.rank());
        let mut mask = 1usize;
        while mask < l {
            if pos & mask == 0 {
                let peer = pos | mask;
                if peer < l {
                    let contrib = self.coll_recv(leaders[peer], seq, PH_REDUCE, clock);
                    combine(buf, &contrib);
                    trace::instant(EventKind::CollRound, mask as u64, clock.now());
                }
            } else {
                let dst = leaders[pos & !mask];
                self.coll_send(dst, seq, PH_REDUCE, Bytes::copy_from_slice(buf), clock);
                trace::instant(EventKind::CollRound, mask as u64, clock.now());
                break;
            }
            mask <<= 1;
        }
    }

    /// Elementwise allreduce on an `f64` slice.
    pub fn allreduce_f64s(&self, xs: &mut [f64], op: ReduceOp, clock: &mut VClock) {
        let mut buf = datatype::f64s_to_bytes(xs).to_vec();
        let combine = move |acc: &mut Vec<u8>, other: &[u8]| {
            let mut a = datatype::bytes_to_f64s(acc);
            let b = datatype::bytes_to_f64s(other);
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.fold_f64(*x, y);
            }
            acc.clear();
            acc.extend_from_slice(&datatype::f64s_to_bytes(&a));
        };
        self.allreduce_with(&mut buf, &combine, clock);
        datatype::read_f64s_into(&buf, xs);
    }

    /// Allreduce a single `f64`.
    pub fn allreduce_f64(&self, x: f64, op: ReduceOp, clock: &mut VClock) -> f64 {
        let mut xs = [x];
        self.allreduce_f64s(&mut xs, op, clock);
        xs[0]
    }

    /// Elementwise allreduce on an `i64` slice.
    pub fn allreduce_i64s(&self, xs: &mut [i64], op: ReduceOp, clock: &mut VClock) {
        let mut buf = datatype::i64s_to_bytes(xs).to_vec();
        let combine = move |acc: &mut Vec<u8>, other: &[u8]| {
            let mut a = datatype::bytes_to_i64s(acc);
            let b = datatype::bytes_to_i64s(other);
            for (x, y) in a.iter_mut().zip(b) {
                *x = op.fold_i64(*x, y);
            }
            acc.clear();
            acc.extend_from_slice(&datatype::i64s_to_bytes(&a));
        };
        self.allreduce_with(&mut buf, &combine, clock);
        let out = datatype::bytes_to_i64s(&buf);
        xs.copy_from_slice(&out);
    }

    /// Allreduce a single `i64`.
    pub fn allreduce_i64(&self, x: i64, op: ReduceOp, clock: &mut VClock) -> i64 {
        let mut xs = [x];
        self.allreduce_i64s(&mut xs, op, clock);
        xs[0]
    }

    /// Gather byte strings at `root` (linear). Returns `Some(parts)` indexed
    /// by rank at the root, `None` elsewhere.
    pub fn gather_bytes(&self, root: usize, data: Bytes, clock: &mut VClock) -> Option<Vec<Bytes>> {
        let mut st = self.coll_guard.lock();
        let seq = st.seq;
        st.seq += 1;
        let size = self.size();
        let rank = self.rank();
        trace::begin_arg(EventKind::MpiGather, data.len() as u64, clock.now());
        let out = if rank == root {
            let mut parts: Vec<Bytes> = vec![Bytes::new(); size];
            parts[root] = data;
            for (r, part) in parts.iter_mut().enumerate() {
                if r != root {
                    *part = self.coll_recv(r, seq, PH_GATHER, clock);
                }
            }
            Some(parts)
        } else {
            self.coll_send(root, seq, PH_GATHER, data, clock);
            None
        };
        trace::end(EventKind::MpiGather, clock.now());
        out
    }

    /// Allgather byte strings: gather at rank 0, then broadcast the
    /// concatenation (with a tiny length header per rank).
    pub fn allgather_bytes(&self, data: Bytes, clock: &mut VClock) -> Vec<Bytes> {
        let parts = self.gather_bytes(0, data, clock);
        let mut blob = Bytes::new();
        if self.rank() == 0 {
            let parts = parts.expect("root gathers");
            let mut w = crate::datatype::Writer::new();
            w.u32(parts.len() as u32);
            for p in &parts {
                w.lp_bytes(p);
            }
            blob = w.finish();
        }
        self.bcast_bytes(0, &mut blob, clock);
        let mut r = crate::datatype::Reader::new(&blob);
        let n = r.u32() as usize;
        (0..n)
            .map(|_| Bytes::copy_from_slice(r.lp_bytes()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_net::{Fabric, MsgClass, NetProfile};
    use std::sync::Arc;

    fn run_all<R: Send + 'static>(
        n: usize,
        f: impl Fn(Arc<Communicator>, &mut VClock) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        run_on(Fabric::new(n, NetProfile::clan_via()), None, f)
    }

    fn run_on<R: Send + 'static>(
        fabric: Arc<Fabric>,
        topo: Option<Arc<CollectiveTopology>>,
        f: impl Fn(Arc<Communicator>, &mut VClock) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let f = Arc::new(f);
        let handles: Vec<_> = (0..fabric.nodes())
            .map(|i| {
                let comm = Arc::new(match &topo {
                    Some(t) => Communicator::with_topology(fabric.endpoint(i), Arc::clone(t)),
                    None => Communicator::new(fabric.endpoint(i)),
                });
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    let mut clk = VClock::manual();
                    f(comm, &mut clk)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_at_various_sizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            run_all(n, |c, clk| {
                for _ in 0..3 {
                    c.barrier(clk);
                }
            });
        }
    }

    #[test]
    fn collectives_survive_a_lossy_fabric() {
        use parade_net::{ChaosKnobs, ChaosProfile, VTime};
        let chaos = ChaosProfile {
            base: ChaosKnobs {
                drop: 0.10,
                duplicate: 0.05,
                reorder: 0.10,
                delay: 0.20,
                delay_jitter: VTime::from_micros(30),
            },
            ..ChaosProfile::lossy(0x5EED)
        };
        let fabric = Fabric::with_chaos(4, NetProfile::clan_via(), chaos);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let comm = Arc::new(Communicator::new(fabric.endpoint(i)));
                std::thread::spawn(move || {
                    let mut clk = VClock::manual();
                    let mut out = Vec::new();
                    for round in 0..10 {
                        comm.barrier(&mut clk);
                        let mut xs = vec![(comm.rank() + round) as f64; 4];
                        comm.bcast_f64s(round % comm.size(), &mut xs, &mut clk);
                        let s = comm.allreduce_f64(xs[0], ReduceOp::Sum, &mut clk);
                        out.push(s);
                    }
                    out
                })
            })
            .collect();
        let results: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every rank agrees, and the values match the chaos-free formula:
        // rank (round % 4) broadcasts (root + round), summed over 4 ranks.
        for (rank, r) in results.iter().enumerate() {
            for (round, v) in r.iter().enumerate() {
                let expect = 4.0 * ((round % 4) + round) as f64;
                assert_eq!(*v, expect, "rank {rank} round {round}");
            }
        }
        let h = fabric.stats().link_health_totals();
        assert!(
            h.retransmits + h.dup_drops + h.reseq_holds > 0,
            "a 10%-loss fabric must exercise the reliable channel: {h:?}"
        );
    }

    #[test]
    fn bcast_delivers_root_data() {
        for n in [1, 2, 3, 4, 7, 8] {
            let out = run_all(n, |c, clk| {
                let mut xs = if c.rank() == 2 % c.size() {
                    vec![1.0, 2.0, 3.0]
                } else {
                    vec![0.0; 3]
                };
                c.bcast_f64s(2 % c.size(), &mut xs, clk);
                xs
            });
            for xs in out {
                assert_eq!(xs, vec![1.0, 2.0, 3.0], "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_sequential() {
        for n in [1, 2, 3, 4, 5, 8] {
            let out = run_all(n, |c, clk| {
                let mine = vec![c.rank() as f64, 1.0, -(c.rank() as f64)];
                let mut xs = mine;
                c.allreduce_f64s(&mut xs, ReduceOp::Sum, clk);
                xs
            });
            let expect = vec![
                (0..n).sum::<usize>() as f64,
                n as f64,
                -((0..n).sum::<usize>() as f64),
            ];
            for xs in out {
                assert_eq!(xs, expect, "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = run_all(5, |c, clk| {
            let lo = c.allreduce_i64(c.rank() as i64 * 3, ReduceOp::Min, clk);
            let hi = c.allreduce_i64(c.rank() as i64 * 3, ReduceOp::Max, clk);
            (lo, hi)
        });
        for (lo, hi) in out {
            assert_eq!((lo, hi), (0, 12));
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_all(4, |c, clk| {
            c.gather_bytes(1, Bytes::from(vec![c.rank() as u8; 2]), clk)
        });
        for (r, parts) in out.into_iter().enumerate() {
            if r == 1 {
                let parts = parts.unwrap();
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(&p[..], &[i as u8; 2]);
                }
            } else {
                assert!(parts.is_none());
            }
        }
    }

    #[test]
    fn allgather_everyone_gets_everything() {
        let out = run_all(3, |c, clk| {
            c.allgather_bytes(Bytes::from(vec![c.rank() as u8 + 10]), clk)
        });
        for parts in out {
            assert_eq!(parts.len(), 3);
            for (i, p) in parts.iter().enumerate() {
                assert_eq!(&p[..], &[i as u8 + 10]);
            }
        }
    }

    #[test]
    fn collectives_advance_virtual_time_with_cluster_size() {
        // A barrier on more nodes must take at least as long (same profile).
        let t2 = run_all(2, |c, clk| {
            c.barrier(clk);
            clk.now()
        });
        let t8 = run_all(8, |c, clk| {
            c.barrier(clk);
            clk.now()
        });
        let m2 = t2.into_iter().max().unwrap();
        let m8 = t8.into_iter().max().unwrap();
        assert!(m8 > m2, "8-node barrier {m8} should exceed 2-node {m2}");
    }

    /// One deterministic workload of mixed collectives; values are exact in
    /// f64 so any fold order yields bit-identical results.
    fn mixed_workload(c: &Communicator, clk: &mut VClock) -> Vec<u64> {
        let p = c.size();
        let mut seen = Vec::new();
        for round in 0..3 {
            c.barrier(clk);
            let s = c.allreduce_f64((c.rank() * 2 + round) as f64, ReduceOp::Sum, clk);
            seen.push(s.to_bits());
            let root = (round * 3) % p;
            let mut xs: Vec<f64> = if c.rank() == root {
                (0..p).map(|i| (round * 31 + i) as f64 * 0.5).collect()
            } else {
                vec![0.0; p]
            };
            c.bcast_f64s(root, &mut xs, clk);
            seen.extend(xs.iter().map(|x| x.to_bits()));
            let hi = c.allreduce_i64((c.rank() as i64) - round as i64, ReduceOp::Max, clk);
            seen.push(hi as u64);
        }
        seen
    }

    #[test]
    fn hierarchical_collectives_match_flat_results() {
        for (n, groups) in [
            (4, vec![vec![0, 1], vec![2, 3]]),
            (5, vec![vec![0, 1, 2], vec![3, 4]]),
            (6, vec![vec![0, 3], vec![1, 4, 5], vec![2]]),
            (7, vec![vec![0, 1, 2, 3, 4, 5, 6]]),
            (8, vec![vec![0, 1], vec![2], vec![3, 4, 5], vec![6, 7]]),
        ] {
            let flat = run_all(n, |c, clk| mixed_workload(&c, clk));
            let topo = Arc::new(CollectiveTopology::from_groups(n, groups.clone()));
            let fabric = Fabric::new(n, NetProfile::clan_via());
            let hier = run_on(fabric, Some(topo), |c, clk| mixed_workload(&c, clk));
            assert_eq!(hier, flat, "n={n} groups={groups:?}");
        }
    }

    #[test]
    fn hierarchical_barrier_sends_only_leader_messages() {
        // 8 ranks in two groups of 4: exactly L·⌈log₂L⌉ = 2 fabric
        // messages per barrier, all from the leaders; a fallback to the
        // flat path would send 8·3 = 24.
        let topo = Arc::new(CollectiveTopology::uniform(8, 4));
        let fabric = Fabric::new(8, NetProfile::clan_via());
        let stats = Arc::clone(&fabric);
        run_on(fabric, Some(topo), |c, clk| {
            for _ in 0..5 {
                c.barrier(clk);
            }
        });
        let coll = |i: usize| stats.stats().node(i).class_totals(MsgClass::Coll).msgs;
        assert_eq!(coll(0), 5, "leader 0 sends one message per barrier");
        assert_eq!(coll(4), 5, "leader 4 sends one message per barrier");
        for i in [1, 2, 3, 5, 6, 7] {
            assert_eq!(coll(i), 0, "non-leader {i} must stay off the fabric");
        }
    }

    #[test]
    fn singleton_topology_degenerates_to_flat() {
        // All-singleton groups: the communicator must take the flat path
        // (same messages, no shared-memory combine overhead).
        let topo = Arc::new(CollectiveTopology::flat(4));
        let fabric = Fabric::new(4, NetProfile::clan_via());
        let stats = Arc::clone(&fabric);
        let out = run_on(fabric, Some(topo), |c, clk| {
            c.barrier(clk);
            c.allreduce_i64(c.rank() as i64, ReduceOp::Sum, clk)
        });
        assert!(out.iter().all(|&s| s == 6));
        // Flat dissemination barrier: every rank sends ⌈log₂4⌉ = 2.
        let total: u64 = (0..4)
            .map(|i| stats.stats().node(i).class_totals(MsgClass::Coll).msgs)
            .sum();
        assert!(total >= 8, "flat barrier alone sends 8 messages: {total}");
    }

    #[test]
    fn hierarchical_collectives_agree_on_closed_forms() {
        // Non-power-of-two world, non-uniform groups; check against the
        // sequential formulas rather than another run.
        let topo = Arc::new(CollectiveTopology::from_groups(
            6,
            vec![vec![0, 1, 2, 3], vec![4, 5]],
        ));
        let fabric = Fabric::new(6, NetProfile::clan_via());
        let out = run_on(fabric, Some(topo), |c, clk| {
            let sum = c.allreduce_f64(c.rank() as f64, ReduceOp::Sum, clk);
            let min = c.allreduce_i64(10 - c.rank() as i64, ReduceOp::Min, clk);
            let mut xs = if c.rank() == 5 {
                vec![2.5, -1.0]
            } else {
                vec![0.0; 2]
            };
            c.bcast_f64s(5, &mut xs, clk);
            c.barrier(clk);
            (sum, min, xs)
        });
        for (sum, min, xs) in out {
            assert_eq!(sum, 15.0);
            assert_eq!(min, 5);
            assert_eq!(xs, vec![2.5, -1.0]);
        }
    }

    #[test]
    fn struct_reduce_user_op() {
        // Paper §4.2: several reduction variables merged into one struct and
        // reduced with a user-defined operation. Emulate (sum, max) pairs.
        let out = run_all(4, |c, clk| {
            let mut buf =
                crate::datatype::f64s_to_bytes(&[c.rank() as f64, c.rank() as f64]).to_vec();
            let combine = |acc: &mut Vec<u8>, other: &[u8]| {
                let a = crate::datatype::bytes_to_f64s(acc);
                let b = crate::datatype::bytes_to_f64s(other);
                let merged = [a[0] + b[0], a[1].max(b[1])];
                acc.clear();
                acc.extend_from_slice(&crate::datatype::f64s_to_bytes(&merged));
            };
            c.allreduce_with(&mut buf, &combine, clk);
            crate::datatype::bytes_to_f64s(&buf)
        });
        for xs in out {
            assert_eq!(xs, vec![6.0, 3.0]);
        }
    }
}
