//! Communicators and point-to-point messaging.

use std::sync::Arc;

use parade_net::sync::Mutex;
use parade_net::Bytes;

use parade_net::{Endpoint, Match, MsgClass, VClock};

use crate::datatype;
use crate::topology::CollectiveTopology;

/// A communicator: one MPI-style rank per cluster node.
///
/// Point-to-point operations are fully thread-safe (the paper stresses that
/// most public MPI libraries were not — their runtime needs a thread-safe
/// one because application threads and the communication thread both issue
/// requests). Collective operations are serialized per node by an internal
/// lock and matched across nodes by a sequence number, so every node must
/// invoke collectives in the same order — the usual MPI contract.
pub struct Communicator {
    ep: Endpoint,
    rank: usize,
    size: usize,
    /// Serializes collective participation of this node's threads.
    pub(crate) coll_guard: Mutex<CollState>,
    /// SMP placement for two-level collectives; `None` (or an all-singleton
    /// topology) keeps the flat algorithms.
    pub(crate) topo: Option<Arc<CollectiveTopology>>,
}

pub(crate) struct CollState {
    /// Sequence number of the next collective; identical across nodes
    /// because collectives are invoked in the same global order.
    pub seq: u64,
}

impl Communicator {
    pub fn new(ep: Endpoint) -> Self {
        let rank = ep.id();
        let size = ep.nodes();
        Communicator {
            ep,
            rank,
            size,
            coll_guard: Mutex::new(CollState { seq: 0 }),
            topo: None,
        }
    }

    /// A communicator whose collectives use the two-level SMP-aware
    /// algorithms over `topo`. The same topology instance (it owns the
    /// groups' shared-memory combine state) must be passed to every rank's
    /// communicator of this world.
    pub fn with_topology(ep: Endpoint, topo: Arc<CollectiveTopology>) -> Self {
        assert_eq!(
            topo.size(),
            ep.nodes(),
            "topology must cover exactly the fabric's ranks"
        );
        let mut c = Communicator::new(ep);
        c.topo = Some(topo);
        c
    }

    /// The collective topology, when two-level algorithms are enabled.
    pub fn topology(&self) -> Option<&Arc<CollectiveTopology>> {
        self.topo.as_ref()
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of collectives completed so far (diagnostics).
    pub fn collectives_done(&self) -> u64 {
        self.coll_guard.lock().seq
    }

    // ---- point-to-point -------------------------------------------------

    /// Send raw bytes to `dst` with a user tag.
    pub fn send_bytes(&self, dst: usize, tag: u32, data: Bytes, clock: &mut VClock) {
        self.ep.send(dst, MsgClass::P2p, tag as u64, data, clock);
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv_bytes(&self, src: usize, tag: u32, clock: &mut VClock) -> Bytes {
        let pkt = self
            .ep
            .recv(MsgClass::P2p, Match::src_tag(src, tag as u64), clock)
            .expect("communicator used after shutdown");
        pkt.payload
    }

    /// Blocking receive of a message with `tag` from *any* source; returns
    /// the sender's rank alongside the payload.
    pub fn recv_bytes_any(&self, tag: u32, clock: &mut VClock) -> (usize, Bytes) {
        let pkt = self
            .ep
            .recv(MsgClass::P2p, Match::tagged(tag as u64), clock)
            .expect("communicator used after shutdown");
        (pkt.src, pkt.payload)
    }

    /// Non-blocking receive of a message with `tag` from any source.
    /// Dequeues by earliest virtual arrival so polling loops see messages
    /// in the same order a blocking receiver would.
    pub fn try_recv_bytes(&self, tag: u32, clock: &mut VClock) -> Option<(usize, Bytes)> {
        self.ep
            .try_recv_match(MsgClass::P2p, Match::tagged(tag as u64), clock)
            .map(|pkt| (pkt.src, pkt.payload))
    }

    /// Send a slice of `f64`s.
    pub fn send_f64s(&self, dst: usize, tag: u32, xs: &[f64], clock: &mut VClock) {
        self.send_bytes(dst, tag, datatype::f64s_to_bytes(xs), clock);
    }

    /// Receive a slice of `f64`s into `out` (length must match exactly).
    pub fn recv_f64s_into(&self, src: usize, tag: u32, out: &mut [f64], clock: &mut VClock) {
        let b = self.recv_bytes(src, tag, clock);
        datatype::read_f64s_into(&b, out);
    }

    /// Receive a vector of `f64`s of any length.
    pub fn recv_f64s(&self, src: usize, tag: u32, clock: &mut VClock) -> Vec<f64> {
        let b = self.recv_bytes(src, tag, clock);
        datatype::bytes_to_f64s(&b)
    }

    /// Send a slice of `i64`s.
    pub fn send_i64s(&self, dst: usize, tag: u32, xs: &[i64], clock: &mut VClock) {
        self.send_bytes(dst, tag, datatype::i64s_to_bytes(xs), clock);
    }

    /// Receive a vector of `i64`s.
    pub fn recv_i64s(&self, src: usize, tag: u32, clock: &mut VClock) -> Vec<i64> {
        let b = self.recv_bytes(src, tag, clock);
        datatype::bytes_to_i64s(&b)
    }

    // ---- collective plumbing -------------------------------------------

    /// Send within a collective: tag encodes (sequence, phase).
    pub(crate) fn coll_send(
        &self,
        dst: usize,
        seq: u64,
        phase: u8,
        data: Bytes,
        clock: &mut VClock,
    ) {
        self.ep
            .send(dst, MsgClass::Coll, coll_tag(seq, phase), data, clock);
    }

    /// Receive within a collective.
    pub(crate) fn coll_recv(&self, src: usize, seq: u64, phase: u8, clock: &mut VClock) -> Bytes {
        let pkt = self
            .ep
            .recv(
                MsgClass::Coll,
                Match::src_tag(src, coll_tag(seq, phase)),
                clock,
            )
            .expect("communicator used after shutdown");
        pkt.payload
    }
}

fn coll_tag(seq: u64, phase: u8) -> u64 {
    seq * 16 + phase as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use parade_net::{Fabric, NetProfile};
    use std::sync::Arc;

    pub(crate) fn make_comms(n: usize) -> Vec<Arc<Communicator>> {
        let fabric = Fabric::new(n, NetProfile::zero());
        (0..n)
            .map(|i| Arc::new(Communicator::new(fabric.endpoint(i))))
            .collect()
    }

    #[test]
    fn p2p_roundtrip() {
        let comms = make_comms(2);
        let c1 = Arc::clone(&comms[1]);
        let t = std::thread::spawn(move || {
            let mut clk = VClock::manual();
            c1.recv_f64s(0, 5, &mut clk)
        });
        let mut clk = VClock::manual();
        comms[0].send_f64s(1, 5, &[1.0, 2.0, 3.0], &mut clk);
        assert_eq!(t.join().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn self_send() {
        let comms = make_comms(1);
        let mut clk = VClock::manual();
        comms[0].send_i64s(0, 9, &[-4, 7], &mut clk);
        assert_eq!(comms[0].recv_i64s(0, 9, &mut clk), vec![-4, 7]);
    }
}
