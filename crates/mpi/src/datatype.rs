//! Wire encoding helpers.
//!
//! Payloads are hand-encoded little-endian byte strings — the mini-MPI the
//! paper's authors built on VIA moves raw buffers the same way.

use parade_net::Bytes;

/// Encode a slice of `f64` values.
pub fn f64s_to_bytes(xs: &[f64]) -> Bytes {
    let mut b = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        b.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(b)
}

/// Decode a byte string into `f64` values.
///
/// # Panics
/// If the length is not a multiple of 8.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of f64s"
    );
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Decode into a caller-provided buffer (no allocation).
pub fn read_f64s_into(b: &[u8], out: &mut [f64]) {
    assert_eq!(b.len(), out.len() * 8, "payload/buffer length mismatch");
    for (c, o) in b.chunks_exact(8).zip(out.iter_mut()) {
        *o = f64::from_le_bytes(c.try_into().expect("chunk of 8"));
    }
}

/// Encode a slice of `i64` values.
pub fn i64s_to_bytes(xs: &[i64]) -> Bytes {
    let mut b = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        b.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(b)
}

/// Decode a byte string into `i64` values.
pub fn bytes_to_i64s(b: &[u8]) -> Vec<i64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of i64s"
    );
    b.chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a slice of `u64` values.
pub fn u64s_to_bytes(xs: &[u64]) -> Bytes {
    let mut b = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        b.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(b)
}

/// Decode a byte string into `u64` values.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of u64s"
    );
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// A little-endian cursor for composing protocol messages.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.extend_from_slice(&[v]);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed byte string.
    pub fn lp_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes(v)
    }

    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A little-endian cursor for parsing protocol messages.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    pub fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("u32"));
        self.pos += 4;
        v
    }

    pub fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("u64"));
        self.pos += 8;
        v
    }

    pub fn f64(&mut self) -> f64 {
        let v = f64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("f64"));
        self.pos += 8;
        v
    }

    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        let v = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        v
    }

    /// Length-prefixed byte string written by [`Writer::lp_bytes`].
    pub fn lp_bytes(&mut self) -> &'a [u8] {
        let n = self.u32() as usize;
        self.bytes(n)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let xs = [1.5, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&xs)), xs.to_vec());
    }

    #[test]
    fn i64_roundtrip() {
        let xs = [0i64, -1, i64::MAX, i64::MIN, 42];
        assert_eq!(bytes_to_i64s(&i64s_to_bytes(&xs)), xs.to_vec());
    }

    #[test]
    fn read_into_buffer() {
        let xs = [3.25, 4.5];
        let b = f64s_to_bytes(&xs);
        let mut out = [0.0; 2];
        read_f64s_into(&b, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(7).u32(1234).u64(u64::MAX).f64(2.75).lp_bytes(b"hello");
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u32(), 1234);
        assert_eq!(r.u64(), u64::MAX);
        assert_eq!(r.f64(), 2.75);
        assert_eq!(r.lp_bytes(), b"hello");
        assert!(r.is_done());
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn misaligned_payload_panics() {
        bytes_to_f64s(&[1, 2, 3]);
    }
}
