//! SMP-aware collective topology: which communicator ranks share a node.
//!
//! ParADE targets clusters *of SMPs*: several ranks may be co-located on
//! one physical node, where message passing through the fabric is strictly
//! worse than combining through shared memory. A [`CollectiveTopology`]
//! records that placement as a partition of the communicator's ranks into
//! groups (one group per SMP node). Each group's lowest rank is its
//! **leader**; two-level collectives combine within a group through a
//! shared-memory exchange (built on [`VBarrier`], so virtual time is
//! reconciled exactly like an intra-node pthread barrier) and only the
//! leaders talk over the fabric.
//!
//! The topology owns the per-group shared state, so one instance must be
//! created per communicator world and shared (via `Arc`) by every rank's
//! [`crate::Communicator`].

use std::collections::HashMap;

use parade_net::sync::{Condvar, Mutex};
use parade_net::{Bytes, VBarrier, VClock, VTime};

/// Placement of communicator ranks onto SMP nodes, plus the shared-memory
/// exchange state used by the two-level collective algorithms.
pub struct CollectiveTopology {
    /// rank → index of its group.
    group_of: Vec<usize>,
    /// rank → position within its (ascending-sorted) group.
    member_idx: Vec<usize>,
    groups: Vec<Group>,
    /// Leader rank of every group, ascending. The inter-node phase runs
    /// over these ranks only.
    leaders: Vec<usize>,
    /// rank → position in `leaders` (leaders only).
    leader_pos: Vec<Option<usize>>,
}

struct Group {
    /// Member ranks, ascending; `members[0]` is the leader.
    members: Vec<usize>,
    shared: GroupShared,
}

/// Shared-memory exchange state for one group: an intra-node barrier for
/// the combine, and per-collective round slots for contributions flowing
/// up to the leader and the result flowing back down.
struct GroupShared {
    barrier: VBarrier,
    rounds: Mutex<HashMap<u64, RoundState>>,
    cv: Condvar,
}

struct RoundState {
    /// Per-member contribution, indexed by position within the group.
    contrib: Vec<Option<Vec<u8>>>,
    /// Leader's result and the virtual time it was published at.
    result: Option<(Bytes, VTime)>,
    /// Members that have consumed the result; the round is reclaimed once
    /// all of them have.
    taken: usize,
}

impl RoundState {
    fn new(n: usize) -> Self {
        RoundState {
            contrib: vec![None; n],
            result: None,
            taken: 0,
        }
    }
}

impl CollectiveTopology {
    /// Every rank on its own node: no co-location, collectives stay flat.
    pub fn flat(size: usize) -> Self {
        CollectiveTopology::uniform(size, 1)
    }

    /// Consecutive ranks share a node in blocks of `width` (the last block
    /// may be smaller when `size` is not a multiple).
    pub fn uniform(size: usize, width: usize) -> Self {
        assert!(width > 0, "group width must be positive");
        let groups = (0..size)
            .step_by(width)
            .map(|lo| (lo..(lo + width).min(size)).collect())
            .collect();
        CollectiveTopology::from_groups(size, groups)
    }

    /// Explicit placement: `groups` must partition `0..size` into
    /// non-empty sets (order within and between groups is irrelevant; each
    /// group is sorted and the group list is ordered by leader rank).
    pub fn from_groups(size: usize, groups: Vec<Vec<usize>>) -> Self {
        let mut sorted: Vec<Vec<usize>> = groups
            .into_iter()
            .map(|mut g| {
                assert!(!g.is_empty(), "empty rank group");
                g.sort_unstable();
                g
            })
            .collect();
        sorted.sort_unstable_by_key(|g| g[0]);
        let mut group_of = vec![usize::MAX; size];
        let mut member_idx = vec![0usize; size];
        for (gi, g) in sorted.iter().enumerate() {
            for (mi, &r) in g.iter().enumerate() {
                assert!(r < size, "rank {r} out of range for size {size}");
                assert!(
                    group_of[r] == usize::MAX,
                    "rank {r} appears in more than one group"
                );
                group_of[r] = gi;
                member_idx[r] = mi;
            }
        }
        assert!(
            group_of.iter().all(|&g| g != usize::MAX),
            "groups must cover every rank in 0..{size}"
        );
        let leaders: Vec<usize> = sorted.iter().map(|g| g[0]).collect();
        let mut leader_pos = vec![None; size];
        for (p, &l) in leaders.iter().enumerate() {
            leader_pos[l] = Some(p);
        }
        let groups = sorted
            .into_iter()
            .map(|members| {
                let n = members.len();
                Group {
                    members,
                    shared: GroupShared {
                        barrier: VBarrier::new(n),
                        rounds: Mutex::new(HashMap::new()),
                        cv: Condvar::new(),
                    },
                }
            })
            .collect();
        CollectiveTopology {
            group_of,
            member_idx,
            groups,
            leaders,
            leader_pos,
        }
    }

    /// Number of ranks covered by this topology.
    pub fn size(&self) -> usize {
        self.group_of.len()
    }

    /// Number of SMP-node groups (= number of leaders).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// True when every group is a singleton: the two-level algorithms would
    /// degenerate to the flat ones plus a pointless self-election, so the
    /// communicator keeps the flat path instead.
    pub fn is_flat(&self) -> bool {
        self.groups.len() == self.group_of.len()
    }

    /// Leader ranks, ascending.
    pub fn leaders(&self) -> &[usize] {
        &self.leaders
    }

    pub fn group_of(&self, rank: usize) -> usize {
        self.group_of[rank]
    }

    /// Member ranks of `rank`'s group, ascending.
    pub fn group_members(&self, rank: usize) -> &[usize] {
        &self.groups[self.group_of[rank]].members
    }

    /// The elected leader of `rank`'s group (its lowest rank).
    pub fn leader_of(&self, rank: usize) -> usize {
        self.groups[self.group_of[rank]].members[0]
    }

    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }

    /// Position of `rank` within its group's sorted member list.
    pub(crate) fn member_index(&self, rank: usize) -> usize {
        self.member_idx[rank]
    }

    /// Position of leader `rank` in [`CollectiveTopology::leaders`].
    pub(crate) fn leader_position(&self, rank: usize) -> usize {
        self.leader_pos[rank].expect("rank is not a group leader")
    }

    // ---- shared-memory exchange ----------------------------------------

    /// Upward half of the intra-group combine: deposit this rank's
    /// contribution (if any) for collective `seq`, then synchronize the
    /// whole group through the shared-memory barrier. Returns the group's
    /// contributions (in member order) on the leader, `None` elsewhere.
    pub(crate) fn deposit_and_sync(
        &self,
        rank: usize,
        seq: u64,
        contrib: Option<Vec<u8>>,
        clock: &mut VClock,
    ) -> Option<Vec<Option<Vec<u8>>>> {
        let g = &self.groups[self.group_of[rank]];
        {
            let mut rounds = g.shared.rounds.lock();
            let st = rounds
                .entry(seq)
                .or_insert_with(|| RoundState::new(g.members.len()));
            if let Some(c) = contrib {
                st.contrib[self.member_idx[rank]] = Some(c);
            }
        }
        g.shared.barrier.wait(clock);
        if self.is_leader(rank) {
            let mut rounds = g.shared.rounds.lock();
            let st = rounds.get_mut(&seq).expect("round state deposited");
            Some(std::mem::take(&mut st.contrib))
        } else {
            None
        }
    }

    /// Downward half, leader side: publish the result of collective `seq`
    /// (stamped with the leader's current virtual time) and wake the
    /// group. Returns the leader's own copy.
    pub(crate) fn publish(
        &self,
        rank: usize,
        seq: u64,
        result: Bytes,
        clock: &mut VClock,
    ) -> Bytes {
        debug_assert!(self.is_leader(rank));
        let g = &self.groups[self.group_of[rank]];
        let mut rounds = g.shared.rounds.lock();
        let st = rounds.get_mut(&seq).expect("round state deposited");
        st.result = Some((result, clock.now()));
        g.shared.cv.notify_all();
        Self::take_locked(&mut rounds, g.members.len(), seq).0
    }

    /// Downward half, non-leader side: wait for the leader to publish,
    /// advance this rank's clock to the publish time, take the result.
    pub(crate) fn collect(&self, rank: usize, seq: u64, clock: &mut VClock) -> Bytes {
        debug_assert!(!self.is_leader(rank));
        let g = &self.groups[self.group_of[rank]];
        let mut rounds = g.shared.rounds.lock();
        while rounds.get(&seq).is_none_or(|st| st.result.is_none()) {
            g.shared.cv.wait(&mut rounds);
        }
        let (b, at) = Self::take_locked(&mut rounds, g.members.len(), seq);
        drop(rounds);
        clock.sync_to(at);
        b
    }

    fn take_locked(
        rounds: &mut HashMap<u64, RoundState>,
        members: usize,
        seq: u64,
    ) -> (Bytes, VTime) {
        let st = rounds.get_mut(&seq).expect("round state present");
        let (b, at) = st.result.clone().expect("result published");
        st.taken += 1;
        if st.taken == members {
            rounds.remove(&seq);
        }
        (b, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_blocks_and_leaders() {
        let t = CollectiveTopology::uniform(10, 4);
        assert_eq!(t.size(), 10);
        assert_eq!(t.num_groups(), 3);
        assert_eq!(t.leaders(), &[0, 4, 8]);
        assert_eq!(t.group_members(5), &[4, 5, 6, 7]);
        assert_eq!(t.group_members(9), &[8, 9]);
        assert_eq!(t.leader_of(9), 8);
        assert!(t.is_leader(4));
        assert!(!t.is_leader(5));
        assert!(!t.is_flat());
        assert_eq!(t.leader_position(8), 2);
        assert_eq!(t.member_index(6), 2);
    }

    #[test]
    fn flat_topology_is_flat() {
        let t = CollectiveTopology::flat(5);
        assert!(t.is_flat());
        assert_eq!(t.num_groups(), 5);
        assert_eq!(t.leaders(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_groups_sorts_members_and_groups() {
        let t = CollectiveTopology::from_groups(6, vec![vec![5, 3], vec![0, 4, 1], vec![2]]);
        assert_eq!(t.leaders(), &[0, 2, 3]);
        assert_eq!(t.group_members(4), &[0, 1, 4]);
        assert_eq!(t.group_members(5), &[3, 5]);
        assert_eq!(t.leader_of(5), 3);
    }

    #[test]
    #[should_panic(expected = "more than one group")]
    fn duplicate_rank_rejected() {
        CollectiveTopology::from_groups(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "cover every rank")]
    fn missing_rank_rejected() {
        CollectiveTopology::from_groups(3, vec![vec![0, 1]]);
    }

    #[test]
    fn exchange_moves_contributions_up_and_result_down() {
        use std::sync::Arc;
        let t = Arc::new(CollectiveTopology::uniform(3, 3));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut clk = VClock::manual();
                    let up = t.deposit_and_sync(rank, 7, Some(vec![rank as u8]), &mut clk);
                    if rank == 0 {
                        let up = up.expect("leader sees contributions");
                        let all: Vec<u8> =
                            up.into_iter().map(|c| c.expect("deposited")[0]).collect();
                        assert_eq!(all, vec![0, 1, 2]);
                        t.publish(rank, 7, Bytes::copy_from_slice(&[9]), &mut clk)
                    } else {
                        assert!(up.is_none());
                        t.collect(rank, 7, &mut clk)
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(&h.join().unwrap()[..], &[9]);
        }
        // All rounds reclaimed.
        assert!(t.groups[0].shared.rounds.lock().is_empty());
    }
}
