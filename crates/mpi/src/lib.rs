//! # parade-mpi — a thread-safe mini-MPI
//!
//! The ParADE runtime needs a high-performance, **thread-safe** message
//! passing library: application threads and the per-node communication
//! thread issue requests concurrently (paper §5.3). The authors implemented
//! a minimal MPI subset directly on VIA and fell back to MPI/Pro on TCP/IP;
//! this crate is that subset over the simulated fabric of [`parade_net`]:
//!
//! * typed point-to-point send/receive with tag matching,
//! * `barrier` (dissemination), `bcast` (binomial tree),
//! * `allreduce`/`reduce` (binomial reduce + broadcast) with built-in and
//!   user-defined combiners, `gather`/`allgather`,
//! * two-level SMP-aware collective algorithms over a
//!   [`CollectiveTopology`]: ranks co-located on an SMP node combine
//!   through shared memory and only elected group leaders cross the wire,
//! * little-endian wire-format helpers shared with the SDSM protocol.

mod collective;
mod comm;
pub mod datatype;
mod topology;

pub use collective::ReduceOp;
pub use comm::Communicator;
pub use topology::CollectiveTopology;
