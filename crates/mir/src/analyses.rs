//! Concrete dataflow analyses: reaching definitions, live variables,
//! postdominators, and the "threads-that-reach" divergence analysis
//! behind the PC009 barrier-divergence lint.
//!
//! Every pass emits a `check.analyze` trace span (see [`crate::span_arg`])
//! so analyzer cost shows up in `StatsReport` next to every other
//! subsystem.

use std::collections::HashMap;

use parade_trace::{begin_arg, end, EventKind};

use crate::body::{BlockId, MirFunc, MirStmt, Terminator};
use crate::dataflow::{fixpoint, Analysis, BitSet, Direction, FixpointResult};
use crate::{span_arg, vt_now};

fn traced<R>(arg: u64, f: impl FnOnce() -> R) -> R {
    begin_arg(EventKind::CheckAnalyze, arg, vt_now());
    let r = f();
    end(EventKind::CheckAnalyze, vt_now());
    r
}

// ---- reaching definitions ------------------------------------------------

/// One definition site. Synthetic region-entry defs (one per variable,
/// modelling the value the variable carries into the scope) have
/// `block == usize::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    pub block: usize,
    pub stmt: usize,
    pub var: usize,
}

/// Reaching definitions over one scope: which def sites can reach each
/// program point (forward may-analysis; gen/kill per scalar def).
pub struct ReachingDefs {
    /// Scalar universe, in first-seen order.
    pub vars: Vec<String>,
    var_ix: HashMap<String, usize>,
    pub sites: Vec<DefSite>,
    /// Site ids per variable (the entry def first).
    by_var: Vec<Vec<usize>>,
    /// Real def site ids per (block, stmt index).
    at: HashMap<(usize, usize), Vec<usize>>,
    /// Synthetic entry def per variable.
    pub entry: Vec<usize>,
    /// Converged facts: `input[b]` at block entry, `output[b]` at exit.
    pub result: FixpointResult<BitSet>,
}

impl ReachingDefs {
    pub fn compute(func: &MirFunc, scope: &[BlockId]) -> ReachingDefs {
        traced(span_arg::REACHING_DEFS, || {
            let (vars, var_ix) = collect_vars(func, scope);
            let mut sites = Vec::new();
            let mut by_var = vec![Vec::new(); vars.len()];
            let mut entry = Vec::new();
            for (v, per_var) in by_var.iter_mut().enumerate() {
                entry.push(sites.len());
                per_var.push(sites.len());
                sites.push(DefSite {
                    block: usize::MAX,
                    stmt: usize::MAX,
                    var: v,
                });
            }
            let mut at: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
            for b in scope {
                for (si, s) in func.blocks[b.index()].stmts.iter().enumerate() {
                    if let MirStmt::Eval(e) = s {
                        for d in &e.defs {
                            let v = var_ix[d.as_str()];
                            let id = sites.len();
                            by_var[v].push(id);
                            at.entry((b.index(), si)).or_default().push(id);
                            sites.push(DefSite {
                                block: b.index(),
                                stmt: si,
                                var: v,
                            });
                        }
                    }
                }
            }
            let core = RdCore {
                nsites: sites.len(),
                by_var: &by_var,
                at: &at,
                var_ix: &var_ix,
                entry: &entry,
            };
            let result = fixpoint(func, scope, &core);
            ReachingDefs {
                vars,
                var_ix,
                sites,
                by_var,
                at,
                entry,
                result,
            }
        })
    }

    pub fn var_index(&self, n: &str) -> Option<usize> {
        self.var_ix.get(n).copied()
    }

    /// All site ids of one variable (entry def included).
    pub fn sites_of(&self, v: usize) -> &[usize] {
        &self.by_var[v]
    }

    /// Real def site ids generated at `(block, stmt)`.
    pub fn sites_at(&self, b: usize, stmt: usize) -> &[usize] {
        self.at.get(&(b, stmt)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Advance `fact` across one statement (kill-then-gen).
    pub fn step(&self, b: usize, si: usize, s: &MirStmt, fact: &mut BitSet) {
        apply_stmt(&self.by_var, &self.at, &self.var_ix, b, si, s, fact);
    }

    /// The fact just before statement `stmt` of block `b` (replays the
    /// block from its converged entry fact).
    pub fn before_stmt(&self, func: &MirFunc, b: usize, stmt: usize) -> BitSet {
        let mut fact = self.result.input[b].clone();
        for (si, s) in func.blocks[b].stmts.iter().enumerate() {
            if si >= stmt {
                break;
            }
            self.step(b, si, s, &mut fact);
        }
        fact
    }
}

fn collect_vars(func: &MirFunc, scope: &[BlockId]) -> (Vec<String>, HashMap<String, usize>) {
    let mut vars = Vec::new();
    let mut var_ix = HashMap::new();
    let add = |n: &String, vars: &mut Vec<String>, ix: &mut HashMap<String, usize>| {
        if !ix.contains_key(n.as_str()) {
            ix.insert(n.clone(), vars.len());
            vars.push(n.clone());
        }
    };
    for b in scope {
        let blk = &func.blocks[b.index()];
        for s in &blk.stmts {
            if let MirStmt::Eval(e) = s {
                for n in e.defs.iter().chain(&e.uses) {
                    add(n, &mut vars, &mut var_ix);
                }
            }
        }
        if let Terminator::Branch { reads, .. } = &blk.term {
            for n in reads {
                add(n, &mut vars, &mut var_ix);
            }
        }
    }
    (vars, var_ix)
}

#[allow(clippy::too_many_arguments)]
fn apply_stmt(
    by_var: &[Vec<usize>],
    at: &HashMap<(usize, usize), Vec<usize>>,
    var_ix: &HashMap<String, usize>,
    b: usize,
    si: usize,
    s: &MirStmt,
    fact: &mut BitSet,
) {
    if let MirStmt::Eval(e) = s {
        for d in &e.defs {
            if let Some(&v) = var_ix.get(d.as_str()) {
                for &site in &by_var[v] {
                    fact.remove(site);
                }
            }
        }
        if let Some(ids) = at.get(&(b, si)) {
            for &id in ids {
                fact.insert(id);
            }
        }
    }
}

struct RdCore<'a> {
    nsites: usize,
    by_var: &'a [Vec<usize>],
    at: &'a HashMap<(usize, usize), Vec<usize>>,
    var_ix: &'a HashMap<String, usize>,
    entry: &'a [usize],
}

impl Analysis for RdCore<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _func: &MirFunc) -> BitSet {
        let mut s = BitSet::new(self.nsites);
        for &e in self.entry {
            s.insert(e);
        }
        s
    }

    fn init(&self, _func: &MirFunc) -> BitSet {
        BitSet::new(self.nsites)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, func: &MirFunc, b: BlockId, fact: &mut BitSet) {
        for (si, s) in func.blocks[b.index()].stmts.iter().enumerate() {
            apply_stmt(self.by_var, self.at, self.var_ix, b.index(), si, s, fact);
        }
    }
}

// ---- live variables ------------------------------------------------------

/// Live variables (backward may-analysis). In the converged result,
/// `input[b]` is live-*out* of the block and `output[b]` live-*in*.
pub struct LiveVars {
    pub vars: Vec<String>,
    var_ix: HashMap<String, usize>,
    pub result: FixpointResult<BitSet>,
}

impl LiveVars {
    pub fn compute(func: &MirFunc, scope: &[BlockId]) -> LiveVars {
        traced(span_arg::LIVE_VARS, || {
            let (vars, var_ix) = collect_vars(func, scope);
            let core = LvCore {
                nvars: vars.len(),
                var_ix: &var_ix,
            };
            let result = fixpoint(func, scope, &core);
            LiveVars {
                vars,
                var_ix,
                result,
            }
        })
    }

    pub fn var_index(&self, n: &str) -> Option<usize> {
        self.var_ix.get(n).copied()
    }

    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.result.output[b.index()]
    }

    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.result.input[b.index()]
    }
}

struct LvCore<'a> {
    nvars: usize,
    var_ix: &'a HashMap<String, usize>,
}

impl Analysis for LvCore<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, _func: &MirFunc) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn init(&self, _func: &MirFunc) -> BitSet {
        BitSet::new(self.nvars)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, func: &MirFunc, b: BlockId, fact: &mut BitSet) {
        let blk = &func.blocks[b.index()];
        if let Terminator::Branch { reads, .. } = &blk.term {
            for n in reads {
                if let Some(&v) = self.var_ix.get(n.as_str()) {
                    fact.insert(v);
                }
            }
        }
        for s in blk.stmts.iter().rev() {
            if let MirStmt::Eval(e) = s {
                for d in &e.defs {
                    if let Some(&v) = self.var_ix.get(d.as_str()) {
                        fact.remove(v);
                    }
                }
                for u in &e.uses {
                    if let Some(&v) = self.var_ix.get(u.as_str()) {
                        fact.insert(v);
                    }
                }
            }
        }
    }
}

// ---- postdominators ------------------------------------------------------

/// Per-block postdominator sets (backward must-analysis; intersection
/// over successors, reflexive). Bit `j` of `result[i]` means block `j`
/// postdominates block `i` within the scope.
pub fn postdominators(func: &MirFunc, scope: &[BlockId]) -> Vec<BitSet> {
    traced(span_arg::POSTDOMINATORS, || {
        struct Pdom {
            n: usize,
        }
        impl Analysis for Pdom {
            type Fact = BitSet;
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn boundary(&self, _func: &MirFunc) -> BitSet {
                BitSet::new(self.n)
            }
            fn init(&self, _func: &MirFunc) -> BitSet {
                BitSet::full(self.n)
            }
            fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
                into.intersect_with(from)
            }
            fn transfer(&self, _func: &MirFunc, b: BlockId, fact: &mut BitSet) {
                fact.insert(b.index());
            }
        }
        let n = func.blocks.len();
        fixpoint(func, scope, &Pdom { n }).output
    })
}

// ---- divergence ----------------------------------------------------------

/// Per-block divergence: `true` means threads of the team can disagree on
/// whether (or how often) the block executes.
///
/// A block is divergent iff it is (transitively) control-dependent on a
/// branch whose condition is thread-dependent: the condition calls
/// `omp_get_thread_num()`, or reads a variable some reaching definition
/// of which is *tainted*. Taint sources are per-thread entry values
/// (`private`/`lastprivate`/`reduction` scopes, supplied by
/// `entry_tainted`), work-shared loop variable bindings, evals that call
/// `omp_get_thread_num()`, and — fed back through an outer fixpoint —
/// any def sitting in an already-divergent block (control taint).
/// Branches of already-divergent blocks spread divergence to their
/// control dependents regardless of their own condition.
pub fn divergent_blocks(
    func: &MirFunc,
    scope: &[BlockId],
    entry_tainted: &dyn Fn(&str) -> bool,
) -> Vec<bool> {
    let n = func.blocks.len();
    let mut div = vec![false; n];
    if scope.is_empty() {
        return div;
    }
    let mut in_scope = vec![false; n];
    for b in scope {
        in_scope[b.index()] = true;
    }
    // Reachability from the scope entry: statically dead blocks (after
    // break/return) cannot make the team diverge.
    let mut reach = vec![false; n];
    let mut stack = vec![scope[0].index()];
    reach[scope[0].index()] = true;
    while let Some(i) = stack.pop() {
        for s in func.successors(BlockId(i as u32)) {
            let j = s.index();
            if in_scope[j] && !reach[j] {
                reach[j] = true;
                stack.push(j);
            }
        }
    }
    let rd = ReachingDefs::compute(func, scope);
    let pdom = postdominators(func, scope);
    traced(span_arg::DIVERGENCE, || {
        let mut tainted = vec![false; rd.sites.len()];
        for (v, name) in rd.vars.iter().enumerate() {
            tainted[rd.entry[v]] = entry_tainted(name);
        }
        let any_tainted = |reads: &[String], fact: &BitSet, tainted: &[bool]| {
            reads.iter().any(|u| match rd.var_index(u) {
                Some(v) => rd
                    .sites_of(v)
                    .iter()
                    .any(|&site| tainted[site] && fact.contains(site)),
                None => false,
            })
        };
        loop {
            // Data-taint fixpoint: defs become tainted when their eval is
            // thread-dependent, reads a tainted def, or sits in a block
            // already known divergent.
            loop {
                let mut changed = false;
                for b in scope {
                    let bi = b.index();
                    if !reach[bi] {
                        continue;
                    }
                    let mut fact = rd.result.input[bi].clone();
                    for (si, s) in func.blocks[bi].stmts.iter().enumerate() {
                        if let MirStmt::Eval(e) = s {
                            let t = e.thread_num
                                || e.tainted_def
                                || div[bi]
                                || any_tainted(&e.uses, &fact, &tainted);
                            if t {
                                for &id in rd.sites_at(bi, si) {
                                    if !tainted[id] {
                                        tainted[id] = true;
                                        changed = true;
                                    }
                                }
                            }
                        }
                        rd.step(bi, si, s, &mut fact);
                    }
                }
                if !changed {
                    break;
                }
            }
            // Branch thread-dependence.
            let mut branch_tainted = vec![false; n];
            for b in scope {
                let bi = b.index();
                if !reach[bi] {
                    continue;
                }
                if let Terminator::Branch {
                    reads, thread_num, ..
                } = &func.blocks[bi].term
                {
                    branch_tainted[bi] =
                        *thread_num || any_tainted(reads, &rd.result.output[bi], &tainted);
                }
            }
            // Control-dependence closure: block `t` is control dependent
            // on branch `b` iff `t` postdominates a successor of `b` but
            // not `b` itself.
            let mut grew = false;
            loop {
                let mut changed = false;
                for b in scope {
                    let bi = b.index();
                    if !reach[bi]
                        || !matches!(func.blocks[bi].term, Terminator::Branch { .. })
                        || !(branch_tainted[bi] || div[bi])
                    {
                        continue;
                    }
                    for s in func.successors(BlockId(bi as u32)) {
                        let si = s.index();
                        if !in_scope[si] {
                            continue;
                        }
                        for t in scope {
                            let ti = t.index();
                            if !reach[ti] || div[ti] {
                                continue;
                            }
                            if pdom[si].contains(ti) && !pdom[bi].contains(ti) {
                                div[ti] = true;
                                changed = true;
                                grew = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            // Newly-divergent blocks control-taint their defs; go again.
            if !grew {
                break;
            }
        }
        div
    })
}
