//! AST → MIR lowering.
//!
//! Two invariants make the MIR a drop-in substrate for the lexical
//! analyzer while still carrying a real CFG:
//!
//! 1. **Linear order = lexical order.** Blocks are created in source
//!    order (for a `for` loop: init, header/cond, step, body, exit — the
//!    AST analyzer evaluates all three loop expressions before walking
//!    the body), so iterating blocks by id and statements in order
//!    replays the AST walk statement-for-statement.
//! 2. **Access events mirror the analyzer's evaluation order** (rhs
//!    before lhs, subscripts before the element access, the compound
//!    read before the write), so a marker-driven walk reproduces the
//!    lexical lint verdicts byte-for-byte.
//!
//! Work-shared loops are lowered *straight-line* (no backedge): their
//! iterations are divided among threads, so the loop structure carries
//! no intra-thread control divergence, and modelling the backedge would
//! only manufacture spurious CFG divergence. Unreachable code after
//! `break`/`continue`/`return` still lowers (into a fresh, predecessor-
//! less block) because the lexical analyzer walks it and may diagnose.

use parade_translator::analysis::{
    as_minmax_update, as_scalar_update, classify_region, flatten_single, loop_of, Symbols,
};
use parade_translator::ast::{
    stmt_span, stmt_uses, stmt_write_targets, DirKind, Directive, Expr, FuncDef, Item, Program,
    Span, Stmt,
};

use crate::body::{
    AccessEvent, Block, BlockId, CondInfo, Eval, Marker, MirFunc, MirStmt, SiblingInfo,
    SiblingKind, Terminator, UpdateInfo, WsInfo,
};

/// Lower every function of a program.
pub fn lower_program(prog: &Program) -> Vec<MirFunc> {
    prog.items
        .iter()
        .filter_map(|i| match i {
            Item::Func(f) => Some(lower_func(prog, f)),
            _ => None,
        })
        .collect()
}

/// Lower one function.
pub fn lower_func(prog: &Program, f: &FuncDef) -> MirFunc {
    let syms = Symbols::collect(prog, f);
    let mut lw = Lowerer {
        blocks: vec![Block {
            stmts: Vec::new(),
            term: Terminator::Return,
        }],
        sealed: vec![false],
        cur: BlockId(0),
        next_pair: 0,
        loops: Vec::new(),
        syms: &syms,
    };
    lw.stmt(&f.body);
    MirFunc {
        name: f.name.clone(),
        blocks: lw.blocks,
        syms,
    }
}

/// One enclosing sequential loop, for `break`/`continue` targets.
struct LoopCtx {
    continue_to: BlockId,
    /// Blocks sealed by `break`, patched to `Goto(exit)` at loop end.
    breaks: Vec<BlockId>,
}

struct Lowerer<'a> {
    blocks: Vec<Block>,
    /// Whether each block's terminator has been decided (the default
    /// `Return` stands for "falls off the end of the function").
    sealed: Vec<bool>,
    cur: BlockId,
    next_pair: u32,
    loops: Vec<LoopCtx>,
    syms: &'a Symbols,
}

impl Lowerer<'_> {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            stmts: Vec::new(),
            term: Terminator::Return,
        });
        self.sealed.push(false);
        id
    }

    fn start_block(&mut self) -> BlockId {
        let b = self.new_block();
        self.cur = b;
        b
    }

    fn push(&mut self, s: MirStmt) {
        self.blocks[self.cur.index()].stmts.push(s);
    }

    fn marker(&mut self, m: Marker) {
        self.push(MirStmt::Marker(m));
    }

    fn pair(&mut self) -> u32 {
        self.next_pair += 1;
        self.next_pair - 1
    }

    fn set_term(&mut self, b: BlockId, t: Terminator) {
        self.blocks[b.index()].term = t;
        self.sealed[b.index()] = true;
    }

    fn goto_if_open(&mut self, b: BlockId, to: BlockId) {
        if !self.sealed[b.index()] {
            self.set_term(b, Terminator::Goto(to));
        }
    }

    fn push_expr_eval(&mut self, e: &Expr, span: Option<Span>) {
        let mut events = Vec::new();
        expr_events(e, &mut events);
        self.push(MirStmt::Eval(finish_eval(
            span,
            None,
            events,
            calls_thread_num(e),
            false,
        )));
    }

    // ---- statements -------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(d) => {
                let mut events = Vec::new();
                let mut thread_num = false;
                if let Some(init) = &d.init {
                    expr_events(init, &mut events);
                    thread_num = calls_thread_num(init);
                }
                events.push(AccessEvent::MarkWritten(d.name.clone()));
                self.push(MirStmt::Eval(finish_eval(
                    Some(d.span),
                    None,
                    events,
                    thread_num,
                    false,
                )));
            }
            Stmt::Expr(e, sp) => {
                let mut events = Vec::new();
                expr_events(e, &mut events);
                let update = as_scalar_update(e)
                    .or_else(|| as_minmax_update(e))
                    .map(|u| {
                        let mut operand_events = Vec::new();
                        expr_events(&u.operand, &mut operand_events);
                        UpdateInfo {
                            target: u.target,
                            op: u.op,
                            operand_events,
                        }
                    });
                self.push(MirStmt::Eval(finish_eval(
                    Some(*sp),
                    update,
                    events,
                    calls_thread_num(e),
                    false,
                )));
            }
            Stmt::If(c, a, b) => self.lower_if(c, a, b.as_deref()),
            Stmt::While(c, b) => self.lower_while(c, b),
            Stmt::For {
                init, cond, step, ..
            } => self.lower_for(s, init, cond, step),
            Stmt::Block(ss) => {
                self.marker(Marker::BlockStart);
                for child in ss {
                    self.marker(Marker::Sibling(sibling_info(child)));
                    self.stmt(child);
                }
                self.marker(Marker::BlockEnd);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.push_expr_eval(e, None);
                }
                let b = self.cur;
                self.set_term(b, Terminator::Return);
                self.start_block();
            }
            Stmt::Break => {
                let b = self.cur;
                match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.breaks.push(b);
                        // Terminator patched to Goto(exit) at loop end.
                        self.sealed[b.index()] = true;
                    }
                    // `break` outside any sequential loop (illegal inside a
                    // bare work-shared body): treat as function exit.
                    None => self.set_term(b, Terminator::Return),
                }
                self.start_block();
            }
            Stmt::Continue => {
                let to = self.loops.last().map(|c| c.continue_to);
                let b = self.cur;
                match to {
                    Some(t) => self.set_term(b, Terminator::Goto(t)),
                    None => self.set_term(b, Terminator::Return),
                }
                self.start_block();
            }
            Stmt::Omp(d, body) => self.directive(d, body.as_deref()),
            Stmt::Empty => {}
        }
    }

    fn lower_if(&mut self, c: &Expr, a: &Stmt, b: Option<&Stmt>) {
        self.push_expr_eval(c, None);
        let mut reads = Vec::new();
        c.vars(&mut reads);
        let tn = calls_thread_num(c);
        self.marker(Marker::CondEnter(CondInfo::Cond {
            reads: reads.clone(),
            thread_num: tn,
        }));
        let branch_at = self.cur;
        let then_bb = self.start_block();
        self.stmt(a);
        let then_end = self.cur;
        let else_part = b.map(|b| {
            let bb = self.start_block();
            self.stmt(b);
            (bb, self.cur)
        });
        let join = self.new_block();
        let else_bb = else_part.map(|(bb, _)| bb).unwrap_or(join);
        self.set_term(
            branch_at,
            Terminator::Branch {
                reads,
                thread_num: tn,
                then_bb,
                else_bb,
            },
        );
        self.goto_if_open(then_end, join);
        if let Some((_, end)) = else_part {
            self.goto_if_open(end, join);
        }
        self.cur = join;
        self.marker(Marker::CondExit);
    }

    fn lower_while(&mut self, c: &Expr, b: &Stmt) {
        let header = self.new_block();
        let pre = self.cur;
        self.goto_if_open(pre, header);
        self.cur = header;
        self.push_expr_eval(c, None);
        let mut reads = Vec::new();
        c.vars(&mut reads);
        let tn = calls_thread_num(c);
        self.marker(Marker::CondEnter(CondInfo::Cond {
            reads: reads.clone(),
            thread_num: tn,
        }));
        let body_bb = self.start_block();
        self.loops.push(LoopCtx {
            continue_to: header,
            breaks: Vec::new(),
        });
        self.stmt(b);
        let body_end = self.cur;
        let ctx = self.loops.pop().expect("loop ctx");
        let exit = self.new_block();
        self.set_term(
            header,
            Terminator::Branch {
                reads,
                thread_num: tn,
                then_bb: body_bb,
                else_bb: exit,
            },
        );
        self.goto_if_open(body_end, header);
        for bb in ctx.breaks {
            self.blocks[bb.index()].term = Terminator::Goto(exit);
        }
        self.cur = exit;
        self.marker(Marker::CondExit);
    }

    fn lower_for(
        &mut self,
        whole: &Stmt,
        init: &Option<Expr>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
    ) {
        // Canonical-with-these-bound-variables, for the uniform-trip test.
        let bounds = loop_of(whole).map(|l| {
            let mut v = Vec::new();
            l.lo.vars(&mut v);
            l.hi.vars(&mut v);
            v
        });
        if let Some(e) = init {
            self.push_expr_eval(e, None);
        }
        let header = self.new_block();
        let pre = self.cur;
        self.goto_if_open(pre, header);
        self.cur = header;
        let (reads, tn) = match cond {
            Some(c) => {
                self.push_expr_eval(c, None);
                let mut reads = Vec::new();
                c.vars(&mut reads);
                (reads, calls_thread_num(c))
            }
            None => (Vec::new(), false),
        };
        self.marker(Marker::CondEnter(CondInfo::ForBounds(bounds)));
        // The step block is created (and its expression evaluated) before
        // the body, matching the AST analyzer's init/cond/step-then-body
        // order; CFG edges still run header → body → step → header.
        let step_bb = self.start_block();
        if let Some(e) = step {
            self.push_expr_eval(e, None);
        }
        self.set_term(step_bb, Terminator::Goto(header));
        let body_bb = self.new_block();
        self.cur = body_bb;
        self.loops.push(LoopCtx {
            continue_to: step_bb,
            breaks: Vec::new(),
        });
        self.stmt(whole_body(whole));
        let body_end = self.cur;
        let ctx = self.loops.pop().expect("loop ctx");
        let exit = self.new_block();
        match cond {
            Some(_) => self.set_term(
                header,
                Terminator::Branch {
                    reads,
                    thread_num: tn,
                    then_bb: body_bb,
                    else_bb: exit,
                },
            ),
            None => self.set_term(header, Terminator::Goto(body_bb)),
        }
        self.goto_if_open(body_end, step_bb);
        for bb in ctx.breaks {
            self.blocks[bb.index()].term = Terminator::Goto(exit);
        }
        self.cur = exit;
        self.marker(Marker::CondExit);
    }

    // ---- directives -------------------------------------------------------

    fn directive(&mut self, d: &Directive, body: Option<&Stmt>) {
        match &d.kind {
            DirKind::Parallel | DirKind::ParallelFor => {
                let pair = self.pair();
                let class = body.map(|b| classify_region(d, b, self.syms));
                // Cut blocks at the region boundary so a region's scope
                // starts exactly at the `ParallelEnter`: the divergence
                // analysis injects per-thread entry defs at the scope
                // entry, and outer statements sharing the block would
                // kill them.
                let enter_bb = self.new_block();
                self.goto_if_open(self.cur, enter_bb);
                self.cur = enter_bb;
                self.marker(Marker::ParallelEnter {
                    dir: d.clone(),
                    class,
                    pair,
                });
                if let Some(b) = body {
                    if matches!(d.kind, DirKind::ParallelFor) {
                        self.ws(d, b, true);
                    } else {
                        self.stmt(b);
                    }
                }
                self.marker(Marker::ParallelExit { pair });
                let after = self.new_block();
                self.goto_if_open(self.cur, after);
                self.cur = after;
            }
            DirKind::For => match body {
                Some(b) => self.ws(d, b, false),
                None => {
                    let pair = self.pair();
                    self.marker(Marker::WsEnter {
                        dir: d.clone(),
                        canon: None,
                        has_body: false,
                        from_parallel_for: false,
                        pair,
                    });
                    self.marker(Marker::WsExit { pair });
                }
            },
            DirKind::Single | DirKind::Master | DirKind::Critical(_) | DirKind::Atomic => {
                let pair = self.pair();
                let atomic_ok = if matches!(d.kind, DirKind::Atomic) {
                    matches!(
                        body.map(flatten_single),
                        Some(Stmt::Expr(e, _))
                            if as_scalar_update(e).is_some() || as_minmax_update(e).is_some()
                    )
                } else {
                    true
                };
                self.marker(Marker::ProtectEnter {
                    dir: d.clone(),
                    atomic_ok,
                    pair,
                });
                if let Some(b) = body {
                    self.stmt(b);
                }
                self.marker(Marker::ProtectExit { pair });
            }
            DirKind::Barrier => self.marker(Marker::Barrier { dir: d.clone() }),
            DirKind::Taskwait => self.marker(Marker::Taskwait { dir: d.clone() }),
            DirKind::Task | DirKind::Target => {
                let pair = self.pair();
                self.marker(Marker::TaskEnter {
                    dir: d.clone(),
                    pair,
                });
                if let Some(b) = body {
                    self.stmt(b);
                }
                self.marker(Marker::TaskExit { pair });
            }
        }
    }

    /// A work-sharing loop (`for`, or the loop of `parallel for`).
    fn ws(&mut self, d: &Directive, body: &Stmt, from_parallel_for: bool) {
        let pair = self.pair();
        let canon = loop_of(body);
        self.marker(Marker::WsEnter {
            dir: d.clone(),
            canon: canon.as_ref().map(|l| WsInfo { var: l.var.clone() }),
            has_body: true,
            from_parallel_for,
            pair,
        });
        match canon {
            Some(l) => {
                // Bounds evaluation: reads of lo/hi, then the loop-variable
                // binding. The variable's value is per-thread whatever the
                // bounds read, hence `tainted_def`.
                let mut events = Vec::new();
                expr_events(&l.lo, &mut events);
                expr_events(&l.hi, &mut events);
                let tn = calls_thread_num(&l.lo) || calls_thread_num(&l.hi);
                let mut ev = finish_eval(None, None, events, tn, true);
                if !ev.defs.contains(&l.var) {
                    ev.defs.push(l.var.clone());
                }
                self.push(MirStmt::Eval(ev));
                self.marker(Marker::WsBody { var: l.var.clone() });
                self.stmt(&l.body);
            }
            // Non-canonical: the analyzer diagnoses and skips, but the raw
            // body still lowers so the serial walk can reach nested
            // directives the way the AST outer walk does.
            None => self.stmt(body),
        }
        self.marker(Marker::WsExit { pair });
    }
}

fn whole_body(s: &Stmt) -> &Stmt {
    match s {
        Stmt::For { body, .. } => body,
        _ => unreachable!("lower_for is only called on Stmt::For"),
    }
}

/// PC005 bookkeeping for one statement in a list.
fn sibling_info(s: &Stmt) -> SiblingInfo {
    let mut uses = Vec::new();
    stmt_uses(s, &mut uses);
    let kind = match s {
        Stmt::Omp(d, _) if matches!(d.kind, DirKind::Barrier) => SiblingKind::Barrier,
        Stmt::Omp(d, Some(b)) if matches!(d.kind, DirKind::For | DirKind::Single) => {
            if d.nowait() {
                let mut writes = Vec::new();
                stmt_write_targets(b, &mut writes);
                SiblingKind::WsNowait {
                    writes,
                    loop_var: loop_of(b).map(|l| l.var),
                }
            } else {
                SiblingKind::WsJoin
            }
        }
        _ => SiblingKind::Other,
    };
    SiblingInfo {
        span: stmt_span(s),
        uses,
        kind,
    }
}

fn calls_thread_num(e: &Expr) -> bool {
    let mut calls = Vec::new();
    e.calls(&mut calls);
    calls.iter().any(|c| c == "omp_get_thread_num")
}

/// Linearize an expression into access events, mirroring the analyzer's
/// evaluation order exactly (rhs first, subscripts before the element,
/// the compound read-half before the write).
pub fn expr_events(e: &Expr, out: &mut Vec<AccessEvent>) {
    match e {
        Expr::Assign(op, lhs, rhs) => {
            expr_events(rhs, out);
            match lhs.as_ref() {
                Expr::Ident(n) => {
                    if op.is_some() {
                        out.push(AccessEvent::ReadVar(n.clone()));
                    }
                    out.push(AccessEvent::WriteVar(n.clone()));
                }
                Expr::Index(n, idxs) => {
                    for ix in idxs {
                        expr_events(ix, out);
                    }
                    if op.is_some() {
                        out.push(AccessEvent::LogReadIndexed(n.clone(), idxs.clone()));
                    }
                    out.push(AccessEvent::WriteIndexed(n.clone(), idxs.clone()));
                }
                other => expr_events(other, out),
            }
        }
        Expr::Ident(n) => out.push(AccessEvent::ReadVar(n.clone())),
        Expr::Index(n, idxs) => {
            for ix in idxs {
                expr_events(ix, out);
            }
            out.push(AccessEvent::ReadIndexed(n.clone(), idxs.clone()));
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_events(a, out);
            }
        }
        Expr::Unary(_, a) => expr_events(a, out),
        Expr::Binary(_, a, b) => {
            expr_events(a, out);
            expr_events(b, out);
        }
        Expr::Cond(c, a, b) => {
            expr_events(c, out);
            expr_events(a, out);
            expr_events(b, out);
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => {}
    }
}

fn finish_eval(
    span: Option<Span>,
    update: Option<UpdateInfo>,
    events: Vec<AccessEvent>,
    thread_num: bool,
    tainted_def: bool,
) -> Eval {
    let mut defs = Vec::new();
    let mut uses = Vec::new();
    for ev in &events {
        match ev {
            AccessEvent::ReadVar(n) if !uses.contains(n) => uses.push(n.clone()),
            AccessEvent::WriteVar(n) | AccessEvent::MarkWritten(n) if !defs.contains(n) => {
                defs.push(n.clone())
            }
            _ => {}
        }
    }
    Eval {
        span,
        update,
        events,
        thread_num,
        defs,
        uses,
        tainted_def,
    }
}
