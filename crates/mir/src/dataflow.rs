//! Generic worklist-fixpoint dataflow framework.
//!
//! An [`Analysis`] supplies the lattice (bottom/boundary facts, a `join`
//! that reports change, and a per-block transfer); [`fixpoint`] runs the
//! worklist to convergence over a *scope* — any subset of a function's
//! blocks (a parallel region, or the whole function). Edges leaving the
//! scope are ignored.
//!
//! Orientation of the result:
//!
//! - forward: `input[b]` = fact at block entry, `output[b]` = at exit;
//! - backward: `input[b]` = fact at block *exit* (join over successors),
//!   `output[b]` = at block *entry* (after the transfer).

use std::collections::VecDeque;

use crate::body::{BlockId, MirFunc};

/// Dense bit set over a fixed universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Returns true if the bit was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a &= b;
            changed |= *a != before;
        }
        changed
    }

    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// One dataflow problem over the MIR.
pub trait Analysis {
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction;

    /// Fact flowing in at the scope boundary (the entry block for a
    /// forward analysis; exit blocks for a backward one).
    fn boundary(&self, func: &MirFunc) -> Self::Fact;

    /// Initial fact for every block — the lattice seed (`⊥` for a may
    /// analysis, `⊤` for a must analysis).
    fn init(&self, func: &MirFunc) -> Self::Fact;

    /// Merge `from` into `into`; returns true if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Apply block `b`'s transfer function to `fact` in place.
    fn transfer(&self, func: &MirFunc, b: BlockId, fact: &mut Self::Fact);
}

/// Per-block facts after convergence; indexed by block id over the whole
/// function (out-of-scope blocks keep their `init` fact).
pub struct FixpointResult<F> {
    pub input: Vec<F>,
    pub output: Vec<F>,
}

/// Run `a` to fixpoint over `scope` (block ids, ascending).
pub fn fixpoint<A: Analysis>(func: &MirFunc, scope: &[BlockId], a: &A) -> FixpointResult<A::Fact> {
    let n = func.blocks.len();
    let mut in_scope = vec![false; n];
    for b in scope {
        in_scope[b.index()] = true;
    }
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if !in_scope[i] {
                return Vec::new();
            }
            func.successors(BlockId(i as u32))
                .into_iter()
                .map(|b| b.index())
                .filter(|j| in_scope[*j])
                .collect()
        })
        .collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ss) in succs.iter().enumerate() {
        for &j in ss {
            preds[j].push(i);
        }
    }
    let backward = a.direction() == Direction::Backward;
    let (inputs_of, outputs_to) = if backward {
        (&succs, &preds)
    } else {
        (&preds, &succs)
    };
    let mut is_boundary = vec![false; n];
    if backward {
        for b in scope {
            if succs[b.index()].is_empty() {
                is_boundary[b.index()] = true;
            }
        }
    } else if let Some(b) = scope.first() {
        is_boundary[b.index()] = true;
    }

    let mut input: Vec<A::Fact> = (0..n).map(|_| a.init(func)).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| a.init(func)).collect();
    let bfact = a.boundary(func);

    let mut work: VecDeque<usize> = if backward {
        scope.iter().rev().map(|b| b.index()).collect()
    } else {
        scope.iter().map(|b| b.index()).collect()
    };
    let mut queued = vec![false; n];
    for &i in &work {
        queued[i] = true;
    }
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let mut fact = a.init(func);
        if is_boundary[i] {
            a.join(&mut fact, &bfact);
        }
        for &p in &inputs_of[i] {
            a.join(&mut fact, &output[p]);
        }
        input[i] = fact.clone();
        a.transfer(func, BlockId(i as u32), &mut fact);
        if fact != output[i] {
            output[i] = fact;
            for &s in &outputs_to[i] {
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    FixpointResult { input, output }
}
