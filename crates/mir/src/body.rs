//! MIR data structures: basic blocks, terminators, linearized access
//! events, and the structural markers the lint walk consumes.
//!
//! The MIR serves two consumers at once:
//!
//! - **Linear**: blocks are created in lexical order, so iterating blocks
//!   by id and statements in order replays the AST walk exactly. The
//!   marker stream (`ParallelEnter`, `WsEnter`, `Sibling`, …) carries the
//!   structure the PC001–PC008 detectors need.
//! - **CFG**: terminators give explicit branch/loop edges for the
//!   dataflow analyses (reaching definitions, liveness, postdominators,
//!   divergence) behind PC009/PC010.

use std::fmt;

use parade_translator::analysis::{RegionClassification, Symbols};
use parade_translator::ast::{Directive, Expr, RedOp, Span};

/// Index of a basic block inside one [`MirFunc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// One variable access, in AST evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessEvent {
    /// Scalar read.
    ReadVar(String),
    /// Scalar write (assignment target).
    WriteVar(String),
    /// Array element read; subscripts kept for the work-sharing
    /// dependence test.
    ReadIndexed(String, Vec<Expr>),
    /// Array element write.
    WriteIndexed(String, Vec<Expr>),
    /// The read half of a compound array assignment (`a[i] += e`): logged
    /// for the dependence test when the array is shared, but not a
    /// standalone read event.
    LogReadIndexed(String, Vec<Expr>),
    /// A definition that is not a checked write (declarations, the
    /// work-shared loop variable binding).
    MarkWritten(String),
}

/// A statement-level `x ⊕= e` / `x = fmin(x, e)` — the combining form a
/// `reduction` clause sanctions. The lint applies it only when the target
/// is actually scoped `reduction`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateInfo {
    pub target: String,
    pub op: RedOp,
    /// Events of the operand alone (all a sanctioned update exposes).
    pub operand_events: Vec<AccessEvent>,
}

/// One side-effecting evaluation (statement expression, declaration
/// initializer, condition, loop bounds), fully linearized.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Eval {
    /// Source span for span-carrying statements; `None` for conditions
    /// and compiler-introduced evals, which must not move the analyzer's
    /// current-span cursor.
    pub span: Option<Span>,
    /// Statement-level reduction-update recognition.
    pub update: Option<UpdateInfo>,
    /// Linearized access events, in AST evaluation order.
    pub events: Vec<AccessEvent>,
    /// The expression calls `omp_get_thread_num()` somewhere.
    pub thread_num: bool,
    /// Scalar definitions (dataflow def sites).
    pub defs: Vec<String>,
    /// Scalar uses (dataflow).
    pub uses: Vec<String>,
    /// Force the defs tainted in the divergence analysis (work-shared
    /// loop variables take per-thread values whatever their bounds read).
    pub tainted_def: bool,
}

/// What a sibling statement is, for the nowait-pending bookkeeping
/// (PC005) that runs per statement list.
#[derive(Debug, Clone, PartialEq)]
pub enum SiblingKind {
    /// `#pragma omp barrier` as an immediate child: joins the list's
    /// pending nowait writes before anything else.
    Barrier,
    /// A `for`/`single` with a body and `nowait`: its shared write
    /// targets go pending after the use check.
    WsNowait {
        writes: Vec<String>,
        loop_var: Option<String>,
    },
    /// A `for`/`single` with a body and no `nowait`: the implicit
    /// barrier at construct exit joins the team.
    WsJoin,
    Other,
}

/// Start of one statement in a statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct SiblingInfo {
    /// First source position in the statement subtree.
    pub span: Option<Span>,
    /// Every variable the subtree mentions (reads and writes).
    pub uses: Vec<String>,
    pub kind: SiblingKind,
}

/// Canonical work-shared loop info (`None` on a `WsEnter` = the loop is
/// not in canonical form).
#[derive(Debug, Clone, PartialEq)]
pub struct WsInfo {
    pub var: String,
}

/// Thread-dependence inputs of a sequential control-flow condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CondInfo {
    /// `if`/`while` condition: the variables it mentions, and whether it
    /// calls `omp_get_thread_num()`.
    Cond {
        reads: Vec<String>,
        thread_num: bool,
    },
    /// Sequential `for`: `Some(vars)` = canonical with these bound
    /// variables (uniform iff all shared); `None` = non-canonical.
    ForBounds(Option<Vec<String>>),
}

/// Structural markers: the lexical events the marker-driven lint walk
/// replays. `pair` ids tie an `*Enter` to its `*Exit` so a walker that
/// declines to enter a construct can skip to the matching exit.
#[derive(Debug, Clone, PartialEq)]
pub enum Marker {
    /// `parallel` / `parallel for` entry; `class` is `None` when the
    /// directive has no statement to apply to.
    ParallelEnter {
        dir: Directive,
        class: Option<RegionClassification>,
        pair: u32,
    },
    ParallelExit {
        pair: u32,
    },
    /// Work-sharing loop entry (`for`, or the loop of `parallel for`).
    WsEnter {
        dir: Directive,
        canon: Option<WsInfo>,
        has_body: bool,
        from_parallel_for: bool,
        pair: u32,
    },
    /// After the bounds evaluation: bind the loop variable and open the
    /// dependence-log frame.
    WsBody {
        var: String,
    },
    WsExit {
        pair: u32,
    },
    /// `single`/`master`/`critical`/`atomic` entry. `atomic_ok` is the
    /// malformed-atomic precheck (always true for the other kinds).
    ProtectEnter {
        dir: Directive,
        atomic_ok: bool,
        pair: u32,
    },
    ProtectExit {
        pair: u32,
    },
    TaskEnter {
        dir: Directive,
        pair: u32,
    },
    TaskExit {
        pair: u32,
    },
    Barrier {
        dir: Directive,
    },
    Taskwait {
        dir: Directive,
    },
    /// Sequential control-flow condition entry (`if`/`while`/`for`).
    CondEnter(CondInfo),
    CondExit,
    /// Statement-list bracketing (PC005 pending frames).
    BlockStart,
    BlockEnd,
    Sibling(SiblingInfo),
}

impl Marker {
    /// The pair id this marker *closes*, if it is an exit marker.
    pub fn exit_pair(&self) -> Option<u32> {
        match self {
            Marker::ParallelExit { pair }
            | Marker::WsExit { pair }
            | Marker::ProtectExit { pair }
            | Marker::TaskExit { pair } => Some(*pair),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum MirStmt {
    Eval(Eval),
    Marker(Marker),
}

#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    Goto(BlockId),
    /// Conditional edge. `reads`/`thread_num` describe the controlling
    /// expression for the divergence analysis.
    Branch {
        reads: Vec<String>,
        thread_num: bool,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    Return,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub stmts: Vec<MirStmt>,
    pub term: Terminator,
}

/// One lowered function: blocks in lexical creation order (bb0 = entry),
/// plus its flat symbol table.
#[derive(Debug, Clone)]
pub struct MirFunc {
    pub name: String,
    pub blocks: Vec<Block>,
    pub syms: Symbols,
}

impl MirFunc {
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match &self.blocks[b.index()].term {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            Terminator::Return => vec![],
        }
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, _) in self.blocks.iter().enumerate() {
            let b = BlockId(i as u32);
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Compact textual dump for tests and debugging.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "fn {}:", self.name);
        for (i, blk) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "  bb{i}:");
            for s in &blk.stmts {
                match s {
                    MirStmt::Eval(e) => {
                        let _ = writeln!(
                            out,
                            "    eval defs={:?} uses={:?} events={}",
                            e.defs,
                            e.uses,
                            e.events.len()
                        );
                    }
                    MirStmt::Marker(m) => {
                        let tag = match m {
                            Marker::ParallelEnter { .. } => "parallel.enter".into(),
                            Marker::ParallelExit { .. } => "parallel.exit".into(),
                            Marker::WsEnter { .. } => "ws.enter".into(),
                            Marker::WsBody { var } => format!("ws.body({var})"),
                            Marker::WsExit { .. } => "ws.exit".into(),
                            Marker::ProtectEnter { .. } => "protect.enter".into(),
                            Marker::ProtectExit { .. } => "protect.exit".into(),
                            Marker::TaskEnter { .. } => "task.enter".into(),
                            Marker::TaskExit { .. } => "task.exit".into(),
                            Marker::Barrier { .. } => "barrier".into(),
                            Marker::Taskwait { .. } => "taskwait".into(),
                            Marker::CondEnter(_) => "cond.enter".into(),
                            Marker::CondExit => "cond.exit".into(),
                            Marker::BlockStart => "block.start".into(),
                            Marker::BlockEnd => "block.end".into(),
                            Marker::Sibling(_) => "sibling".into(),
                        };
                        let _ = writeln!(out, "    marker {tag}");
                    }
                }
            }
            let term = match &blk.term {
                Terminator::Goto(t) => format!("goto {t}"),
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => format!("branch {then_bb} {else_bb}"),
                Terminator::Return => "return".into(),
            };
            let _ = writeln!(out, "    -> {term}");
        }
        out
    }
}
